#!/usr/bin/env python3
"""Record a workload once, replay it against every scheme.

Captures the IO trace of a bursty mixed workload running on the
vanilla target, then replays the identical trace (same addresses,
sizes, types, inter-arrival times) through each multi-tenancy scheme —
the apples-to-apples comparison methodology trace-driven storage
studies use.

Run:  python examples/trace_replay.py
"""

from repro.harness import SCHEMES, Testbed, TestbedConfig
from repro.workloads import FioSpec, ReplayWorker, TraceRecorder


def record_trace():
    """One bursty tenant recorded on the vanilla target."""
    testbed = Testbed(TestbedConfig(scheme="vanilla", condition="fragmented"))
    worker = testbed.add_worker(
        FioSpec("recorded", io_pages=1, queue_depth=16, read_ratio=0.7)
    )
    recorder = TraceRecorder()
    original = worker._on_complete

    def tapped(request):
        recorder.observe(request)
        original(request)

    worker._on_complete = tapped
    worker.start()
    testbed.sim.run(until_us=200_000.0)
    worker.stop()
    testbed.sim.run()
    return recorder.records


def replay_against(scheme, records):
    testbed = Testbed(TestbedConfig(scheme=scheme, condition="fragmented"))
    session = testbed.initiator("replayer").connect(
        "replayed", testbed.target, "ssd0", policy=testbed._client_policy()
    )
    # A competing tenant makes the schemes differ.
    noisy = testbed.add_worker(
        FioSpec("noisy", io_pages=1, queue_depth=64, read_ratio=0.0)
    )
    noisy.start()
    worker = ReplayWorker(session, records, mode="timed")
    worker.start()
    testbed.sim.run(until_us=400_000.0)
    noisy.stop()  # the closed-loop writer would otherwise run forever
    testbed.sim.run()  # drain
    return worker.results()


def main() -> None:
    records = record_trace()
    print(f"Recorded {len(records)} IOs "
          f"({sum(1 for r in records if r.op == 'read')} reads, "
          f"{sum(1 for r in records if r.op == 'write')} writes).\n")
    print("Replaying the identical trace against a noisy 4KB writer:\n")
    print(f"{'scheme':>10} | {'completed':>9} | {'MB/s':>7} | {'avg us':>8} | {'p99 us':>8}")
    print("-" * 55)
    for scheme in SCHEMES:
        results = replay_against(scheme, records)
        latency = results["latency"]
        print(
            f"{scheme:>10} | {results['completed']:9d} | "
            f"{results['bandwidth_mbps']:7.1f} | {latency['mean']:8.0f} | {latency['p99']:8.0f}"
        )


if __name__ == "__main__":
    main()
