#!/usr/bin/env python3
"""LSM key-value store over disaggregated storage (the RocksDB case study).

Builds the paper's Section 4.3 stack end to end: a rack with one
SmartNIC JBOF (4 SSDs, fragmented), a shared hierarchical blob
allocator, and four DB instances running YCSB-A (50/50 read/update,
Zipfian).  Each instance's LSM tree persists SSTables through a
replicated blobstore whose reads are steered to the least-loaded
replica using Gimbal's credits.

Run:  python examples/kv_store.py
"""

from repro.harness.kvcluster import KvCluster, KvClusterConfig


def main() -> None:
    cluster = KvCluster(
        KvClusterConfig(scheme="gimbal", condition="fragmented", num_jbofs=1)
    )
    for index in range(4):
        cluster.add_instance(f"db{index}", workload="A", record_count=2048, concurrency=4)

    print("Loading 4 x 2048 records (YCSB load phase)...")
    cluster.load_all()
    print(f"  loaded at t={cluster.sim.now / 1e6:.2f} simulated seconds")

    print("Running YCSB-A for 1 simulated second (0.3s warmup)...")
    results = cluster.run(warmup_us=300_000, measure_us=1_000_000)

    print(f"\nAggregate: {results['total_kops']:.1f} KOPS, "
          f"read avg {results['read_avg_us']:.0f}us, "
          f"read p99.9 {results['read_p999_us']:.0f}us\n")

    for instance in results["instances"]:
        lsm = instance["lsm"]
        print(
            f"  {instance['name']}: {instance['kops']:6.1f} KOPS | "
            f"read avg {instance['read_latency']['mean']:6.0f}us | "
            f"flushes {lsm['flushes']:3d} | compactions {lsm['compactions']:2d} | "
            f"memtable hits {lsm['memtable_hits']}"
        )

    # Show the load balancer at work: how reads split across replicas.
    store = cluster.runners[0].tree.store
    total = store.reads_to_primary + store.reads_to_shadow
    if total:
        print(
            f"\ndb0 read steering: {store.reads_to_primary} to primary, "
            f"{store.reads_to_shadow} to shadow "
            f"({100.0 * store.reads_to_shadow / total:.0f}% rebalanced)"
        )


if __name__ == "__main__":
    main()
