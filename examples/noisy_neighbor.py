#!/usr/bin/env python3
"""Noisy neighbour: how each multi-tenancy scheme protects a victim.

The motivating scenario from the paper's Section 2.3 (Figure 4): a
latency-sensitive tenant issuing 4 KiB random reads shares a
*fragmented* SSD with an aggressive 4 KiB random writer.  On an
unmanaged target the writer's garbage-collection traffic wrecks the
reader; the comparison schemes help partially; Gimbal's write-cost
estimation and virtual slots restore the reader's share.

Run:  python examples/noisy_neighbor.py
"""

from repro.harness import SCHEMES, Testbed, TestbedConfig
from repro.workloads import FioSpec


def run_scheme(scheme: str):
    testbed = Testbed(TestbedConfig(scheme=scheme, condition="fragmented"))
    victim = testbed.add_worker(
        FioSpec(name="victim-reader", io_pages=1, queue_depth=32, read_ratio=1.0)
    )
    testbed.add_worker(
        FioSpec(name="noisy-writer", io_pages=1, queue_depth=128, read_ratio=0.0)
    )
    results = testbed.run(warmup_us=500_000, measure_us=1_500_000)
    victim_result, writer_result = results["workers"]
    return {
        "scheme": scheme,
        "victim_mbps": victim_result["bandwidth_mbps"],
        "victim_p99_us": victim_result["read_latency"]["p99"],
        "writer_mbps": writer_result["bandwidth_mbps"],
    }


def main() -> None:
    print("Victim: 4KB random reads QD32.  Neighbour: 4KB random writes QD128.")
    print("Device: fragmented (GC active).\n")
    print(f"{'scheme':>10} | {'victim MB/s':>12} | {'victim p99 us':>14} | {'writer MB/s':>12}")
    print("-" * 60)
    baseline = None
    for scheme in ("vanilla",) + tuple(s for s in SCHEMES if s != "vanilla"):
        row = run_scheme(scheme)
        if scheme == "vanilla":
            baseline = row["victim_mbps"]
        gain = row["victim_mbps"] / baseline if baseline else float("nan")
        print(
            f"{row['scheme']:>10} | {row['victim_mbps']:12.1f} | "
            f"{row['victim_p99_us']:14.0f} | {row['writer_mbps']:12.1f}"
            + (f"   ({gain:.1f}x victim vs vanilla)" if scheme != "vanilla" else "")
        )


if __name__ == "__main__":
    main()
