#!/usr/bin/env python3
"""Watch Gimbal's congestion control and write-cost estimator adapt.

Reproduces the paper's Figure 9 storyline interactively: readers run
rate-capped, write workers arrive one at a time, and the script prints
the switch's internal state each phase -- EWMA latencies, the dynamic
threshold, the target rate, and the estimated write cost dropping to
~1 while the device buffer absorbs writes and snapping back toward the
worst case once writers overwhelm it.

Run:  python examples/congestion_dynamics.py
"""

from repro.harness import Testbed, TestbedConfig
from repro.ssd.commands import IoOp
from repro.workloads import FioSpec

PHASE_US = 400_000.0


def main() -> None:
    testbed = Testbed(TestbedConfig(scheme="gimbal", condition="fragmented"))
    readers = [
        testbed.add_worker(
            FioSpec(f"rd{i}", io_pages=32, queue_depth=4, read_ratio=1.0,
                    rate_limit_mbps=200.0),
            region_pages=1600,
        )
        for i in range(6)
    ]
    writers = [
        testbed.add_worker(
            FioSpec(f"wr{i}", io_pages=32, queue_depth=4, read_ratio=0.0,
                    pattern="sequential", rate_limit_mbps=60.0),
            region_pages=1600,
        )
        for i in range(6)
    ]
    sim = testbed.sim
    scheduler = testbed.target.pipelines["ssd0"].scheduler

    def report(phase: str) -> None:
        read_monitor = scheduler.monitors[IoOp.READ]
        write_monitor = scheduler.monitors[IoOp.WRITE]
        view = scheduler.virtual_view()
        print(
            f"t={sim.now / 1e6:5.2f}s {phase:<22} "
            f"read ewma {read_monitor.ewma_latency_us:6.0f}us "
            f"(thresh {read_monitor.threshold:6.0f}) | "
            f"write ewma {write_monitor.ewma_latency_us:6.0f}us | "
            f"write cost {scheduler.write_cost.cost:4.1f} | "
            f"target {view['target_rate_mbps']:6.0f} MB/s"
        )

    print("6 readers @200MB/s cap; writers @60MB/s cap arrive one per phase.\n")
    for reader in readers:
        reader.start()
    sim.run(until_us=sim.now + PHASE_US)
    report("readers only")
    for index, writer in enumerate(writers):
        writer.start()
        sim.run(until_us=sim.now + PHASE_US)
        report(f"+ writer {index + 1}")
    for index, reader in enumerate(readers):
        reader.stop()
        sim.run(until_us=sim.now + PHASE_US)
        report(f"- reader {index + 1}")


if __name__ == "__main__":
    main()
