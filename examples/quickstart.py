#!/usr/bin/env python3
"""Quickstart: two tenants sharing one SSD through the Gimbal switch.

Builds the smallest interesting deployment -- one SmartNIC JBOF with a
single simulated NVMe SSD, two tenants with different IO shapes -- runs
it for a simulated second, and prints each tenant's bandwidth, latency
percentiles, and the per-SSD virtual view Gimbal exposes to clients.

Run:  python examples/quickstart.py
"""

from repro.harness import Testbed, TestbedConfig
from repro.workloads import FioSpec


def main() -> None:
    # A Gimbal-managed JBOF whose SSD has been preconditioned clean.
    testbed = Testbed(TestbedConfig(scheme="gimbal", condition="clean"))

    # Tenant 1: a latency-sensitive 4 KiB random reader.
    testbed.add_worker(
        FioSpec(name="point-reader", io_pages=1, queue_depth=32, read_ratio=1.0)
    )
    # Tenant 2: a throughput-oriented 128 KiB sequential writer.
    testbed.add_worker(
        FioSpec(
            name="bulk-writer",
            io_pages=32,
            queue_depth=4,
            read_ratio=0.0,
            pattern="sequential",
        )
    )

    results = testbed.run(warmup_us=300_000, measure_us=1_000_000)

    print("Per-tenant results (1 simulated second, after 0.3s warmup):")
    for worker in results["workers"]:
        latency = (
            worker["read_latency"]
            if worker["read_latency"]["count"]
            else worker["write_latency"]
        )
        print(
            f"  {worker['name']:>12}: {worker['bandwidth_mbps']:7.1f} MB/s  "
            f"{worker['iops']:9.0f} IOPS  "
            f"avg {latency['mean']:6.0f}us  p99 {latency['p99']:7.0f}us"
        )

    scheduler = testbed.target.pipelines["ssd0"].scheduler
    print("\nGimbal's per-SSD virtual view (what clients see piggybacked on completions):")
    for key, value in scheduler.virtual_view().items():
        print(f"  {key:>20}: {value if isinstance(value, str) else round(value, 2)}")

    print(f"\nDevice write amplification: {results['write_amplification']['ssd0']:.2f}")


if __name__ == "__main__":
    main()
