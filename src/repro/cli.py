"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` -- show every reproducible table/figure and its driver;
* ``run <experiment> [--quick]`` -- regenerate one table/figure and
  print the same rows/series the paper reports;
* ``calibrate`` -- measure the simulated device's anchor numbers
  against the paper's (Section 2.2);
* ``simulate`` -- ad-hoc multi-tenant run: pick a scheme, a device
  condition and a worker mix, get bandwidth/latency per tenant;
* ``suite [--quick]`` -- regenerate *every* table/figure on one shared
  worker pool via :mod:`repro.harness.orchestrator` (cost-model
  scheduling, streaming execution; results identical to running each
  experiment serially);
* ``explore <experiment> [--grid axis=...] [--budget F] [--target-error E]``
  -- surrogate-guided adaptive sweep: train a model on the result
  cache's journal, simulate only the grid points near predicted
  crossovers or with high model disagreement (see
  :mod:`repro.harness.adaptive`);
* ``cache {stats,journal,prune,clear}`` -- inspect or manage the
  sweep-point result cache that ``run --cache`` (or ``REPRO_CACHE=1``)
  populates;
* ``profile <experiment>`` -- run one experiment under :mod:`cProfile`
  and print the hottest functions, the first stop when a figure takes
  longer to regenerate than expected.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, Optional, Tuple

from repro.sim.engine import KERNEL_BACKEND_ENV, KERNEL_BACKENDS
from repro.sim.shard import SHARD_MODES, resolve_shards


def _add_kernel_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKENDS,
        default=None,
        help="event-kernel backend: 'reference' (pure Python, default) or "
        "'batch' (numpy batch-advance; requires the [fast] extra)",
    )


def _apply_kernel_backend(args: argparse.Namespace) -> None:
    """Propagate ``--kernel-backend`` through the environment so every
    ``make_simulator()`` -- including ones in suite worker processes --
    picks the same backend."""
    backend = getattr(args, "kernel_backend", None)
    if backend is not None:
        os.environ[KERNEL_BACKEND_ENV] = backend


def _add_shards_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition each rack simulation into N JBOF shards advanced "
        "in conservative time windows (0 = unsharded; default: the "
        "REPRO_SHARDS environment variable, else unsharded)",
    )
    parser.add_argument(
        "--shard-mode",
        choices=SHARD_MODES,
        default="auto",
        help="how shards execute: worker 'processes', single-process "
        "'inline' round-robin (byte-identical results), or 'auto' "
        "(processes when multiple cores are available)",
    )


def _inject_shards(
    args: argparse.Namespace, run_params, kwargs: dict, name: str
) -> None:
    """Thread ``--shards`` into a driver as an explicit kwarg.

    The shard count must reach :class:`KvCluster` as a real point
    parameter (never ambient environment state) so the result cache
    fingerprints it; drivers without sharded topologies simply don't
    take the kwarg.
    """
    shards = resolve_shards(getattr(args, "shards", None))
    if not shards:
        return
    if "shards" not in run_params:
        print(f"note: {name} does not support --shards; ignoring", file=sys.stderr)
        return
    kwargs["shards"] = shards
    if "shard_mode" in run_params:
        kwargs["shard_mode"] = args.shard_mode

#: experiment name -> (module path, quick-mode kwargs).
EXPERIMENTS: Dict[str, Tuple[str, dict]] = {
    "fig02": ("repro.harness.experiments.fig02_unloaded_latency", {"measure_us": 100_000.0}),
    "fig03": ("repro.harness.experiments.fig03_core_scaling", {"measure_us": 100_000.0, "core_counts": (1, 2, 4)}),
    "fig04": ("repro.harness.experiments.fig04_interference", {"measure_us": 200_000.0}),
    "fig06": ("repro.harness.experiments.fig06_utilization", {"measure_us": 400_000.0, "warmup_us": 200_000.0, "num_workers": 8}),
    "fig07": ("repro.harness.experiments.fig07_fairness", {"measure_us": 500_000.0, "warmup_us": 300_000.0, "workers_per_class": 8}),
    "fig08": ("repro.harness.experiments.fig08_latency", {"measure_us": 500_000.0, "warmup_us": 300_000.0, "workers_per_class": 8}),
    "fig09": ("repro.harness.experiments.fig09_dynamic", {"phase_us": 250_000.0}),
    "fig10": ("repro.harness.experiments.fig10_rocksdb", {"instances": 4, "measure_us": 300_000.0, "workloads": ("A", "C")}),
    "fig11-12": ("repro.harness.experiments.fig11_12_scaling", {"instance_counts": (1, 2, 4), "measure_us": 300_000.0}),
    "fig13": ("repro.harness.experiments.fig13_virtual_view", {"instances": 4, "measure_us": 300_000.0, "workloads": ("A", "B")}),
    "fig14": ("repro.harness.experiments.fig14_read_ratio", {"duration_us": 200_000.0}),
    "fig15": ("repro.harness.experiments.fig15_latency_scenarios", {"duration_us": 150_000.0}),
    "fig16": ("repro.harness.experiments.fig16_processing_cost", {"measure_us": 150_000.0, "added_costs": (0.0, 5.0, 40.0, 320.0)}),
    "fig17": ("repro.harness.experiments.fig17_congestion_dynamics", {"phase_us": 200_000.0, "steps": 4}),
    "fig18": ("repro.harness.experiments.fig18_threshold_trace", {"phase_us": 150_000.0, "steps": 8}),
    "fig19-23": ("repro.harness.experiments.fig19_23_appendix_d", {"measure_us": 200_000.0}),
    "rack": ("repro.harness.experiments.rack", {"tenants": 16, "rack": (2,), "ssds_per_jbof": 2, "horizon_us": 200_000.0}),
    "table1": ("repro.harness.experiments.table1_overheads", {"measure_us": 100_000.0}),
    "table2": ("repro.harness.experiments.table2_comparison", {}),
    "sec5.8": ("repro.harness.experiments.sec58_generalization", {"measure_us": 500_000.0, "warmup_us": 250_000.0, "workers_per_class": 4}),
    "ablations": ("repro.harness.experiments.ablations", {"measure_us": 400_000.0, "warmup_us": 200_000.0, "workers": 4}),
    "aging": ("repro.harness.experiments.aging", {"measure_us": 150_000.0, "warmup_us": 75_000.0}),
    "ext-qlc": ("repro.harness.experiments.ext_qlc", {"measure_us": 400_000.0, "warmup_us": 200_000.0, "workers_per_class": 4}),
}


def _resolve_experiment(name: str) -> Optional[str]:
    """Accept either the short key (``fig09``) or the driver module's
    basename (``fig09_dynamic``)."""
    if name in EXPERIMENTS:
        return name
    for key, (module_path, _) in EXPERIMENTS.items():
        if module_path.rsplit(".", 1)[-1] == name:
            return key
    return None


def _load(name: str):
    import importlib

    module_path, quick_kwargs = EXPERIMENTS[name]
    return importlib.import_module(module_path), quick_kwargs


def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (module_path, _) in sorted(EXPERIMENTS.items()):
        print(f"{name.ljust(width)}  {module_path}")
    return 0


def _cache_from_args(args: argparse.Namespace):
    """Map the ``--cache``/``--no-cache``/``--cache-dir`` flags to the
    ``cache`` argument of a driver's ``run()``.

    ``None`` defers to the ambient configuration (the ``REPRO_CACHE``
    environment toggle); ``False`` disables caching outright.
    """
    if args.no_cache:
        return False
    if args.cache or args.cache_dir:
        from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache

        return ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    return None


def cmd_run(args: argparse.Namespace) -> int:
    _apply_kernel_backend(args)
    import inspect

    name = _resolve_experiment(args.experiment)
    if name is None:
        print(f"unknown experiment {args.experiment!r}; try: python -m repro list", file=sys.stderr)
        return 2
    module, quick_kwargs = _load(name)
    kwargs = dict(quick_kwargs) if args.quick else {}
    run_params = inspect.signature(module.run).parameters
    if args.jobs != 1:
        if "jobs" in run_params:
            kwargs["jobs"] = args.jobs
        else:
            print(
                f"note: {name} does not support --jobs; running serially",
                file=sys.stderr,
            )
    _inject_shards(args, run_params, kwargs, name)
    cache = _cache_from_args(args)
    if "cache" in run_params:
        kwargs["cache"] = cache
    elif cache not in (None, False):
        print(
            f"note: {name} does not support --cache; running uncached",
            file=sys.stderr,
        )
        cache = None

    def report_cache() -> None:
        store = cache if cache not in (None, False) else None
        if store is None:
            return
        stats = store.stats
        print(
            f"cache: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.seconds_saved:.1f}s saved ({store.root})",
            file=sys.stderr,
        )

    if not args.trace and not args.stats:
        results = module.run(**kwargs)
        print(module.summarize(results))
        report_cache()
        return 0
    from repro import obs

    if args.trace:
        # Fail fast on an unwritable journal path instead of after a
        # potentially minutes-long experiment.
        try:
            open(args.trace, "w", encoding="utf-8").close()
        except OSError as exc:
            print(f"cannot open trace journal {args.trace!r}: {exc}", file=sys.stderr)
            return 2
    with obs.capture(trace_path=args.trace) as session:
        results = module.run(**kwargs)
        print(module.summarize(results))
        if args.stats:
            print()
            print(session.stats_report())
    if args.trace:
        print(
            f"\ntrace journal: {args.trace} "
            f"({session.trace_events_emitted} events); summarize with "
            f"`python -m repro.obs.report {args.trace}`",
            file=sys.stderr,
        )
    report_cache()
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    """``repro suite`` -- regenerate the whole evaluation in one go."""
    _apply_kernel_backend(args)
    import json
    import time

    from repro.harness.orchestrator import run_suite, run_suite_serial, suite_experiments

    names = None
    if args.experiments:
        names = [name for chunk in args.experiments for name in chunk.split(",") if name]
    try:
        specs = suite_experiments(quick=args.quick, names=names)
    except KeyError as exc:
        print(f"{exc.args[0]}; try: python -m repro list", file=sys.stderr)
        return 2
    shards = resolve_shards(getattr(args, "shards", None))
    if shards:
        # Drivers that take no `shards` kwarg filter it out through
        # _accepted_kwargs; the ones that do get it fingerprinted like
        # any other point parameter.
        for spec in specs:
            spec.kwargs["shards"] = shards
            spec.kwargs["shard_mode"] = args.shard_mode
    cache = _cache_from_args(args)
    started = time.perf_counter()

    if args.serial:
        results = run_suite_serial(specs, jobs=max(1, args.jobs), cache=cache)
        report = {
            "mode": "serial",
            "jobs": max(1, args.jobs),
            "wall_s": round(time.perf_counter() - started, 3),
            "experiments": len(specs),
        }
    else:

        def progress(event: str, payload: dict) -> None:
            if event == "experiment":
                print(
                    f"  done {payload['experiment']:10s} "
                    f"{payload['points']:3d} points "
                    f"({payload['cache_hits']} cached, {payload['wall_s']:.1f}s)",
                    file=sys.stderr,
                )

        suite = run_suite(
            specs,
            jobs=args.jobs if args.jobs > 0 else None,
            cache=cache,
            progress=progress if not args.quiet else None,
        )
        results = suite.results
        report = {"mode": "orchestrated", **suite.report()}

    if not args.quiet:
        import importlib

        for spec in specs:
            module = importlib.import_module(spec.module_path)
            print(module.summarize(results[spec.name]))
            print()
    print(
        f"suite: {report['experiments']} experiments in {report['wall_s']:.1f}s "
        f"({report['mode']}, jobs={report['jobs']})"
        + (
            f"; {report['points_total']} points, {report['cache_hits']} cached, "
            f"{report['stolen_idle_s']:.1f}s overlapped"
            if report["mode"] == "orchestrated"
            else ""
        ),
        file=sys.stderr,
    )
    if args.json:
        payload = {"report": report, "results": results}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
        print(f"suite results: {args.json}", file=sys.stderr)
    return 0


def _parse_grid_values(text: str):
    """Parse one ``--grid`` axis: ``v1,v2,...`` or ``lo:hi:n``.

    ``lo:hi:n`` expands to ``n`` evenly spaced values (integers when
    the endpoints and step are integral, floats otherwise).
    """

    def scalar(token: str):
        token = token.strip()
        try:
            return int(token)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            return token

    if ":" in text and "," not in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(f"range axis must be lo:hi:n, got {text!r}")
        lo, hi, n = scalar(parts[0]), scalar(parts[1]), int(parts[2])
        if n < 2:
            raise ValueError(f"range axis needs n >= 2, got {n}")
        step = (hi - lo) / (n - 1)
        values = [lo + step * i for i in range(n)]
        if isinstance(lo, int) and isinstance(hi, int) and all(
            float(v).is_integer() for v in values
        ):
            return [int(v) for v in values]
        return [round(float(v), 10) for v in values]
    return [scalar(token) for token in text.split(",") if token.strip()]


def cmd_explore(args: argparse.Namespace) -> int:
    """``repro explore`` -- surrogate-guided adaptive grid exploration."""
    _apply_kernel_backend(args)
    import json

    from repro.harness.adaptive import explore

    name = _resolve_experiment(args.experiment)
    if name is None:
        print(f"unknown experiment {args.experiment!r}; try: python -m repro list", file=sys.stderr)
        return 2
    module, _ = _load(name)
    space_fn = getattr(module, "explore_space", None)
    if space_fn is None:
        supported = sorted(
            key for key, (module_path, _) in EXPERIMENTS.items()
            if hasattr(__import__(module_path, fromlist=["x"]), "explore_space")
        )
        print(
            f"{name} does not expose an explore_space(); try one of: "
            + ", ".join(supported),
            file=sys.stderr,
        )
        return 2
    space = space_fn(root_seed=args.seed) if args.seed is not None else space_fn()
    for override in args.grid or []:
        axis, _, values = override.partition("=")
        axis = axis.strip()
        if not values or axis not in space.axes:
            print(
                f"--grid axis {axis!r} is not one of {sorted(space.axes)}",
                file=sys.stderr,
            )
            return 2
        try:
            space.axes[axis] = _parse_grid_values(values)
        except ValueError as exc:
            print(f"bad --grid {override!r}: {exc}", file=sys.stderr)
            return 2

    def progress(event: str, payload: dict) -> None:
        if event == "batch":
            print(
                f"  simulated {payload['simulated']}/{payload['budget']} budget points",
                file=sys.stderr,
            )

    result = explore(
        space,
        budget=args.budget,
        target_error=args.target_error,
        jobs=args.jobs,
        cache=_cache_from_args(args),
        backend=args.backend,
        bootstrap=not args.no_bootstrap,
        progress=progress if not args.quiet else None,
    )
    report = result.report()
    print(
        f"explored {report['space']}: {report['simulated']}/{report['grid_points']} "
        f"grid points simulated ({100 * report['fraction_simulated']:.1f}%), "
        f"{report['rounds']} rounds, backend={report['backend']}, "
        f"stopped on {report['stopped_on']}"
    )
    for target, stats in sorted(report["heldout"].items()):
        print(
            f"  held-out {target}: rmse={stats['rmse']:.4g} "
            f"(relative {100 * stats['rel_rmse']:.1f}% of range, n={stats['count']})"
        )
    if space.crossover is not None:
        if report["crossovers"]:
            for crossover in report["crossovers"]:
                group = ",".join(f"{k}={v}" for k, v in sorted(crossover["group"].items()))
                confidence = "simulated" if crossover.get("observed") else "predicted"
                print(
                    f"  crossover [{group or 'all'}]: {crossover['along']} "
                    f"~= {crossover['estimate']:g} "
                    f"(between {crossover['lo']} and {crossover['hi']}, {confidence})"
                )
        else:
            print("  no crossovers found on this grid")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        print(f"explore report: {args.json}", file=sys.stderr)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache {stats,prune,clear}`` -- manage the result cache."""
    import json

    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.cache_command == "stats":
        entries = cache.entries()
        total_bytes = sum(entry["size_bytes"] for entry in entries)
        stored_seconds = sum(entry["elapsed_s"] for entry in entries)
        by_fn: Dict[str, int] = {}
        for entry in entries:
            by_fn[entry["fn"]] = by_fn.get(entry["fn"], 0) + 1
        runs = [record for record in cache.read_journal() if "sweep" in record]
        if args.json:
            print(
                json.dumps(
                    {
                        "cache_dir": str(cache.root),
                        "entries": len(entries),
                        "total_bytes": total_bytes,
                        "stored_compute_seconds": round(stored_seconds, 3),
                        "by_fn": by_fn,
                        "runs": runs,
                        "point_records": len(cache.point_records()),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(f"cache dir : {cache.root}")
        print(f"entries   : {len(entries)}")
        print(f"size      : {total_bytes / 1024.0:.1f} KiB")
        print(f"stored    : {stored_seconds:.1f}s of compute")
        for fn, count in sorted(by_fn.items()):
            print(f"  {fn}  x{count}")
        if runs:
            tail = runs[-5:]
            print(f"last {len(tail)} runs:")
            for record in tail:
                print(
                    f"  {record.get('sweep', '?'):10s} "
                    f"hits={record.get('hits', 0)} misses={record.get('misses', 0)} "
                    f"saved={record.get('seconds_saved', 0.0):.1f}s"
                )
        return 0
    if args.cache_command == "journal":
        points = cache.point_records()
        runs = [record for record in cache.read_journal() if "sweep" in record]
        if args.compact:
            stats = cache.compact_journal(max_records=args.max_records)
            if args.json:
                print(json.dumps(stats, indent=2, sort_keys=True))
            else:
                print(
                    f"compacted journal: {stats['records_before']} -> "
                    f"{stats['records_kept']} records "
                    f"({stats['dropped_superseded']} superseded, "
                    f"{stats['dropped_over_cap']} over cap)"
                )
            return 0
        by_fn: Dict[str, int] = {}
        for record in points:
            by_fn[record.get("fn", "?")] = by_fn.get(record.get("fn", "?"), 0) + 1
        if args.json:
            print(
                json.dumps(
                    {
                        "cache_dir": str(cache.root),
                        "sweep_runs": len(runs),
                        "point_records": len(points),
                        "points_by_fn": by_fn,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(f"cache dir     : {cache.root}")
        print(f"sweep runs    : {len(runs)}")
        print(f"point records : {len(points)} (surrogate training data)")
        for fn, count in sorted(by_fn.items()):
            print(f"  {fn}  x{count}")
        return 0
    if args.cache_command == "prune":
        removed = cache.prune(
            max_bytes=int(args.max_mb * 1024 * 1024) if args.max_mb is not None else None,
            max_entries=args.max_entries,
        )
        print(f"pruned {removed} entries from {cache.root}")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
        return 0
    return 2


def cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile <experiment>`` -- cProfile one experiment driver.

    Runs the driver exactly as ``repro run`` would (quick-mode windows
    by default, since profiles rarely need full-length runs) and prints
    the top functions by the chosen sort key.  ``--output`` dumps the
    raw stats for ``snakeviz``/``pstats`` post-processing.
    """
    _apply_kernel_backend(args)
    import cProfile
    import inspect
    import pstats

    name = _resolve_experiment(args.experiment)
    if name is None:
        print(f"unknown experiment {args.experiment!r}; try: python -m repro list", file=sys.stderr)
        return 2
    module, quick_kwargs = _load(name)
    kwargs = dict(quick_kwargs) if not args.full else {}
    run_params = inspect.signature(module.run).parameters
    _inject_shards(args, run_params, kwargs, name)

    if "shards" in kwargs:
        return _profile_sharded(args, module, kwargs)

    profiler = cProfile.Profile()
    profiler.enable()
    results = module.run(**kwargs)
    profiler.disable()

    if not args.quiet:
        print(module.summarize(results))
        print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw profile: {args.output} (inspect with python -m pstats)", file=sys.stderr)
    return 0


def _profile_sharded(args: argparse.Namespace, module, kwargs: dict) -> int:
    """``repro profile --shards N``: per-shard cProfile breakdown.

    Each shard kernel (the coordinator's shard 0 included) profiles its
    own window steps -- in its worker process when sharded across
    processes, via the inline channel otherwise -- so only one profiler
    is ever active per process (two concurrently enabled cProfile
    instances raise).  Dumps are merged per shard id and printed as one
    breakdown per shard.
    """
    import pstats
    import tempfile

    from repro.sim.shard import SHARD_PROFILE_ENV

    shard_dir = tempfile.mkdtemp(prefix="repro-shard-profile-")
    previous = os.environ.get(SHARD_PROFILE_ENV)
    os.environ[SHARD_PROFILE_ENV] = shard_dir
    try:
        results = module.run(**kwargs)
    finally:
        if previous is None:
            os.environ.pop(SHARD_PROFILE_ENV, None)
        else:
            os.environ[SHARD_PROFILE_ENV] = previous
    if not args.quiet:
        print(module.summarize(results))
        print()
    by_shard: Dict[str, list] = {}
    for entry in sorted(os.listdir(shard_dir)):
        if entry.endswith(".pstats"):
            shard_id = entry.split(".", 1)[0]
            by_shard.setdefault(shard_id, []).append(os.path.join(shard_dir, entry))
    if not by_shard:
        print("no shard profiles were produced", file=sys.stderr)
        return 1
    for shard_id in sorted(by_shard, key=lambda key: int(key.rsplit("-", 1)[-1])):
        paths = by_shard[shard_id]
        stats = pstats.Stats(paths[0], stream=sys.stdout)
        for path in paths[1:]:
            stats.add(path)
        label = "coordinator" if shard_id.endswith("-0") else "JBOF shard"
        print(f"=== {shard_id} ({label}, {len(paths)} dump(s)) ===")
        stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(f"raw per-shard profiles: {shard_dir}", file=sys.stderr)
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Measure the device anchors the profiles are calibrated against."""
    _apply_kernel_backend(args)
    import random

    from repro.harness.report import format_table
    from repro.sim import make_simulator
    from repro.ssd import (
        DeviceCommand,
        IoOp,
        SsdDevice,
        precondition_clean,
        precondition_fragmented,
        profile_by_name,
    )

    def closed_loop(condition, queue_depth, op, npages, sequential=False):
        sim = make_simulator()
        device = SsdDevice(sim, profile=profile_by_name(args.profile))
        if condition == "clean":
            precondition_clean(device)
        else:
            precondition_fragmented(device)
        rng = random.Random(0)
        state = {"bytes": 0, "ops": 0, "latency": 0.0, "next": 0}
        duration = args.duration_ms * 1000.0

        def next_lpn():
            if sequential:
                lpn = state["next"]
                state["next"] = (state["next"] + npages) % (device.exported_pages - npages)
                return lpn
            return rng.randrange(device.exported_pages - npages)

        def on_complete(cmd):
            state["bytes"] += cmd.size_bytes
            state["ops"] += 1
            state["latency"] += cmd.latency_us
            if sim.now < duration:
                device.submit(DeviceCommand(op, next_lpn(), npages), on_complete)

        for _ in range(queue_depth):
            device.submit(DeviceCommand(op, next_lpn(), npages), on_complete)
        sim.run(until_us=duration)
        seconds = duration / 1e6
        return (
            state["bytes"] / seconds / (1024 * 1024),
            state["ops"] / seconds,
            state["latency"] / max(1, state["ops"]),
            device.write_amplification,
        )

    rows = []
    for label, condition, qd, op, npages, seq in (
        ("4K rand read QD128", "clean", 128, IoOp.READ, 1, False),
        ("4K rand read QD1", "clean", 1, IoOp.READ, 1, False),
        ("128K rand read QD8", "clean", 8, IoOp.READ, 32, False),
        ("128K seq write QD4", "clean", 4, IoOp.WRITE, 32, True),
        ("4K rand write QD32 (frag)", "fragmented", 32, IoOp.WRITE, 1, False),
    ):
        mbps, iops, latency, wa = closed_loop(condition, qd, op, npages, seq)
        rows.append((label, mbps, iops / 1000.0, latency, wa))
    print(
        format_table(
            ["workload", "MB/s", "KIOPS", "avg latency us", "WA"],
            rows,
            title=f"Device anchors ({args.profile} profile)",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    _apply_kernel_backend(args)
    from repro.harness import Testbed, TestbedConfig
    from repro.harness.report import format_table
    from repro.workloads import FioSpec

    testbed = Testbed(
        TestbedConfig(scheme=args.scheme, condition=args.condition, seed=args.seed)
    )
    io_pages = args.io_kb // 4
    for index in range(args.readers):
        testbed.add_worker(
            FioSpec(f"reader{index}", io_pages=io_pages, queue_depth=args.queue_depth,
                    read_ratio=1.0),
            region_pages=1600,
        )
    for index in range(args.writers):
        testbed.add_worker(
            FioSpec(f"writer{index}", io_pages=io_pages, queue_depth=args.queue_depth,
                    read_ratio=0.0,
                    pattern="sequential" if io_pages >= 32 else "random"),
            region_pages=1600,
        )
    results = testbed.run(
        warmup_us=args.seconds * 1e6 * 0.3, measure_us=args.seconds * 1e6
    )
    rows = []
    for worker in results["workers"]:
        latency = (
            worker["read_latency"] if worker["read_latency"]["count"] else worker["write_latency"]
        )
        rows.append(
            (worker["name"], worker["bandwidth_mbps"], worker["iops"],
             latency["mean"], latency["p99"])
        )
    print(
        format_table(
            ["tenant", "MB/s", "IOPS", "avg us", "p99 us"],
            rows,
            title=f"{args.scheme} on {args.condition} SSD "
            f"({args.readers}R+{args.writers}W, {args.io_kb}KB, QD{args.queue_depth})",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Gimbal (SIGCOMM 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible tables/figures").set_defaults(fn=cmd_list)

    run_parser = sub.add_parser("run", help="regenerate one table/figure")
    run_parser.add_argument("experiment", help="e.g. fig07, table1 (see `list`)")
    run_parser.add_argument(
        "--quick", action="store_true", help="scaled-down measurement windows"
    )
    run_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment's sweep points "
        "(results are identical to a serial run)",
    )
    run_parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="stream a JSONL trace journal of simulation events to PATH",
    )
    run_parser.add_argument(
        "--stats",
        action="store_true",
        help="print registry counters and kernel probe stats after the run",
    )
    run_parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse cached sweep-point results and cache fresh ones "
        "(content-addressed; invalidated by code or parameter changes)",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even if REPRO_CACHE is set",
    )
    run_parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory (default .repro-cache; implies --cache)",
    )
    _add_shards_args(run_parser)
    _add_kernel_backend_arg(run_parser)
    run_parser.set_defaults(fn=cmd_run)

    suite_parser = sub.add_parser(
        "suite",
        help="regenerate every table/figure on one shared worker pool",
    )
    suite_parser.add_argument(
        "--quick", action="store_true", help="scaled-down measurement windows"
    )
    suite_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=0,
        metavar="N",
        help="worker processes shared by the whole suite "
        "(default: the machine's CPU count; results are identical either way)",
    )
    suite_parser.add_argument(
        "--experiments",
        "-e",
        action="append",
        metavar="NAME[,NAME...]",
        help="restrict to these experiments (repeatable; registry order is kept)",
    )
    suite_parser.add_argument(
        "--serial",
        action="store_true",
        help="run each experiment to completion in turn (the pre-orchestrator "
        "baseline; useful for timing comparisons and identity checks)",
    )
    suite_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-experiment summaries"
    )
    suite_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="dump the suite report and every experiment's results as JSON",
    )
    suite_parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse cached sweep-point results and cache fresh ones",
    )
    suite_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even if REPRO_CACHE is set",
    )
    suite_parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory (default .repro-cache; implies --cache)",
    )
    _add_shards_args(suite_parser)
    _add_kernel_backend_arg(suite_parser)
    suite_parser.set_defaults(fn=cmd_suite)

    profile_parser = sub.add_parser(
        "profile", help="run one experiment under cProfile and print hot functions"
    )
    profile_parser.add_argument("experiment", help="e.g. fig07, table1 (see `list`)")
    profile_parser.add_argument(
        "--top", type=int, default=25, metavar="N", help="rows to print (default 25)"
    )
    profile_parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls", "calls", "time"],
        help="pstats sort key (default cumulative)",
    )
    profile_parser.add_argument(
        "--full",
        action="store_true",
        help="profile the full-length run instead of quick-mode windows",
    )
    profile_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also dump raw pstats data to PATH",
    )
    profile_parser.add_argument(
        "--quiet", action="store_true", help="suppress the experiment's own summary"
    )
    _add_shards_args(profile_parser)
    _add_kernel_backend_arg(profile_parser)
    profile_parser.set_defaults(fn=cmd_profile)

    calibrate_parser = sub.add_parser("calibrate", help="measure device anchor numbers")
    calibrate_parser.add_argument("--profile", default="dct983", choices=["dct983", "p3600"])
    calibrate_parser.add_argument("--duration-ms", type=float, default=500.0)
    _add_kernel_backend_arg(calibrate_parser)
    calibrate_parser.set_defaults(fn=cmd_calibrate)

    simulate_parser = sub.add_parser("simulate", help="ad-hoc multi-tenant run")
    simulate_parser.add_argument("--scheme", default="gimbal")
    simulate_parser.add_argument("--condition", default="fragmented")
    simulate_parser.add_argument("--readers", type=int, default=4)
    simulate_parser.add_argument("--writers", type=int, default=4)
    simulate_parser.add_argument("--io-kb", type=int, default=4, choices=[4, 8, 16, 32, 64, 128])
    simulate_parser.add_argument("--queue-depth", type=int, default=32)
    simulate_parser.add_argument("--seconds", type=float, default=1.0)
    simulate_parser.add_argument("--seed", type=int, default=42)
    _add_kernel_backend_arg(simulate_parser)
    simulate_parser.set_defaults(fn=cmd_simulate)

    explore_parser = sub.add_parser(
        "explore",
        help="surrogate-guided adaptive sweep over an experiment's parameter grid",
    )
    explore_parser.add_argument("experiment", help="e.g. fig04, rack (needs explore_space())")
    explore_parser.add_argument(
        "--grid",
        action="append",
        metavar="AXIS=V1,V2,... | AXIS=LO:HI:N",
        help="override one grid axis (repeatable); LO:HI:N expands to N "
        "evenly spaced values",
    )
    explore_parser.add_argument(
        "--budget",
        type=float,
        default=0.2,
        metavar="F",
        help="simulation budget: a grid fraction (<= 1.0) or an absolute "
        "point count (default 0.2 = one fifth of the grid)",
    )
    explore_parser.add_argument(
        "--target-error",
        type=float,
        default=0.05,
        metavar="E",
        help="stop early once every target's held-out relative RMSE is "
        "under E (default 0.05)",
    )
    explore_parser.add_argument(
        "--backend",
        choices=["auto", "tree", "knn"],
        default="auto",
        help="surrogate backend: numpy bagged trees ('tree'), pure-Python "
        "k-NN ('knn'), or 'auto' (trees when numpy is available)",
    )
    explore_parser.add_argument(
        "--no-bootstrap",
        action="store_true",
        help="ignore existing journal records; train only on points "
        "simulated in this run",
    )
    explore_parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for simulated batches",
    )
    explore_parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="override the space's root seed",
    )
    explore_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="dump the exploration report as JSON",
    )
    explore_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-batch progress"
    )
    explore_parser.add_argument(
        "--cache", action="store_true",
        help="reuse cached sweep-point results and cache fresh ones",
    )
    explore_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if REPRO_CACHE is set",
    )
    explore_parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (default .repro-cache; implies --cache)",
    )
    _add_kernel_backend_arg(explore_parser)
    explore_parser.set_defaults(fn=cmd_explore)

    cache_parser = sub.add_parser("cache", help="inspect or manage the sweep result cache")
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    stats_parser = cache_sub.add_parser("stats", help="entry counts, sizes and recent runs")
    stats_parser.add_argument("--cache-dir", metavar="DIR", default=None)
    stats_parser.add_argument("--json", action="store_true", help="machine-readable output")
    journal_parser = cache_sub.add_parser(
        "journal", help="inspect or compact the per-point training journal"
    )
    journal_parser.add_argument("--cache-dir", metavar="DIR", default=None)
    journal_parser.add_argument(
        "--compact",
        action="store_true",
        help="drop superseded per-point records (same fn+kwargs, older "
        "code) and cap total journal growth",
    )
    journal_parser.add_argument(
        "--max-records",
        type=int,
        default=None,
        metavar="N",
        help="with --compact: keep at most N records (oldest dropped first)",
    )
    journal_parser.add_argument("--json", action="store_true", help="machine-readable output")
    prune_parser = cache_sub.add_parser(
        "prune", help="evict least-recently-used entries beyond the limits"
    )
    prune_parser.add_argument("--cache-dir", metavar="DIR", default=None)
    prune_parser.add_argument(
        "--max-mb",
        type=float,
        default=512.0,
        help="keep at most this many MiB of entries (default 512)",
    )
    prune_parser.add_argument(
        "--max-entries", type=int, default=None, help="keep at most this many entries"
    )
    clear_parser = cache_sub.add_parser("clear", help="delete every cached entry")
    clear_parser.add_argument("--cache-dir", metavar="DIR", default=None)
    cache_parser.set_defaults(fn=cmd_cache)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
