"""Fairness metrics from the paper's evaluation.

Section 5.1 defines *fair utilisation* (f-Util): a worker's achieved
bandwidth divided by its fair share of its own standalone maximum.
An ideal multi-tenancy mechanism drives every worker's f-Util to 1.
Section 5.3 additionally uses the *utilisation deviation*
``|actual - ideal| / ideal`` with ideal = 1.  Jain's index is included
as the standard cross-check.
"""

from __future__ import annotations

from typing import Sequence


def f_util(per_worker_bw: float, standalone_max_bw: float, total_workers: int) -> float:
    """Fair utilisation of one worker (paper Section 5.1).

    ``standalone_max_bw`` is the bandwidth the worker achieves running
    alone on the device; with ``total_workers`` co-located workers its
    fair share is ``standalone_max_bw / total_workers``.
    """
    if standalone_max_bw <= 0:
        raise ValueError("standalone bandwidth must be positive")
    if total_workers <= 0:
        raise ValueError("worker count must be positive")
    fair_share = standalone_max_bw / total_workers
    return per_worker_bw / fair_share


def utilization_deviation(actual_util: float, ideal_util: float = 1.0) -> float:
    """``|actual - ideal| / ideal`` -- Section 5.3's deviation metric."""
    if ideal_util <= 0:
        raise ValueError("ideal utilisation must be positive")
    return abs(actual_util - ideal_util) / ideal_util


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index over a set of allocations.

    1.0 means perfectly equal; 1/n means one worker holds everything.
    """
    values = list(allocations)
    if not values:
        raise ValueError("no allocations")
    if any(v < 0 for v in values):
        raise ValueError("allocations must be non-negative")
    total = sum(values)
    square_sum = sum(v * v for v in values)
    if total == 0 or square_sum == 0.0:
        # All-zero, or denormals whose squares underflow to zero:
        # treat as equal shares.
        return 1.0
    return total * total / (len(values) * square_sum)
