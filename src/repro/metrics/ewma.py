"""Exponentially weighted moving average.

Gimbal smooths observed IO latencies with an EWMA before comparing
them against the congestion thresholds (Section 3.2 of the paper);
``alpha`` is the paper's alpha_D and weighs the *newest* sample.
"""

from __future__ import annotations

from typing import Optional


class Ewma:
    """``value = (1 - alpha) * value + alpha * sample``.

    The first sample initialises the average directly, which matches
    how a latency monitor behaves at start-of-day (there is no
    meaningful prior to decay from).
    """

    __slots__ = ("alpha", "_value")

    def __init__(self, alpha: float = 0.5, initial: Optional[float] = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = initial

    @property
    def value(self) -> float:
        """Current average; 0.0 before any sample has been observed."""
        return self._value if self._value is not None else 0.0

    @property
    def initialized(self) -> bool:
        return self._value is not None

    def update(self, sample: float) -> float:
        """Fold in one observation and return the new average."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.alpha * (sample - self._value)
        return self._value

    def reset(self, value: Optional[float] = None) -> None:
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ewma(alpha={self.alpha}, value={self.value:.3f})"
