"""Log-bucketed latency histogram with percentile queries.

The evaluation reports average, p99 and p99.9 latencies over runs that
can record hundreds of thousands of completions, so we keep a
geometric-bucket histogram (HdrHistogram-style) rather than raw
samples: constant memory, ~2% relative quantile error, exact counts
and exact means.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


class LatencyHistogram:
    """Histogram over positive values with geometrically spaced buckets.

    Parameters
    ----------
    min_value, max_value:
        Range covered with full resolution.  Samples below ``min_value``
        land in the first bucket; samples above ``max_value`` land in
        the last one (and are still counted exactly in the mean).
    growth:
        Ratio between consecutive bucket boundaries.  1.02 bounds the
        relative error of percentile estimates at about 2%.
    """

    def __init__(self, min_value: float = 1.0, max_value: float = 1e7, growth: float = 1.02):
        if min_value <= 0 or max_value <= min_value or growth <= 1.0:
            raise ValueError("invalid histogram configuration")
        self.min_value = min_value
        self.max_value = max_value
        self._log_growth = math.log(growth)
        self._num_buckets = int(math.log(max_value / min_value) / self._log_growth) + 2
        self._counts = [0] * self._num_buckets
        self._growth = growth
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # value -> bucket index memo for the hot record() path.  The
        # analytic simulation produces the same exact float latencies
        # over and over (bookings are sums of a few profile constants),
        # so the cache hit rate is high; it is bounded and simply
        # dropped when full so adversarial streams cannot grow it.
        self._index_cache: Dict[float, int] = {}

    _INDEX_CACHE_CAP = 32768

    def _bucket_index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        index = int(math.log(value / self.min_value) / self._log_growth) + 1
        return min(index, self._num_buckets - 1)

    def _bucket_midpoint(self, index: int) -> float:
        if index == 0:
            return self.min_value
        low = self.min_value * math.exp(self._log_growth * (index - 1))
        return low * math.sqrt(self._growth)

    def record(self, value: float) -> None:
        """Add one observation (e.g. a completion latency in microseconds)."""
        if value < 0:
            raise ValueError(f"negative latency: {value}")
        cache = self._index_cache
        index = cache.get(value)
        if index is None:
            index = self._bucket_index(value)
            if len(cache) >= self._INDEX_CACHE_CAP:
                cache.clear()
            cache[value] = index
        self._counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def growth(self) -> float:
        """Configured bucket-boundary growth ratio (construction arg)."""
        return self._growth

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Value at percentile ``pct`` (0-100), interpolated from buckets.

        The extremes are clamped to the exact observed min/max so p0
        and p100 are exact.
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if self.count == 0:
            return 0.0
        target = pct / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target:
                estimate = self._bucket_midpoint(index)
                return min(max(estimate, self.min), self.max)
        return self.max

    def percentiles(self, pcts: Sequence[float]) -> Dict[float, float]:
        """Batch percentile query returning ``{pct: value}``."""
        return {pct: self.percentile(pct) for pct in pcts}

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (with identical configuration) into this one."""
        if (
            other.min_value != self.min_value
            or other.max_value != self.max_value
            or other._growth != self._growth
            or other._num_buckets != self._num_buckets
        ):
            # Bucket count alone is not enough: e.g. (min=1, max=1e7,
            # growth=1.02) and a histogram with a different max/growth
            # pair can coincide in _num_buckets while binning the same
            # value into different buckets.
            raise ValueError("cannot merge histograms with different configurations")
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self) -> Dict[str, float]:
        """The latency tuple the paper's figures report."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
            "max": self.max if self.count else 0.0,
        }

    def nonzero_buckets(self) -> List[tuple]:
        """(midpoint, count) pairs for plotting distributions."""
        return [
            (self._bucket_midpoint(index), bucket_count)
            for index, bucket_count in enumerate(self._counts)
            if bucket_count
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyHistogram(n={self.count}, mean={self.mean:.1f}us)"
