"""Windowed percentile timelines.

The dynamic figures (9, 17, 18) plot latency percentiles *over time*;
:class:`PercentileTimeline` buckets observations into fixed windows,
keeps one histogram per window, and emits (window_start, percentile)
series -- a timeline-shaped companion to
:class:`~repro.metrics.histogram.LatencyHistogram`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.metrics.histogram import LatencyHistogram


class PercentileTimeline:
    """Per-window latency histograms with percentile series output."""

    def __init__(self, window_us: float, min_value: float = 1.0, max_value: float = 1e7):
        if window_us <= 0:
            raise ValueError("window must be positive")
        self.window_us = window_us
        self._min_value = min_value
        self._max_value = max_value
        self._windows: Dict[int, LatencyHistogram] = {}

    @property
    def min_value(self) -> float:
        """Configured per-window histogram range floor (construction arg)."""
        return self._min_value

    @property
    def max_value(self) -> float:
        """Configured per-window histogram range ceiling (construction arg)."""
        return self._max_value

    def record(self, now_us: float, value: float) -> None:
        index = int(now_us // self.window_us)
        histogram = self._windows.get(index)
        if histogram is None:
            histogram = LatencyHistogram(self._min_value, self._max_value)
            self._windows[index] = histogram
        histogram.record(value)

    def series(self, pct: float) -> List[Tuple[float, float]]:
        """(window_start_us, percentile-value) for each non-empty window."""
        return [
            (index * self.window_us, histogram.percentile(pct))
            for index, histogram in sorted(self._windows.items())
        ]

    def mean_series(self) -> List[Tuple[float, float]]:
        return [
            (index * self.window_us, histogram.mean)
            for index, histogram in sorted(self._windows.items())
        ]

    def multi_series(self, pcts: Sequence[float]) -> Dict[float, List[Tuple[float, float]]]:
        """Several percentile series in one pass."""
        return {pct: self.series(pct) for pct in pcts}

    def merge(self, other: "PercentileTimeline") -> None:
        """Fold another timeline (same window and range) into this one.

        Window histograms merge exactly, so merging shards of a
        partitioned observation stream equals the timeline of the
        concatenated stream -- the property the parallel sweep runner
        relies on.
        """
        if (
            other.window_us != self.window_us
            or other._min_value != self._min_value
            or other._max_value != self._max_value
        ):
            raise ValueError("cannot merge timelines with different configurations")
        for index, histogram in other._windows.items():
            mine = self._windows.get(index)
            if mine is None:
                mine = LatencyHistogram(self._min_value, self._max_value)
                self._windows[index] = mine
            mine.merge(histogram)

    def total(self) -> LatencyHistogram:
        """All windows merged into one histogram."""
        merged = LatencyHistogram(self._min_value, self._max_value)
        for histogram in self._windows.values():
            merged.merge(histogram)
        return merged

    @property
    def window_count(self) -> int:
        return len(self._windows)
