"""Throughput accounting: totals and time series.

Two tools:

* :class:`ThroughputMonitor` -- accumulate (time, bytes, ops) events
  and report aggregate bandwidth/IOPS over an interval, exactly the
  quantities Figures 4, 6, 7 and 19-21 plot.
* :class:`IntervalSeries` -- bucket observations into fixed windows to
  produce the timeline plots (Figures 9, 17, 18).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.units import MBPS


class ThroughputMonitor:
    """Counts bytes and operations between ``start()`` and a query point.

    A warm-up period is handled by calling :meth:`start` once the
    system has reached steady state; everything recorded before that is
    discarded from the totals.
    """

    def __init__(self) -> None:
        self.start_time: Optional[float] = None
        self.bytes = 0
        self.ops = 0

    def start(self, now_us: float) -> None:
        """Begin (or restart) the measurement window at ``now_us``."""
        self.start_time = now_us
        self.bytes = 0
        self.ops = 0

    def record(self, now_us: float, nbytes: int) -> None:
        """Record one completed operation of ``nbytes`` at ``now_us``."""
        if self.start_time is None or now_us < self.start_time:
            return
        self.bytes += nbytes
        self.ops += 1

    def bandwidth_mbps(self, now_us: float) -> float:
        """Average bandwidth in MB/s over the measurement window."""
        if self.start_time is None:
            return 0.0
        elapsed = now_us - self.start_time
        if elapsed <= 0:
            return 0.0
        return (self.bytes / elapsed) / MBPS

    def iops(self, now_us: float) -> float:
        """Average operations per second over the measurement window."""
        if self.start_time is None:
            return 0.0
        elapsed = now_us - self.start_time
        if elapsed <= 0:
            return 0.0
        return self.ops / (elapsed / 1e6)


class IntervalSeries:
    """Bucket (time, value) observations into fixed-width windows.

    ``mode`` selects how a window aggregates its observations:

    * ``"sum"``  -- e.g. bytes completed per window (throughput timelines)
    * ``"mean"`` -- e.g. average latency per window (Figure 9's latency trace)
    * ``"last"`` -- e.g. the congestion threshold value (Figure 18)
    """

    _MODES = ("sum", "mean", "last")

    def __init__(self, window_us: float, mode: str = "sum"):
        if window_us <= 0:
            raise ValueError("window must be positive")
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}")
        self.window_us = window_us
        self.mode = mode
        self._sums: Dict[int, float] = {}
        self._counts: Dict[int, int] = {}
        self._lasts: Dict[int, float] = {}
        # Deferred current-window accumulator: observations land here
        # (one attribute bump each) and fold into the dicts only when
        # the stream crosses a window boundary or a reader needs the
        # finished series.  Mostly-monotone streams (every recorder in
        # the simulator) thus pay dict updates per *window*, not per
        # observation; out-of-order records just force an early flush.
        self._cur_index: Optional[int] = None
        self._cur_sum = 0.0
        self._cur_count = 0
        self._cur_last = 0.0

    def record(self, now_us: float, value: float) -> None:
        index = int(now_us // self.window_us)
        if index == self._cur_index:
            self._cur_sum += value
            self._cur_count += 1
            self._cur_last = value
            return
        self._flush()
        self._cur_index = index
        self._cur_sum = value
        self._cur_count = 1
        self._cur_last = value

    def _flush(self) -> None:
        """Fold the current-window accumulator into the window dicts."""
        index = self._cur_index
        if index is None:
            return
        self._sums[index] = self._sums.get(index, 0.0) + self._cur_sum
        self._counts[index] = self._counts.get(index, 0) + self._cur_count
        self._lasts[index] = self._cur_last
        self._cur_index = None
        self._cur_sum = 0.0
        self._cur_count = 0

    def series(self) -> List[tuple]:
        """Sorted (window_start_us, aggregate) pairs.

        In ``sum`` mode every window between the first and the last
        observation is reported, with interior gaps emitted as 0.0 --
        an idle period genuinely is zero bytes per window, and timeline
        plots (Figures 9/17/18) must show it as such rather than
        splicing the gap out.  ``mean`` and ``last`` windows have no
        meaningful zero, so those modes still skip empty windows.
        """
        self._flush()
        if not self._sums:
            return []
        if self.mode == "sum":
            indices = sorted(self._sums)
            return [
                (index * self.window_us, self._sums.get(index, 0.0))
                for index in range(indices[0], indices[-1] + 1)
            ]
        points = []
        for index in sorted(self._sums):
            if self.mode == "mean":
                value = self._sums[index] / self._counts[index]
            else:
                value = self._lasts[index]
            points.append((index * self.window_us, value))
        return points

    def merge(self, other: "IntervalSeries") -> None:
        """Fold another series (same window and mode) into this one.

        Used by the parallel sweep runner to reduce per-shard series:
        merging the shards of a partitioned observation stream yields
        exactly the series of the concatenated stream for ``sum`` and
        ``mean`` modes (both are order-free per window).  ``last`` mode
        depends on within-window observation order, which shards do not
        preserve, so merging it is refused.
        """
        if other.window_us != self.window_us or other.mode != self.mode:
            raise ValueError("cannot merge series with different window/mode")
        if self.mode == "last":
            raise ValueError("'last' mode is order-dependent and cannot be merged")
        self._flush()
        other._flush()
        for index, value in other._sums.items():
            self._sums[index] = self._sums.get(index, 0.0) + value
            self._counts[index] = self._counts.get(index, 0) + other._counts[index]

    def bandwidth_series_mbps(self) -> List[tuple]:
        """For ``sum``-of-bytes series: (window_start_us, MB/s) pairs."""
        if self.mode != "sum":
            raise ValueError("bandwidth series requires sum mode")
        return [(t, (v / self.window_us) / MBPS) for t, v in self.series()]
