"""Measurement utilities shared by the models and the experiment harness.

These are deliberately simulation-agnostic: they consume (time, value)
observations and never touch the event loop, so they are equally usable
from unit tests and from live pipelines.
"""

from repro.metrics.ewma import Ewma
from repro.metrics.fairness import f_util, jain_index, utilization_deviation
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.throughput import IntervalSeries, ThroughputMonitor
from repro.metrics.timeline import PercentileTimeline

__all__ = [
    "Ewma",
    "LatencyHistogram",
    "ThroughputMonitor",
    "IntervalSeries",
    "PercentileTimeline",
    "f_util",
    "jain_index",
    "utilization_deviation",
]
