"""Device timing profiles.

Each profile calibrates the analytic timing model against a real
device's headline numbers.  The anchors for the default (Samsung
DCT983-like) profile come straight from the paper:

* 4 KiB random read maxes out around 1.6-1.7 GB/s (controller-limited:
  ``num_channels / t_ctrl_cmd_us`` commands/s),
* 128 KiB read reaches ~3.2 GB/s (channel-limited:
  ``num_channels / t_read_xfer_us`` pages/s),
* unloaded 4 KiB read latency is ~75-80 us (dominated by the NAND
  sense time, which is parallel across dies and does not occupy the
  channel),
* clean sequential write sustains ~1.3 GB/s (``num_channels /
  t_prog_us`` pages/s),
* a fragmented device sustains only ~180 MB/s of 4 KiB random writes
  (garbage collection charges relocation reads/programs and erases
  to the channels), giving a worst-case write cost near the paper's 9.

The Intel P3600 profile follows Section 5.8: ~33.5% lower 128 KiB read
bandwidth, ~35% higher fragmented 4 KiB write bandwidth, and higher
large-read tail latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class DeviceProfile:
    """Timing parameters of the analytic SSD model (all times in us)."""

    name: str
    #: Per-command occupancy of the (single) controller resource.
    t_ctrl_cmd_us: float
    #: Channel occupancy per 4 KiB page transferred for a read.
    t_read_xfer_us: float
    #: NAND array sense time; added to read completion, parallel across
    #: dies, does not occupy the channel.
    t_sense_us: float
    #: Channel occupancy per 4 KiB page programmed.
    t_prog_us: float
    #: Channel occupancy of a block erase.
    t_erase_us: float
    #: Host-visible latency of a write absorbed by the DRAM buffer.
    t_buf_write_us: float
    #: Host-visible latency of a read served from the DRAM buffer.
    t_buf_read_us: float
    #: DRAM write buffer capacity in pages.
    buffer_pages: int
    #: Upper bound of garbage-collection debt charged to a single
    #: program booking; smooths GC work across writes instead of
    #: stalling one victim write for a whole block relocation.
    gc_installment_us: float
    #: Fraction of each GC installment that also occupies the
    #: read-visible (foreground) channel timeline.  Program/erase
    #: suspension lets the device prioritise reads over GC, but not
    #: perfectly; 0.0 would make GC invisible to reads, 1.0 would
    #: block reads behind all relocation traffic.
    gc_read_visible_fraction: float
    #: Refill garbage collection when a channel's free-block pool drops
    #: below this...
    gc_low_water_blocks: int
    #: ...and stop once it is back at this level.
    gc_high_water_blocks: int
    #: DFTL translation-map cache capacity in 4 KiB translation pages.
    #: ``None`` keeps the reference full-map FTL (no mapping-cache
    #: traffic at all; the byte-identical default).  A value at least
    #: as large as the map makes the table resident: the DFTL backend
    #: runs but can never miss.
    map_cache_pages: Optional[int] = None
    #: Per-block P/E-cycle endurance; blocks retire permanently at the
    #: limit.  ``None`` models unlimited endurance (the default).
    endurance_cycles: Optional[int] = None
    #: Static wear-levelling trigger: migrate the coldest closed block
    #: when a channel's erase-count spread exceeds this.  ``None``
    #: disables cold-block migration (the default).
    static_wear_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.gc_high_water_blocks < self.gc_low_water_blocks:
            raise ValueError("GC high water must be >= low water")
        if self.map_cache_pages is not None and self.map_cache_pages <= 0:
            raise ValueError("map_cache_pages must be positive (or None for full-map)")
        if self.endurance_cycles is not None and self.endurance_cycles <= 0:
            raise ValueError("endurance_cycles must be positive")
        if self.static_wear_threshold is not None and self.static_wear_threshold <= 0:
            raise ValueError("static_wear_threshold must be positive")
        if not 0.0 <= self.gc_read_visible_fraction <= 1.0:
            raise ValueError("gc_read_visible_fraction must be in [0, 1]")
        for field_name in (
            "t_ctrl_cmd_us",
            "t_read_xfer_us",
            "t_sense_us",
            "t_prog_us",
            "t_erase_us",
            "t_buf_write_us",
            "t_buf_read_us",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    def with_overrides(self, **kwargs) -> "DeviceProfile":
        """A copy of the profile with some parameters replaced."""
        return replace(self, **kwargs)


#: Samsung DCT983-like TLC device (the paper's primary SSD).
DCT983_PROFILE = DeviceProfile(
    name="dct983",
    t_ctrl_cmd_us=2.4,
    t_read_xfer_us=9.5,
    t_sense_us=65.0,
    t_prog_us=24.0,
    t_erase_us=1000.0,
    t_buf_write_us=25.0,
    t_buf_read_us=8.0,
    buffer_pages=256,
    gc_installment_us=300.0,
    gc_read_visible_fraction=0.5,
    gc_low_water_blocks=1,
    gc_high_water_blocks=2,
)

#: Intel DC P3600-like MLC device (Section 5.8 generalisation study).
P3600_PROFILE = DeviceProfile(
    name="p3600",
    t_ctrl_cmd_us=2.4,
    t_read_xfer_us=14.5,
    t_sense_us=85.0,
    t_prog_us=22.0,
    t_erase_us=900.0,
    t_buf_write_us=25.0,
    t_buf_read_us=8.0,
    buffer_pages=256,
    gc_installment_us=250.0,
    gc_read_visible_fraction=0.5,
    gc_low_water_blocks=1,
    gc_high_water_blocks=2,
)

#: QLC NAND device (paper Section 6: cheaper/denser than TLC with a
#: higher degree of read/write asymmetry -- slower, more
#: interference-prone programs and longer erases).  Used by the
#: extension study showing Gimbal's techniques carry over.
QLC_PROFILE = DeviceProfile(
    name="qlc",
    t_ctrl_cmd_us=2.4,
    t_read_xfer_us=11.0,
    t_sense_us=90.0,
    t_prog_us=60.0,
    t_erase_us=2500.0,
    t_buf_write_us=25.0,
    t_buf_read_us=8.0,
    buffer_pages=256,
    gc_installment_us=400.0,
    gc_read_visible_fraction=0.6,
    gc_low_water_blocks=1,
    gc_high_water_blocks=2,
)

#: Infinitely fast device used for the Table 1 NULL-device IOPS test:
#: every command completes immediately, so the SmartNIC core is the
#: bottleneck.
NULL_PROFILE = DeviceProfile(
    name="null",
    t_ctrl_cmd_us=0.0,
    t_read_xfer_us=0.0,
    t_sense_us=0.0,
    t_prog_us=0.0,
    t_erase_us=0.0,
    t_buf_write_us=0.0,
    t_buf_read_us=0.0,
    buffer_pages=1,
    gc_installment_us=0.0,
    gc_read_visible_fraction=0.0,
    gc_low_water_blocks=0,
    gc_high_water_blocks=0,
)

_PROFILES = {p.name: p for p in (DCT983_PROFILE, P3600_PROFILE, QLC_PROFILE, NULL_PROFILE)}


def profile_by_name(name: str) -> DeviceProfile:
    """Look up a built-in profile by name (``dct983``, ``p3600``, ``qlc``, ``null``)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown device profile {name!r}; known: {sorted(_PROFILES)}") from None
