"""Device-level IO commands.

Logical addressing is page-granular (4 KiB logical blocks): ``lpn`` is
a logical page number and ``npages`` the transfer length.  All the
paper's workloads use 4 KiB-aligned sizes, so nothing finer is needed.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional


class IoOp(enum.Enum):
    """Operation type of a storage command."""

    READ = "read"
    WRITE = "write"
    #: Dataset-management deallocate: unmaps the LBA range in the FTL,
    #: creating pre-invalidated pages that cheapen future GC.
    TRIM = "trim"

    @property
    def is_read(self) -> bool:
        return self is IoOp.READ

    @property
    def is_write(self) -> bool:
        return self is IoOp.WRITE

    @property
    def is_trim(self) -> bool:
        return self is IoOp.TRIM


_command_ids = itertools.count(1)


@dataclass(slots=True)
class DeviceCommand:
    """One read or write command against an SSD.

    ``tag`` is an opaque caller cookie (the fabric layer stores its
    request context there).  ``submit_time``/``complete_time`` are
    stamped by the device and are what the latency monitors consume.
    Slotted: one is allocated per device IO, so the dict-free layout
    matters on the hot path.
    """

    op: IoOp
    lpn: int
    npages: int
    tag: Any = None
    command_id: int = field(default_factory=lambda: next(_command_ids))
    submit_time: Optional[float] = None
    complete_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lpn < 0:
            raise ValueError(f"negative LPN: {self.lpn}")
        if self.npages <= 0:
            raise ValueError(f"non-positive transfer length: {self.npages}")

    @property
    def size_bytes(self) -> int:
        """Transfer size in bytes (4 KiB logical pages)."""
        return self.npages * 4096

    @property
    def latency_us(self) -> float:
        """Device-level service latency; valid once completed."""
        if self.submit_time is None or self.complete_time is None:
            raise ValueError("command has not completed")
        return self.complete_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceCommand(#{self.command_id} {self.op.value} "
            f"lpn={self.lpn} npages={self.npages})"
        )


# ----------------------------------------------------------------------
# Command free-list pool
# ----------------------------------------------------------------------
# The fabric pipeline creates exactly one DeviceCommand per admitted IO
# and is the last consumer of it (the completion handler extracts the
# tagged request and drops the command), so it owns the full lifecycle
# and can recycle unconditionally.  Callers that construct
# ``DeviceCommand`` directly are unaffected.
_free_commands: List[DeviceCommand] = []
_FREE_COMMAND_CAP = 4096


def acquire_command(op: IoOp, lpn: int, npages: int, tag: Any = None) -> DeviceCommand:
    """Pooled constructor, field-for-field equivalent to
    ``DeviceCommand(op, lpn, npages, tag)`` with a fresh command id."""
    free = _free_commands
    if not free:
        return DeviceCommand(op, lpn, npages, tag)
    if lpn < 0:
        raise ValueError(f"negative LPN: {lpn}")
    if npages <= 0:
        raise ValueError(f"non-positive transfer length: {npages}")
    cmd = free.pop()
    cmd.op = op
    cmd.lpn = lpn
    cmd.npages = npages
    cmd.tag = tag
    cmd.command_id = next(_command_ids)
    cmd.submit_time = None
    cmd.complete_time = None
    return cmd


def release_command(cmd: DeviceCommand) -> None:
    """Return a command whose completion handler has finished with it."""
    cmd.tag = None
    if len(_free_commands) < _FREE_COMMAND_CAP:
        _free_commands.append(cmd)


def command_pool_size() -> int:
    """Current free-list depth (test/diagnostic hook)."""
    return len(_free_commands)
