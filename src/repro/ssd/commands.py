"""Device-level IO commands.

Logical addressing is page-granular (4 KiB logical blocks): ``lpn`` is
a logical page number and ``npages`` the transfer length.  All the
paper's workloads use 4 KiB-aligned sizes, so nothing finer is needed.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class IoOp(enum.Enum):
    """Operation type of a storage command."""

    READ = "read"
    WRITE = "write"
    #: Dataset-management deallocate: unmaps the LBA range in the FTL,
    #: creating pre-invalidated pages that cheapen future GC.
    TRIM = "trim"

    @property
    def is_read(self) -> bool:
        return self is IoOp.READ

    @property
    def is_write(self) -> bool:
        return self is IoOp.WRITE

    @property
    def is_trim(self) -> bool:
        return self is IoOp.TRIM


_command_ids = itertools.count(1)


@dataclass(slots=True)
class DeviceCommand:
    """One read or write command against an SSD.

    ``tag`` is an opaque caller cookie (the fabric layer stores its
    request context there).  ``submit_time``/``complete_time`` are
    stamped by the device and are what the latency monitors consume.
    Slotted: one is allocated per device IO, so the dict-free layout
    matters on the hot path.
    """

    op: IoOp
    lpn: int
    npages: int
    tag: Any = None
    command_id: int = field(default_factory=lambda: next(_command_ids))
    submit_time: Optional[float] = None
    complete_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lpn < 0:
            raise ValueError(f"negative LPN: {self.lpn}")
        if self.npages <= 0:
            raise ValueError(f"non-positive transfer length: {self.npages}")

    @property
    def size_bytes(self) -> int:
        """Transfer size in bytes (4 KiB logical pages)."""
        return self.npages * 4096

    @property
    def latency_us(self) -> float:
        """Device-level service latency; valid once completed."""
        if self.submit_time is None or self.complete_time is None:
            raise ValueError("command has not completed")
        return self.complete_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceCommand(#{self.command_id} {self.op.value} "
            f"lpn={self.lpn} npages={self.npages})"
        )
