"""Controller DRAM write buffer bookkeeping.

The paper leans on this behaviour twice: the write-cost estimator
drops the cost to 1 while writes are absorbed by the buffer
(Section 3.4), and the rate controller must not let a buffer-absorbed
burst inflate the window (Section 3.3).  The buffer here is pure
bookkeeping -- occupancy plus a multiset of buffered LPNs so reads can
be served from DRAM -- while the device model owns all timing.
"""

from __future__ import annotations

from typing import Dict, Iterable


class WriteBuffer:
    """Occupancy counter plus an LPN multiset for read hits."""

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity_pages
        self.occupied = 0
        self._lpn_counts: Dict[int, int] = {}

    @property
    def available(self) -> int:
        return self.capacity - self.occupied

    def has_space(self, npages: int) -> bool:
        return self.available >= npages

    def contains(self, lpn: int) -> bool:
        """True when ``lpn`` has an in-flight (not yet programmed) copy."""
        return lpn in self._lpn_counts

    def admit(self, lpns: Iterable[int]) -> None:
        """Absorb the pages of one write command; caller checked space."""
        count = 0
        for lpn in lpns:
            self._lpn_counts[lpn] = self._lpn_counts.get(lpn, 0) + 1
            count += 1
        self.occupied += count
        if self.occupied > self.capacity:
            raise RuntimeError("write buffer overcommitted")

    def release(self, lpns: Iterable[int]) -> None:
        """Free the pages of one command once its NAND programs complete."""
        count = 0
        for lpn in lpns:
            remaining = self._lpn_counts.get(lpn)
            if remaining is None:
                raise RuntimeError(f"releasing LPN {lpn} that is not buffered")
            if remaining == 1:
                del self._lpn_counts[lpn]
            else:
                self._lpn_counts[lpn] = remaining - 1
            count += 1
        self.occupied -= count
        if self.occupied < 0:
            raise RuntimeError("write buffer occupancy went negative")

    def clear(self) -> None:
        self.occupied = 0
        self._lpn_counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteBuffer({self.occupied}/{self.capacity} pages)"
