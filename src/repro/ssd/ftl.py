"""Page-mapped flash translation layer with greedy garbage collection.

The FTL is the mechanism behind the paper's "SSD condition" issue
(Section 2.3, Appendix A): the cost of a host write depends on how
fragmented previously written blocks are, because garbage collection
must relocate every still-valid page of a victim block before erasing
it.  Sequentially written data dies together (victims are empty, write
amplification ~1); randomly overwritten data leaves victims mostly
valid (write amplification of 5-8 with ~10% overprovisioning), which
is the paper's clean/fragmented dichotomy.

Blocks are partitioned across channels; host writes stripe round-robin
across one open block per channel, and GC relocates within a channel.
The FTL is purely logical -- it returns the *work* GC performed
(:class:`GcWork`) and the device model converts that into channel busy
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.ssd.geometry import SsdGeometry
from repro.ssd.mapping_cache import MAP_HIT, MAP_MISS_WRITEBACK, MappingCache


@dataclass(frozen=True)
class WearConfig:
    """Wear-dynamics knobs (both default-off keeps the reference FTL).

    ``endurance_cycles`` retires a block permanently once its erase
    count reaches the limit (P/E-cycle death); ``None`` models
    unlimited endurance.  ``static_wear_threshold`` triggers static
    wear levelling -- migrating the coldest closed block's valid data
    so the block re-enters the erase rotation -- whenever the
    channel's erase-count spread exceeds the threshold; ``None``
    disables cold-block migration (dynamic levelling via
    least-worn-first free-block selection is always on).
    """

    endurance_cycles: Optional[int] = None
    static_wear_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.endurance_cycles is not None and self.endurance_cycles <= 0:
            raise ValueError("endurance_cycles must be positive")
        if self.static_wear_threshold is not None and self.static_wear_threshold <= 0:
            raise ValueError("static_wear_threshold must be positive")


@dataclass
class GcWork:
    """NAND operations performed by garbage collection during one allocation."""

    relocation_reads: int = 0
    relocation_programs: int = 0
    erases: int = 0

    @property
    def empty(self) -> bool:
        return not (self.relocation_reads or self.relocation_programs or self.erases)


@dataclass
class FtlStats:
    """Lifetime program/erase accounting; write amplification derives from it."""

    host_programs: int = 0
    gc_programs: int = 0
    erases: int = 0
    #: Programs issued by static wear levelling (cold-block migration).
    wl_programs: int = 0
    #: Cold-block migrations performed by static wear levelling.
    wl_migrations: int = 0

    @property
    def write_amplification(self) -> float:
        """(host + GC + wear-levelling programs) / host programs."""
        if self.host_programs == 0:
            return 1.0
        return (
            self.host_programs + self.gc_programs + self.wl_programs
        ) / self.host_programs


@dataclass
class WearStats:
    """Per-device wear summary (Section 2.3's wear-levelling concern)."""

    min_erases: int
    max_erases: int
    mean_erases: float
    #: Blocks permanently removed from service (P/E-cycle death).
    retired_blocks: int = 0
    #: Lifetime erase cycles across every block (including retired).
    total_erases: int = 0

    @property
    def spread(self) -> int:
        """Erase-count gap between the most and least worn blocks."""
        return self.max_erases - self.min_erases


class FtlError(RuntimeError):
    """Raised when the FTL cannot make progress (device genuinely full)."""


_UNMAPPED = -1
#: Streams a channel can be appending to: host writes vs GC relocation.
_HOST_STREAM = 0
_GC_STREAM = 1


class Ftl:
    """Page-mapped FTL over the geometry's block/channel layout.

    ``gc_low_water``/``gc_high_water`` are the free-block pool
    thresholds per channel: collection starts when the pool drops to
    the low mark and refills it to the high mark.  The geometry must
    overprovision at least ``gc_high_water + 2`` blocks per channel
    (the pool target plus the host and GC open blocks), otherwise
    steady-state operation would deadlock; the constructor enforces
    this.

    Two optional fidelity layers (both ``None`` keeps today's
    reference model, a property gated byte-for-byte by
    ``tests/ssd/test_differential.py``):

    * ``mapping_cache`` -- a :class:`~repro.ssd.mapping_cache.MappingCache`
      in front of :meth:`lookup`/:meth:`write_page`.  Misses and dirty
      evictions accumulate as pending translation-page traffic that
      the device drains via :meth:`take_map_traffic` and charges to
      channel time.
    * ``wear`` -- a :class:`WearConfig` enabling block retirement at
      an endurance limit and static wear levelling (cold-block
      migration) on top of the always-on least-worn-first dynamic
      levelling.
    """

    def __init__(
        self,
        geometry: SsdGeometry,
        gc_low_water: int = 1,
        gc_high_water: int = 2,
        mapping_cache: Optional[MappingCache] = None,
        wear: Optional[WearConfig] = None,
    ):
        if gc_low_water < 0 or gc_high_water < gc_low_water:
            raise ValueError("invalid GC watermarks")
        slack_blocks = geometry.overprovision * geometry.blocks_per_channel
        needed = gc_high_water + 2
        if slack_blocks < needed:
            raise ValueError(
                f"geometry overprovisions {slack_blocks:.2f} blocks/channel but the "
                f"GC watermarks need at least {needed}; increase overprovision or "
                f"blocks_per_channel, or lower the watermarks"
            )
        self.gc_low_water = gc_low_water
        self.gc_high_water = gc_high_water
        self.geometry = geometry
        g = geometry
        self.page_map: List[int] = [_UNMAPPED] * g.exported_pages
        self._rmap: List[int] = [_UNMAPPED] * g.total_pages
        self._valid_count: List[int] = [0] * g.total_blocks
        # Per-channel block pools.  Free lists are stacks; closed lists
        # are scanned for the min-valid victim (tens of entries).
        self._free: List[List[int]] = [[] for _ in range(g.num_channels)]
        self._closed: List[List[int]] = [[] for _ in range(g.num_channels)]
        # (block_id, next_offset) per channel per stream, or None.
        self._open: List[List[Optional[Tuple[int, int]]]] = [
            [None, None] for _ in range(g.num_channels)
        ]
        for block_id in range(g.total_blocks):
            self._free[g.channel_of_block(block_id)].append(block_id)
        self._next_host_channel = 0
        #: Program/erase cycles per block, for wear levelling.
        self._erase_counts: List[int] = [0] * g.total_blocks
        self.map_cache = mapping_cache
        self.wear = wear
        #: Blocks permanently out of service (endurance death).
        self._retired: List[bool] = [False] * g.total_blocks
        self.retired_blocks = 0
        self._retired_on_channel: List[int] = [0] * g.num_channels
        self._blocks_on_channel: List[int] = [0] * g.num_channels
        for block_id in range(g.total_blocks):
            self._blocks_on_channel[g.channel_of_block(block_id)] += 1
        # Retirement floor: a channel must keep enough in-service
        # blocks for its share of the exported data plus the GC pool
        # and the two open blocks.  Once retiring another block would
        # cross it, worn blocks stay in service (a real controller
        # would go read-only; the model degrades gracefully instead)
        # and the over-endurance wear stays visible in wear_stats().
        data_blocks = -(-g.exported_pages // (g.num_channels * g.pages_per_block))
        self._min_in_service_blocks = data_blocks + gc_high_water + 2
        # Translation-page NAND traffic owed to the device model; the
        # device drains these via take_map_traffic() and charges them
        # to channel time.
        self._map_reads_pending = 0
        self._map_writes_pending = 0
        self.stats = FtlStats()

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, lpn: int) -> int:
        """Physical page of ``lpn``, or -1 if never written."""
        if self.map_cache is not None:
            self._map_access(lpn, dirty=False)
        return self.page_map[lpn]

    def channel_of_lpn(self, lpn: int) -> int:
        """Channel holding ``lpn``; unmapped pages hash to a stable channel."""
        ppn = self.page_map[lpn]
        if ppn == _UNMAPPED:
            return lpn % self.geometry.num_channels
        return self.geometry.channel_of_page(ppn)

    def free_blocks_on_channel(self, channel: int) -> int:
        return len(self._free[channel])

    @property
    def mapped_pages(self) -> int:
        return sum(1 for ppn in self.page_map if ppn != _UNMAPPED)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write_page(self, lpn: int) -> Tuple[int, GcWork]:
        """Map ``lpn`` to a fresh physical page.

        Returns the new PPN and the garbage-collection work (if any)
        that had to run on the destination channel to make room.  The
        caller charges that work to the channel's timeline.
        """
        if not 0 <= lpn < len(self.page_map):
            raise ValueError(f"LPN {lpn} outside exported range")
        work = GcWork()
        if self.map_cache is not None:
            self._map_access(lpn, dirty=True)
        self._invalidate(lpn)
        channel = self._next_host_channel
        self._next_host_channel = (channel + 1) % self.geometry.num_channels
        ppn = self._append(channel, _HOST_STREAM, work)
        self._map(lpn, ppn)
        self.stats.host_programs += 1
        return ppn, work

    def trim_page(self, lpn: int) -> None:
        """Discard the mapping for ``lpn`` (dataset delete / blob free)."""
        if self.map_cache is not None:
            self._map_access(lpn, dirty=True)
        self._invalidate(lpn)

    # ------------------------------------------------------------------
    # Mapping-cache traffic
    # ------------------------------------------------------------------
    def _map_access(self, lpn: int, dirty: bool) -> None:
        """Touch ``lpn``'s translation entry, accruing NAND traffic on miss."""
        outcome = self.map_cache.access(lpn, dirty)
        if outcome == MAP_HIT:
            return
        self._map_reads_pending += 1
        if outcome == MAP_MISS_WRITEBACK:
            self._map_writes_pending += 1

    def take_map_traffic(self) -> Tuple[int, int]:
        """Drain pending translation-page (reads, writebacks).

        The device model calls this after each FTL interaction and
        converts the counts into channel busy time.  Always (0, 0)
        when no mapping cache is configured or the table is resident.
        """
        reads, writes = self._map_reads_pending, self._map_writes_pending
        self._map_reads_pending = 0
        self._map_writes_pending = 0
        return reads, writes

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _map(self, lpn: int, ppn: int) -> None:
        self.page_map[lpn] = ppn
        self._rmap[ppn] = lpn
        self._valid_count[self.geometry.block_of_page(ppn)] += 1

    def _invalidate(self, lpn: int) -> None:
        old_ppn = self.page_map[lpn]
        if old_ppn == _UNMAPPED:
            return
        self.page_map[lpn] = _UNMAPPED
        self._rmap[old_ppn] = _UNMAPPED
        self._valid_count[self.geometry.block_of_page(old_ppn)] -= 1

    def _append(self, channel: int, stream: int, work: GcWork) -> int:
        """Claim the next physical page of the channel's open block."""
        slot = self._open[channel][stream]
        if slot is None:
            block_id = self._take_free_block(channel, work, allow_gc=stream == _HOST_STREAM)
            slot = (block_id, 0)
        block_id, offset = slot
        ppn = block_id * self.geometry.pages_per_block + offset
        offset += 1
        if offset == self.geometry.pages_per_block:
            self._closed[channel].append(block_id)
            self._open[channel][stream] = None
        else:
            self._open[channel][stream] = (block_id, offset)
        return ppn

    def _take_free_block(self, channel: int, work: GcWork, allow_gc: bool) -> int:
        free = self._free[channel]
        if allow_gc and len(free) <= self.gc_low_water:
            self._collect(channel, work)
        if not free:
            if allow_gc:
                raise FtlError(f"channel {channel} exhausted: GC made no progress")
            raise FtlError(f"channel {channel} exhausted during GC relocation")
        # Wear levelling: program into the least-worn free block so
        # erase cycles stay balanced across the channel's blocks.
        best_index = 0
        best_erases = self._erase_counts[free[0]]
        for index in range(1, len(free)):
            erases = self._erase_counts[free[index]]
            if erases < best_erases:
                best_index, best_erases = index, erases
        block_id = free[best_index]
        free[best_index] = free[-1]
        free.pop()
        return block_id

    def _pick_victim(self, channel: int) -> Optional[int]:
        closed = self._closed[channel]
        if not closed:
            return None
        best_index = 0
        best_valid = self._valid_count[closed[0]]
        for index in range(1, len(closed)):
            valid = self._valid_count[closed[index]]
            if valid < best_valid:
                best_index, best_valid = index, valid
        if best_valid >= self.geometry.pages_per_block:
            # Every closed block is fully valid: erasing buys nothing.
            return None
        victim = closed[best_index]
        closed[best_index] = closed[-1]
        closed.pop()
        return victim

    def _collect(self, channel: int, work: GcWork) -> None:
        """Greedy GC: relocate min-valid victims until the free pool refills.

        With an endurance limit configured, worn free blocks about to
        retire do not count toward the watermark (the loop collects
        replacements for them), and the retirement pass afterwards
        takes them out of service -- so retirement never starves the
        relocation stream of runway.
        """
        free = self._free[channel]
        while len(free) - self._retirable_free_count(channel) < self.gc_high_water:
            victim = self._pick_victim(channel)
            if victim is None:
                break
            self._relocate_block(victim, channel, work)
            free.append(victim)
        if self.wear is not None and self.wear.static_wear_threshold is not None:
            self._static_wear_level(channel, work)
        if self.wear is not None and self.wear.endurance_cycles is not None:
            self._retire_worn_free_blocks(channel)

    def _relocate_block(self, victim: int, channel: int, work: GcWork, wl: bool = False) -> None:
        """Relocate every valid page off ``victim`` and erase it.

        ``wl=True`` books the programs as static-wear-levelling work
        instead of GC work; the NAND operations are identical.
        """
        base = victim * self.geometry.pages_per_block
        for offset in range(self.geometry.pages_per_block):
            ppn = base + offset
            lpn = self._rmap[ppn]
            if lpn == _UNMAPPED:
                continue
            new_ppn = self._append(channel, _GC_STREAM, work)
            # Remap in place; _invalidate is not used because the
            # old slot must be cleared regardless of map state.
            self._rmap[ppn] = _UNMAPPED
            self._valid_count[victim] -= 1
            self.page_map[lpn] = new_ppn
            self._rmap[new_ppn] = lpn
            self._valid_count[self.geometry.block_of_page(new_ppn)] += 1
            work.relocation_reads += 1
            work.relocation_programs += 1
            if wl:
                self.stats.wl_programs += 1
            else:
                self.stats.gc_programs += 1
            if self.map_cache is not None:
                # Relocation rewrites the translation entry too.
                self._map_access(lpn, dirty=True)
        assert self._valid_count[victim] == 0, "victim still holds valid pages"
        work.erases += 1
        self.stats.erases += 1
        self._erase_counts[victim] += 1

    def _retirable_free_count(self, channel: int) -> int:
        """Worn free blocks the retirement pass would take out of service."""
        if self.wear is None or self.wear.endurance_cycles is None:
            return 0
        budget = (
            self._blocks_on_channel[channel]
            - self._retired_on_channel[channel]
            - self._min_in_service_blocks
        )
        if budget <= 0:
            return 0
        limit = self.wear.endurance_cycles
        worn = sum(1 for block_id in self._free[channel] if self._erase_counts[block_id] >= limit)
        return worn if worn < budget else budget

    def _retire_worn_free_blocks(self, channel: int) -> None:
        """Permanently remove free blocks that reached the endurance limit.

        Retirement respects two floors: the free pool keeps at least
        ``gc_high_water`` blocks (GC runway), and the channel keeps
        enough in-service blocks for its data plus the pool (a real
        controller would go read-only; the model keeps worn blocks in
        rotation instead, with the over-endurance wear visible in
        :meth:`wear_stats`).
        """
        limit = self.wear.endurance_cycles
        free = self._free[channel]
        index = 0
        while index < len(free):
            block_id = free[index]
            in_service = self._blocks_on_channel[channel] - self._retired_on_channel[channel]
            if (
                self._erase_counts[block_id] >= limit
                and len(free) > self.gc_high_water
                and in_service - 1 >= self._min_in_service_blocks
            ):
                free[index] = free[-1]
                free.pop()
                self._retired[block_id] = True
                self.retired_blocks += 1
                self._retired_on_channel[channel] += 1
            else:
                index += 1

    def _static_wear_level(self, channel: int, work: GcWork) -> None:
        """Migrate the channel's coldest closed block when wear skews.

        Cold data parks on a block and keeps it out of the erase
        rotation while its neighbours accumulate cycles.  When the
        channel's erase-count spread exceeds the configured threshold,
        relocate the coldest closed block's valid pages (so the block
        re-enters the free pool, where least-worn-first selection puts
        it right back to work) -- the classic static wear-levelling
        move layered on top of the always-on dynamic levelling.
        """
        threshold = self.wear.static_wear_threshold
        g = self.geometry
        lo: Optional[int] = None
        hi: Optional[int] = None
        for block_id in range(channel, g.total_blocks, g.num_channels):
            if self._retired[block_id]:
                continue
            erases = self._erase_counts[block_id]
            if lo is None or erases < lo:
                lo = erases
            if hi is None or erases > hi:
                hi = erases
        if lo is None or hi - lo <= threshold:
            return
        closed = self._closed[channel]
        if not closed:
            return
        best_index = 0
        best_erases = self._erase_counts[closed[0]]
        for index in range(1, len(closed)):
            erases = self._erase_counts[closed[index]]
            if erases < best_erases:
                best_index, best_erases = index, erases
        if best_erases - lo > threshold // 2:
            # The channel's genuinely cold blocks are free or open;
            # migrating a mid-worn closed block would only add wear.
            return
        cold = closed[best_index]
        closed[best_index] = closed[-1]
        closed.pop()
        self._relocate_block(cold, channel, work, wl=True)
        self._free[channel].append(cold)
        self.stats.wl_migrations += 1

    # ------------------------------------------------------------------
    # Wear introspection
    # ------------------------------------------------------------------
    def wear_stats(self) -> WearStats:
        """Erase-count distribution across in-service blocks."""
        if self.retired_blocks:
            counts = [
                count
                for block_id, count in enumerate(self._erase_counts)
                if not self._retired[block_id]
            ]
            if not counts:  # pragma: no cover - fully dead device
                counts = self._erase_counts
        else:
            counts = self._erase_counts
        return WearStats(
            min_erases=min(counts),
            max_erases=max(counts),
            mean_erases=sum(counts) / len(counts),
            retired_blocks=self.retired_blocks,
            total_erases=sum(self._erase_counts),
        )

    def advance_wear(self, per_block_erases: List[int]) -> None:
        """Fast-forward wear: add ``per_block_erases[b]`` cycles to block ``b``.

        Used by :func:`repro.ssd.conditioning.age_device` to condition
        a device to a target age without simulating years of writes.
        With an endurance limit configured, each block is clamped one
        cycle *short* of the limit: an aged device boots alive and
        retires blocks during the subsequent run (the interesting
        regime) rather than arriving dead.
        """
        if len(per_block_erases) != self.geometry.total_blocks:
            raise ValueError("per_block_erases must cover every block")
        limit = None
        if self.wear is not None and self.wear.endurance_cycles is not None:
            limit = self.wear.endurance_cycles - 1
        for block_id, extra in enumerate(per_block_erases):
            if extra < 0:
                raise ValueError("erase deltas must be non-negative")
            count = self._erase_counts[block_id] + extra
            if limit is not None and count > limit:
                count = limit
            self._erase_counts[block_id] = count

    # ------------------------------------------------------------------
    # Snapshot / restore (conditioning cache)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the full mapping state (cheap: list copies).

        Used by :mod:`repro.ssd.conditioning` so that expensive
        preconditioning runs once per (geometry, condition) and later
        devices start from a restored copy.
        """
        return {
            "page_map": self.page_map.copy(),
            "rmap": self._rmap.copy(),
            "valid_count": self._valid_count.copy(),
            "free": [pool.copy() for pool in self._free],
            "closed": [pool.copy() for pool in self._closed],
            "open": [slots.copy() for slots in self._open],
            "next_host_channel": self._next_host_channel,
            "erase_counts": self._erase_counts.copy(),
            "stats": replace(self.stats),
            "retired": self._retired.copy(),
            "retired_blocks": self.retired_blocks,
            "map_reads_pending": self._map_reads_pending,
            "map_writes_pending": self._map_writes_pending,
            "map_cache": self.map_cache.snapshot() if self.map_cache is not None else None,
        }

    def restore(self, snap: dict) -> None:
        """Install a state previously captured by :meth:`snapshot`.

        Byte-exact round trip: stats, wear and mapping-cache state all
        survive (older snapshots without those keys restore with the
        defaults).
        """
        self.page_map = snap["page_map"].copy()
        self._rmap = snap["rmap"].copy()
        self._valid_count = snap["valid_count"].copy()
        self._free = [pool.copy() for pool in snap["free"]]
        self._closed = [pool.copy() for pool in snap["closed"]]
        self._open = [slots.copy() for slots in snap["open"]]
        self._next_host_channel = snap["next_host_channel"]
        self._erase_counts = snap["erase_counts"].copy()
        stats = snap.get("stats")
        self.stats = replace(stats) if stats is not None else FtlStats()
        retired = snap.get("retired")
        self._retired = (
            retired.copy() if retired is not None else [False] * self.geometry.total_blocks
        )
        self.retired_blocks = snap.get("retired_blocks", 0)
        self._retired_on_channel = [0] * self.geometry.num_channels
        for block_id, is_retired in enumerate(self._retired):
            if is_retired:
                self._retired_on_channel[self.geometry.channel_of_block(block_id)] += 1
        self._map_reads_pending = snap.get("map_reads_pending", 0)
        self._map_writes_pending = snap.get("map_writes_pending", 0)
        cache_snap = snap.get("map_cache")
        if self.map_cache is not None and cache_snap is not None:
            self.map_cache.restore(cache_snap)

    def reset_measurement(self) -> None:
        """Zero measurement counters; aged mapping/wear state is preserved.

        Conditioning calls this after warming a device so measured
        runs report only their own programs, erases and cache hits.
        """
        self.stats = FtlStats()
        self._map_reads_pending = 0
        self._map_writes_pending = 0
        if self.map_cache is not None:
            self.map_cache.reset_counters()

    def fidelity_key(self) -> tuple:
        """Hashable description of the fidelity knobs.

        Conditioning-cache keys include this so devices with different
        mapping-cache or wear configurations never share a cached
        preconditioned state (their conditioning runs genuinely
        diverge: cache residency, retirement, wear-level migrations).
        """
        cache_key = None
        if self.map_cache is not None:
            cache_key = (self.map_cache.capacity_pages, self.map_cache.entries_per_page)
        wear_key = None
        if self.wear is not None:
            wear_key = (self.wear.endurance_cycles, self.wear.static_wear_threshold)
        return (cache_key, wear_key)

    # ------------------------------------------------------------------
    # Integrity checking (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify map/reverse-map/valid-count consistency.  O(total pages)."""
        for lpn, ppn in enumerate(self.page_map):
            if ppn != _UNMAPPED and self._rmap[ppn] != lpn:
                raise AssertionError(f"map mismatch: lpn={lpn} ppn={ppn} rmap={self._rmap[ppn]}")
        counted = [0] * self.geometry.total_blocks
        for ppn, lpn in enumerate(self._rmap):
            if lpn != _UNMAPPED:
                if self.page_map[lpn] != ppn:
                    raise AssertionError(f"rmap mismatch: ppn={ppn} lpn={lpn}")
                counted[self.geometry.block_of_page(ppn)] += 1
        if counted != self._valid_count:
            raise AssertionError("valid counts inconsistent with reverse map")
        # Pool accounting: every block is in exactly one of the
        # free/closed/open pools, unless it has been retired.
        seen = [0] * self.geometry.total_blocks
        for pool in self._free:
            for block_id in pool:
                seen[block_id] += 1
        for pool in self._closed:
            for block_id in pool:
                seen[block_id] += 1
        for slots in self._open:
            for slot in slots:
                if slot is not None:
                    seen[slot[0]] += 1
        retired_seen = 0
        for block_id, count in enumerate(seen):
            if self._retired[block_id]:
                retired_seen += 1
                if count:
                    raise AssertionError(f"retired block {block_id} still pooled")
            elif count != 1:
                raise AssertionError(
                    f"block {block_id} appears {count} times across free/closed/open pools"
                )
        if retired_seen != self.retired_blocks:
            raise AssertionError(
                f"retired-block count {self.retired_blocks} != flags {retired_seen}"
            )
        per_channel = [0] * self.geometry.num_channels
        for block_id, is_retired in enumerate(self._retired):
            if is_retired:
                per_channel[self.geometry.channel_of_block(block_id)] += 1
        if per_channel != self._retired_on_channel:
            raise AssertionError("per-channel retired counts inconsistent")
        if any(count < 0 for count in self._erase_counts):
            raise AssertionError("negative erase count")
        if self.map_cache is not None:
            self.map_cache.check_invariants()
