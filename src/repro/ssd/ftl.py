"""Page-mapped flash translation layer with greedy garbage collection.

The FTL is the mechanism behind the paper's "SSD condition" issue
(Section 2.3, Appendix A): the cost of a host write depends on how
fragmented previously written blocks are, because garbage collection
must relocate every still-valid page of a victim block before erasing
it.  Sequentially written data dies together (victims are empty, write
amplification ~1); randomly overwritten data leaves victims mostly
valid (write amplification of 5-8 with ~10% overprovisioning), which
is the paper's clean/fragmented dichotomy.

Blocks are partitioned across channels; host writes stripe round-robin
across one open block per channel, and GC relocates within a channel.
The FTL is purely logical -- it returns the *work* GC performed
(:class:`GcWork`) and the device model converts that into channel busy
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ssd.geometry import SsdGeometry


@dataclass
class GcWork:
    """NAND operations performed by garbage collection during one allocation."""

    relocation_reads: int = 0
    relocation_programs: int = 0
    erases: int = 0

    @property
    def empty(self) -> bool:
        return not (self.relocation_reads or self.relocation_programs or self.erases)


@dataclass
class FtlStats:
    """Lifetime program/erase accounting; write amplification derives from it."""

    host_programs: int = 0
    gc_programs: int = 0
    erases: int = 0

    @property
    def write_amplification(self) -> float:
        """(host + GC programs) / host programs; 1.0 before any host write."""
        if self.host_programs == 0:
            return 1.0
        return (self.host_programs + self.gc_programs) / self.host_programs


@dataclass
class WearStats:
    """Per-device wear summary (Section 2.3's wear-levelling concern)."""

    min_erases: int
    max_erases: int
    mean_erases: float

    @property
    def spread(self) -> int:
        """Erase-count gap between the most and least worn blocks."""
        return self.max_erases - self.min_erases


class FtlError(RuntimeError):
    """Raised when the FTL cannot make progress (device genuinely full)."""


_UNMAPPED = -1
#: Streams a channel can be appending to: host writes vs GC relocation.
_HOST_STREAM = 0
_GC_STREAM = 1


class Ftl:
    """Page-mapped FTL over the geometry's block/channel layout.

    ``gc_low_water``/``gc_high_water`` are the free-block pool
    thresholds per channel: collection starts when the pool drops to
    the low mark and refills it to the high mark.  The geometry must
    overprovision at least ``gc_high_water + 2`` blocks per channel
    (the pool target plus the host and GC open blocks), otherwise
    steady-state operation would deadlock; the constructor enforces
    this.
    """

    def __init__(self, geometry: SsdGeometry, gc_low_water: int = 1, gc_high_water: int = 2):
        if gc_low_water < 0 or gc_high_water < gc_low_water:
            raise ValueError("invalid GC watermarks")
        slack_blocks = geometry.overprovision * geometry.blocks_per_channel
        needed = gc_high_water + 2
        if slack_blocks < needed:
            raise ValueError(
                f"geometry overprovisions {slack_blocks:.2f} blocks/channel but the "
                f"GC watermarks need at least {needed}; increase overprovision or "
                f"blocks_per_channel, or lower the watermarks"
            )
        self.gc_low_water = gc_low_water
        self.gc_high_water = gc_high_water
        self.geometry = geometry
        g = geometry
        self.page_map: List[int] = [_UNMAPPED] * g.exported_pages
        self._rmap: List[int] = [_UNMAPPED] * g.total_pages
        self._valid_count: List[int] = [0] * g.total_blocks
        # Per-channel block pools.  Free lists are stacks; closed lists
        # are scanned for the min-valid victim (tens of entries).
        self._free: List[List[int]] = [[] for _ in range(g.num_channels)]
        self._closed: List[List[int]] = [[] for _ in range(g.num_channels)]
        # (block_id, next_offset) per channel per stream, or None.
        self._open: List[List[Optional[Tuple[int, int]]]] = [
            [None, None] for _ in range(g.num_channels)
        ]
        for block_id in range(g.total_blocks):
            self._free[g.channel_of_block(block_id)].append(block_id)
        self._next_host_channel = 0
        #: Program/erase cycles per block, for wear levelling.
        self._erase_counts: List[int] = [0] * g.total_blocks
        self.stats = FtlStats()

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, lpn: int) -> int:
        """Physical page of ``lpn``, or -1 if never written."""
        return self.page_map[lpn]

    def channel_of_lpn(self, lpn: int) -> int:
        """Channel holding ``lpn``; unmapped pages hash to a stable channel."""
        ppn = self.page_map[lpn]
        if ppn == _UNMAPPED:
            return lpn % self.geometry.num_channels
        return self.geometry.channel_of_page(ppn)

    def free_blocks_on_channel(self, channel: int) -> int:
        return len(self._free[channel])

    @property
    def mapped_pages(self) -> int:
        return sum(1 for ppn in self.page_map if ppn != _UNMAPPED)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write_page(self, lpn: int) -> Tuple[int, GcWork]:
        """Map ``lpn`` to a fresh physical page.

        Returns the new PPN and the garbage-collection work (if any)
        that had to run on the destination channel to make room.  The
        caller charges that work to the channel's timeline.
        """
        if not 0 <= lpn < len(self.page_map):
            raise ValueError(f"LPN {lpn} outside exported range")
        work = GcWork()
        self._invalidate(lpn)
        channel = self._next_host_channel
        self._next_host_channel = (channel + 1) % self.geometry.num_channels
        ppn = self._append(channel, _HOST_STREAM, work)
        self._map(lpn, ppn)
        self.stats.host_programs += 1
        return ppn, work

    def trim_page(self, lpn: int) -> None:
        """Discard the mapping for ``lpn`` (dataset delete / blob free)."""
        self._invalidate(lpn)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _map(self, lpn: int, ppn: int) -> None:
        self.page_map[lpn] = ppn
        self._rmap[ppn] = lpn
        self._valid_count[self.geometry.block_of_page(ppn)] += 1

    def _invalidate(self, lpn: int) -> None:
        old_ppn = self.page_map[lpn]
        if old_ppn == _UNMAPPED:
            return
        self.page_map[lpn] = _UNMAPPED
        self._rmap[old_ppn] = _UNMAPPED
        self._valid_count[self.geometry.block_of_page(old_ppn)] -= 1

    def _append(self, channel: int, stream: int, work: GcWork) -> int:
        """Claim the next physical page of the channel's open block."""
        slot = self._open[channel][stream]
        if slot is None:
            block_id = self._take_free_block(channel, work, allow_gc=stream == _HOST_STREAM)
            slot = (block_id, 0)
        block_id, offset = slot
        ppn = block_id * self.geometry.pages_per_block + offset
        offset += 1
        if offset == self.geometry.pages_per_block:
            self._closed[channel].append(block_id)
            self._open[channel][stream] = None
        else:
            self._open[channel][stream] = (block_id, offset)
        return ppn

    def _take_free_block(self, channel: int, work: GcWork, allow_gc: bool) -> int:
        free = self._free[channel]
        if allow_gc and len(free) <= self.gc_low_water:
            self._collect(channel, work)
        if not free:
            if allow_gc:
                raise FtlError(f"channel {channel} exhausted: GC made no progress")
            raise FtlError(f"channel {channel} exhausted during GC relocation")
        # Wear levelling: program into the least-worn free block so
        # erase cycles stay balanced across the channel's blocks.
        best_index = 0
        best_erases = self._erase_counts[free[0]]
        for index in range(1, len(free)):
            erases = self._erase_counts[free[index]]
            if erases < best_erases:
                best_index, best_erases = index, erases
        block_id = free[best_index]
        free[best_index] = free[-1]
        free.pop()
        return block_id

    def _pick_victim(self, channel: int) -> Optional[int]:
        closed = self._closed[channel]
        if not closed:
            return None
        best_index = 0
        best_valid = self._valid_count[closed[0]]
        for index in range(1, len(closed)):
            valid = self._valid_count[closed[index]]
            if valid < best_valid:
                best_index, best_valid = index, valid
        if best_valid >= self.geometry.pages_per_block:
            # Every closed block is fully valid: erasing buys nothing.
            return None
        victim = closed[best_index]
        closed[best_index] = closed[-1]
        closed.pop()
        return victim

    def _collect(self, channel: int, work: GcWork) -> None:
        """Greedy GC: relocate min-valid victims until the free pool refills."""
        free = self._free[channel]
        while len(free) < self.gc_high_water:
            victim = self._pick_victim(channel)
            if victim is None:
                break
            base = victim * self.geometry.pages_per_block
            for offset in range(self.geometry.pages_per_block):
                ppn = base + offset
                lpn = self._rmap[ppn]
                if lpn == _UNMAPPED:
                    continue
                new_ppn = self._append(channel, _GC_STREAM, work)
                # Remap in place; _invalidate is not used because the
                # old slot must be cleared regardless of map state.
                self._rmap[ppn] = _UNMAPPED
                self._valid_count[victim] -= 1
                self.page_map[lpn] = new_ppn
                self._rmap[new_ppn] = lpn
                self._valid_count[self.geometry.block_of_page(new_ppn)] += 1
                work.relocation_reads += 1
                work.relocation_programs += 1
                self.stats.gc_programs += 1
            assert self._valid_count[victim] == 0, "victim still holds valid pages"
            work.erases += 1
            self.stats.erases += 1
            self._erase_counts[victim] += 1
            free.append(victim)

    # ------------------------------------------------------------------
    # Wear introspection
    # ------------------------------------------------------------------
    def wear_stats(self) -> WearStats:
        """Erase-count distribution across all blocks."""
        counts = self._erase_counts
        return WearStats(
            min_erases=min(counts),
            max_erases=max(counts),
            mean_erases=sum(counts) / len(counts),
        )

    # ------------------------------------------------------------------
    # Snapshot / restore (conditioning cache)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the full mapping state (cheap: list copies).

        Used by :mod:`repro.ssd.conditioning` so that expensive
        preconditioning runs once per (geometry, condition) and later
        devices start from a restored copy.
        """
        return {
            "page_map": self.page_map.copy(),
            "rmap": self._rmap.copy(),
            "valid_count": self._valid_count.copy(),
            "free": [pool.copy() for pool in self._free],
            "closed": [pool.copy() for pool in self._closed],
            "open": [slots.copy() for slots in self._open],
            "next_host_channel": self._next_host_channel,
            "erase_counts": self._erase_counts.copy(),
        }

    def restore(self, snap: dict) -> None:
        """Install a state previously captured by :meth:`snapshot`."""
        self.page_map = snap["page_map"].copy()
        self._rmap = snap["rmap"].copy()
        self._valid_count = snap["valid_count"].copy()
        self._free = [pool.copy() for pool in snap["free"]]
        self._closed = [pool.copy() for pool in snap["closed"]]
        self._open = [slots.copy() for slots in snap["open"]]
        self._next_host_channel = snap["next_host_channel"]
        self._erase_counts = snap["erase_counts"].copy()
        self.stats = FtlStats()

    # ------------------------------------------------------------------
    # Integrity checking (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify map/reverse-map/valid-count consistency.  O(total pages)."""
        for lpn, ppn in enumerate(self.page_map):
            if ppn != _UNMAPPED and self._rmap[ppn] != lpn:
                raise AssertionError(f"map mismatch: lpn={lpn} ppn={ppn} rmap={self._rmap[ppn]}")
        counted = [0] * self.geometry.total_blocks
        for ppn, lpn in enumerate(self._rmap):
            if lpn != _UNMAPPED:
                if self.page_map[lpn] != ppn:
                    raise AssertionError(f"rmap mismatch: ppn={ppn} lpn={lpn}")
                counted[self.geometry.block_of_page(ppn)] += 1
        if counted != self._valid_count:
            raise AssertionError("valid counts inconsistent with reverse map")
