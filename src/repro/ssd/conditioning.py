"""SSD preconditioning (paper Section 5.1).

The paper evaluates two device conditions and re-conditions before
every test:

* **Clean-SSD** -- preconditioned with 128 KiB sequential writes.  The
  FTL's blocks hold sequentially-live data, garbage-collection victims
  are (nearly) empty, and write amplification stays ~1.
* **Fragment-SSD** -- preconditioned with 4 KiB random writes "for
  multiple hours".  Valid pages scatter across blocks, GC victims stay
  mostly valid, and write amplification settles around 4-6.

Conditioning here runs *untimed*: it drives the FTL's mapping and GC
machinery directly (so the resulting block layout and the steady-state
write amplification are real) and then zeroes the device's timing
horizons.  That reproduces "multiple hours" of preconditioning in well
under a second of wall-clock time.

Because many experiments re-condition identical devices, the resulting
FTL state is cached per (geometry, condition, parameters) and restored
into fresh devices -- the mapping arrays are plain lists, so a restore
is just a handful of list copies.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.sim.rng import derive_seed
from repro.ssd.device import SsdDevice
from repro.ssd.geometry import SsdGeometry

_snapshot_cache: Dict[Tuple, dict] = {}


def clear_conditioning_cache() -> None:
    """Drop cached FTL states (tests use this to force re-conditioning)."""
    _snapshot_cache.clear()


def _cache_key(geometry: SsdGeometry, kind: str, *params) -> Tuple:
    return (geometry, kind) + params


def precondition_clean(device: SsdDevice) -> None:
    """Two sequential passes over the exported LBA space.

    The first pass fills the device; the second drives the FTL to the
    sequential-overwrite steady state, in which garbage collection
    victims are fully invalid and write amplification stays at ~1 --
    matching a device preconditioned with large sequential writes.
    """
    key = _cache_key(device.geometry, "clean")
    snap = _snapshot_cache.get(key)
    if snap is None:
        ftl = device.ftl
        for _ in range(2):
            for lpn in range(device.geometry.exported_pages):
                ftl.write_page(lpn)
        snap = ftl.snapshot()
        _snapshot_cache[key] = snap
    else:
        device.ftl.restore(snap)
    _settle(device)


def precondition_fragmented(
    device: SsdDevice, overwrite_factor: float = 2.0, seed: int = 1
) -> None:
    """Sequential fill followed by uniform random 4 KiB overwrites.

    ``overwrite_factor`` is the number of full device capacities of
    random overwrite traffic; 2.0 is enough to reach the steady-state
    write amplification of greedy GC under uniform random load.
    """
    if overwrite_factor < 0:
        raise ValueError("overwrite factor must be non-negative")
    key = _cache_key(device.geometry, "fragmented", overwrite_factor, seed)
    snap = _snapshot_cache.get(key)
    if snap is None:
        ftl = device.ftl
        exported = device.geometry.exported_pages
        for lpn in range(exported):
            ftl.write_page(lpn)
        rng = random.Random(derive_seed(seed, "precondition:fragmented"))
        for _ in range(int(exported * overwrite_factor)):
            ftl.write_page(rng.randrange(exported))
        snap = ftl.snapshot()
        _snapshot_cache[key] = snap
    else:
        device.ftl.restore(snap)
    _settle(device)


def _settle(device: SsdDevice) -> None:
    """Reset timing and *measurement* state; keep the FTL layout."""
    device.reset_time_state()
    # Preconditioning traffic must not pollute the measured write
    # amplification, so the FTL counters restart here too.
    device.ftl.stats.host_programs = 0
    device.ftl.stats.gc_programs = 0
    device.ftl.stats.erases = 0
