"""SSD preconditioning (paper Section 5.1).

The paper evaluates two device conditions and re-conditions before
every test:

* **Clean-SSD** -- preconditioned with 128 KiB sequential writes.  The
  FTL's blocks hold sequentially-live data, garbage-collection victims
  are (nearly) empty, and write amplification stays ~1.
* **Fragment-SSD** -- preconditioned with 4 KiB random writes "for
  multiple hours".  Valid pages scatter across blocks, GC victims stay
  mostly valid, and write amplification settles around 4-6.

Conditioning here runs *untimed*: it drives the FTL's mapping and GC
machinery directly (so the resulting block layout and the steady-state
write amplification are real) and then zeroes the device's timing
horizons.  That reproduces "multiple hours" of preconditioning in well
under a second of wall-clock time.

Because many experiments re-condition identical devices, the resulting
FTL state is cached per (geometry, fidelity knobs, condition,
parameters) and restored into fresh devices -- the mapping arrays are
plain lists, so a restore is just a handful of list copies.  The
fidelity knobs (mapping-cache capacity, wear configuration) are part
of the key because conditioning genuinely diverges across them: cache
residency, retirement and wear-level migrations all differ.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.sim.rng import derive_seed
from repro.ssd.device import SsdDevice

_snapshot_cache: Dict[Tuple, dict] = {}


def clear_conditioning_cache() -> None:
    """Drop cached FTL states (tests use this to force re-conditioning)."""
    _snapshot_cache.clear()


def _cache_key(device: SsdDevice, kind: str, *params) -> Tuple:
    return (device.geometry, device.ftl.fidelity_key(), kind) + params


def precondition_clean(device: SsdDevice) -> None:
    """Two sequential passes over the exported LBA space.

    The first pass fills the device; the second drives the FTL to the
    sequential-overwrite steady state, in which garbage collection
    victims are fully invalid and write amplification stays at ~1 --
    matching a device preconditioned with large sequential writes.
    """
    key = _cache_key(device, "clean")
    snap = _snapshot_cache.get(key)
    if snap is None:
        ftl = device.ftl
        for _ in range(2):
            for lpn in range(device.geometry.exported_pages):
                ftl.write_page(lpn)
        snap = ftl.snapshot()
        _snapshot_cache[key] = snap
    else:
        device.ftl.restore(snap)
    _settle(device)


def precondition_fragmented(
    device: SsdDevice, overwrite_factor: float = 2.0, seed: int = 1
) -> None:
    """Sequential fill followed by uniform random 4 KiB overwrites.

    ``overwrite_factor`` is the number of full device capacities of
    random overwrite traffic; 2.0 is enough to reach the steady-state
    write amplification of greedy GC under uniform random load.
    """
    if overwrite_factor < 0:
        raise ValueError("overwrite factor must be non-negative")
    key = _cache_key(device, "fragmented", overwrite_factor, seed)
    snap = _snapshot_cache.get(key)
    if snap is None:
        ftl = device.ftl
        exported = device.geometry.exported_pages
        for lpn in range(exported):
            ftl.write_page(lpn)
        rng = random.Random(derive_seed(seed, "precondition:fragmented"))
        for _ in range(int(exported * overwrite_factor)):
            ftl.write_page(rng.randrange(exported))
        snap = ftl.snapshot()
        _snapshot_cache[key] = snap
    else:
        device.ftl.restore(snap)
    _settle(device)


def age_device(
    device: SsdDevice,
    age: float,
    wear_skew: float = 0.25,
    overwrite_factor: float = 2.0,
    seed: int = 1,
) -> None:
    """Fast-forward a device to a target wear/fragmentation state.

    ``age`` is the fraction of the device's useful life consumed, in
    [0, 1): 0.0 is a fresh (but fragmented) device, 0.8 a device near
    end of life.  Aging composes two effects:

    * **fragmentation** -- the same random-overwrite conditioning as
      :func:`precondition_fragmented` (an old device's blocks hold
      scattered valid pages);
    * **wear** -- per-block erase counts fast-forwarded to ``age *
      0.9 * endurance`` on average (the 0.9 leaves headroom so the
      aged device boots alive and retires blocks *during* the
      subsequent run), with a lognormal-ish spread controlled by
      ``wear_skew`` (real fleets never wear uniformly -- that skew is
      what makes static wear levelling and retirement observable).

    Without a configured endurance limit the wear target falls back to
    ``age * 3000`` cycles (a typical TLC rating), so wear statistics
    stay meaningful on profiles that never retire blocks.
    """
    if not 0.0 <= age < 1.0:
        raise ValueError("age must be in [0, 1)")
    if wear_skew < 0:
        raise ValueError("wear_skew must be non-negative")
    key = _cache_key(device, "aged", age, wear_skew, overwrite_factor, seed)
    snap = _snapshot_cache.get(key)
    ftl = device.ftl
    if snap is None:
        exported = device.geometry.exported_pages
        for lpn in range(exported):
            ftl.write_page(lpn)
        rng = random.Random(derive_seed(seed, "precondition:aged"))
        for _ in range(int(exported * overwrite_factor)):
            ftl.write_page(rng.randrange(exported))
        endurance = 3000
        if ftl.wear is not None and ftl.wear.endurance_cycles is not None:
            endurance = ftl.wear.endurance_cycles
        mean_target = age * 0.9 * endurance
        wear_rng = random.Random(derive_seed(seed, "precondition:wear"))
        deltas = []
        for _ in range(device.geometry.total_blocks):
            factor = max(0.0, wear_rng.gauss(1.0, wear_skew))
            deltas.append(int(mean_target * factor))
        ftl.advance_wear(deltas)
        snap = ftl.snapshot()
        _snapshot_cache[key] = snap
    else:
        ftl.restore(snap)
    _settle(device)


def _settle(device: SsdDevice) -> None:
    """Reset timing and *measurement* state; keep the FTL layout."""
    device.reset_time_state()
    # Preconditioning traffic must not pollute the measured write
    # amplification (or mapping-cache hit rates), so the FTL's
    # measurement counters restart here too.
    device.ftl.reset_measurement()
