"""SSD device model.

The model reproduces the NVMe SSD behaviours Gimbal's mechanisms react
to (paper Sections 2.3 and Appendix A/D):

* load-dependent latency with an impulse response to congestion
  (FCFS queueing at the controller and the NAND channels),
* IO-size bandwidth asymmetry (per-command controller cost is
  amortised by large IOs; pages stripe across channels),
* read/write interference (program operations share channels with
  reads and block them head-of-line),
* the clean-vs-fragmented write cliff (a page-mapped FTL with greedy
  garbage collection whose write amplification depends on the overwrite
  history), and
* burst absorption by the controller DRAM write buffer (writes complete
  fast until the offered rate exceeds the NAND drain rate).

Timing is *analytic*: each command books busy time on the controller
and channel resources at submission, and exactly one completion event
is scheduled -- no per-page events -- which keeps simulated hundreds of
KIOPS tractable in pure Python.
"""

from repro.ssd.commands import DeviceCommand, IoOp
from repro.ssd.conditioning import (
    age_device,
    clear_conditioning_cache,
    precondition_clean,
    precondition_fragmented,
)
from repro.ssd.device import DeviceStats, NullDevice, SsdDevice
from repro.ssd.ftl import Ftl, FtlStats, GcWork, WearConfig, WearStats
from repro.ssd.geometry import SsdGeometry
from repro.ssd.mapping_cache import MappingCache
from repro.ssd.profiles import (
    DCT983_PROFILE,
    NULL_PROFILE,
    P3600_PROFILE,
    QLC_PROFILE,
    DeviceProfile,
    profile_by_name,
)
from repro.ssd.write_buffer import WriteBuffer

__all__ = [
    "DeviceCommand",
    "IoOp",
    "SsdDevice",
    "NullDevice",
    "DeviceStats",
    "Ftl",
    "FtlStats",
    "GcWork",
    "WearConfig",
    "WearStats",
    "MappingCache",
    "SsdGeometry",
    "DeviceProfile",
    "DCT983_PROFILE",
    "P3600_PROFILE",
    "QLC_PROFILE",
    "NULL_PROFILE",
    "profile_by_name",
    "WriteBuffer",
    "precondition_clean",
    "precondition_fragmented",
    "age_device",
    "clear_conditioning_cache",
]
