"""SSD geometry: how NAND is organised and how much is exported.

The geometry is scaled down in *capacity* relative to the paper's
960 GB Samsung DCT983 (the default exports ~256 MiB) but not in *rate*:
timing comes from :mod:`repro.ssd.profiles`.  A smaller LBA space keeps
the page-mapped FTL cheap while preserving the garbage-collection
dynamics, because write amplification depends on the overwrite pattern
and the overprovisioning ratio, not on absolute capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_SIZE = 4096


@dataclass(frozen=True)
class SsdGeometry:
    """Physical layout of the simulated device.

    Blocks are partitioned across channels (``block % num_channels``);
    host writes stripe page-by-page across one open block per channel,
    which is how superblock-style FTLs achieve channel parallelism for
    sequential data.
    """

    num_channels: int = 8
    blocks_per_channel: int = 36
    pages_per_block: int = 256
    overprovision: float = 0.12

    def __post_init__(self) -> None:
        if self.num_channels <= 0 or self.blocks_per_channel <= 1 or self.pages_per_block <= 0:
            raise ValueError("invalid geometry dimensions")
        if not 0.0 < self.overprovision < 0.5:
            raise ValueError("overprovision must be in (0, 0.5)")

    @property
    def total_blocks(self) -> int:
        return self.num_channels * self.blocks_per_channel

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def exported_pages(self) -> int:
        """Logical pages visible to the host (physical minus overprovisioning)."""
        return int(self.total_pages * (1.0 - self.overprovision))

    @property
    def exported_bytes(self) -> int:
        return self.exported_pages * PAGE_SIZE

    def channel_of_block(self, block_id: int) -> int:
        return block_id % self.num_channels

    def block_of_page(self, ppn: int) -> int:
        return ppn // self.pages_per_block

    def channel_of_page(self, ppn: int) -> int:
        return self.channel_of_block(self.block_of_page(ppn))

    def __str__(self) -> str:
        return (
            f"{self.num_channels}ch x {self.blocks_per_channel}blk x "
            f"{self.pages_per_block}pg (exported {self.exported_bytes // (1 << 20)} MiB, "
            f"OP {self.overprovision:.0%})"
        )
