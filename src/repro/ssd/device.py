"""The SSD device: analytic timing over controller + channel resources.

A command books busy time on the controller and the NAND channels the
moment the device accepts it, and exactly one completion event fires
when the slowest booked resource finishes.  Because every resource is
FCFS, booking at acceptance preserves ordering while avoiding per-page
events -- the property that lets pure Python simulate hundreds of
thousands of IOPS.

Phenomena reproduced (and where they come from):

========================  ==============================================
load-latency impulse      bookings queue behind ``busy_until`` horizons
IO-size asymmetry         per-command controller cost; page striping
read/write interference   programs and reads share channel timelines
clean/fragmented cliff    FTL garbage-collection debt charged to writes
burst absorption          short bursts program on idle channels and
                          complete fast; sustained writes observe the
                          program-queue sojourn (incl. GC debt)
========================  ==============================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.trace import TraceType
from repro.sim.engine import Simulator
from repro.ssd.commands import DeviceCommand, IoOp
from repro.ssd.ftl import Ftl, WearConfig
from repro.ssd.geometry import SsdGeometry
from repro.ssd.mapping_cache import MappingCache
from repro.ssd.profiles import DCT983_PROFILE, DeviceProfile
from repro.ssd.write_buffer import WriteBuffer

CompletionCallback = Callable[[DeviceCommand], None]


@dataclass
class DeviceStats:
    """Host-visible command counters (FTL keeps the program/erase side)."""

    read_commands: int = 0
    write_commands: int = 0
    trim_commands: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    trimmed_pages: int = 0
    buffer_read_hits: int = 0

    @property
    def commands(self) -> int:
        return self.read_commands + self.write_commands + self.trim_commands


class SsdDevice:
    """One simulated NVMe SSD."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile = DCT983_PROFILE,
        geometry: Optional[SsdGeometry] = None,
        name: str = "ssd0",
    ):
        self.sim = sim
        self.profile = profile
        self.geometry = geometry or SsdGeometry()
        self.name = name
        # Command completions are homogeneous timed events: register
        # them as a kernel population so the batch backend can advance
        # them in bulk (the reference backend serves the same API from
        # its heap, byte-identically).
        self._complete_pop = sim.population(self._complete, label=f"{name}.complete")
        # Optional fidelity layers, both off unless the profile asks:
        # a DFTL mapping cache (translation-page traffic) and wear
        # dynamics (endurance retirement + static wear levelling).
        self._map_cache: Optional[MappingCache] = None
        if profile.map_cache_pages is not None:
            self._map_cache = MappingCache(
                self.geometry.exported_pages, capacity_pages=profile.map_cache_pages
            )
        wear = None
        if profile.endurance_cycles is not None or profile.static_wear_threshold is not None:
            wear = WearConfig(
                endurance_cycles=profile.endurance_cycles,
                static_wear_threshold=profile.static_wear_threshold,
            )
        self.ftl = Ftl(
            self.geometry,
            gc_low_water=profile.gc_low_water_blocks,
            gc_high_water=profile.gc_high_water_blocks,
            mapping_cache=self._map_cache,
            wear=wear,
        )
        self.buffer = WriteBuffer(profile.buffer_pages)
        self._ctrl_busy_until = 0.0
        # Two horizons per channel approximate program/GC suspension in
        # favour of reads:
        #  - the *foreground* horizon carries raw read transfers and raw
        #    program occupancy -- what a read has to queue behind;
        #  - the *write-path* horizon additionally carries GC debt and
        #    erases -- what the next program (and the buffer release
        #    that paces host writes) has to queue behind.
        self._fg_horizon: List[float] = [0.0] * self.geometry.num_channels
        self._wr_horizon: List[float] = [0.0] * self.geometry.num_channels
        self._gc_debt_us: List[float] = [0.0] * self.geometry.num_channels
        self._pending_writes: Deque[Tuple[DeviceCommand, CompletionCallback, float]] = deque()
        # Buffer releases grouped by completion timestamp: commands
        # whose last program finishes at the same instant share one
        # drain event (and one admission pass) instead of one each.
        self._drain_schedule: Dict[float, List[range]] = {}
        self._drain_events: Dict[float, object] = {}
        # Hot-path constants hoisted out of the per-command handlers.
        self._exported_pages = self.geometry.exported_pages
        self._t_ctrl_cmd_us = profile.t_ctrl_cmd_us
        self._num_channels = self.geometry.num_channels
        self._pages_per_block = self.geometry.pages_per_block
        # The buffered-LPN multiset survives buffer.clear(), so the
        # read path can probe it without a method call per page.
        self._buffered_lpns = self.buffer._lpn_counts
        self.outstanding = 0
        self.stats = DeviceStats()

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    @property
    def exported_pages(self) -> int:
        return self.geometry.exported_pages

    def submit(self, cmd: DeviceCommand, on_complete: CompletionCallback) -> None:
        """Accept a command; ``on_complete(cmd)`` fires at completion time."""
        npages = cmd.npages
        if cmd.lpn + npages > self._exported_pages:
            raise ValueError(
                f"{cmd!r} beyond exported capacity ({self._exported_pages} pages)"
            )
        now = self.sim.now
        cmd.submit_time = now
        self.outstanding += 1
        busy = self._ctrl_busy_until
        ctrl_done = (now if now > busy else busy) + self._t_ctrl_cmd_us
        self._ctrl_busy_until = ctrl_done
        op = cmd.op
        stats = self.stats
        if op is IoOp.READ:
            stats.read_commands += 1
            stats.read_bytes += npages * 4096
            if npages == 1:
                # 4 KiB reads dominate the paper's workloads: the whole
                # booking (buffer probe, channel lookup, one horizon
                # touch, completion scheduling) runs inline here with
                # ``Ftl.channel_of_lpn`` and ``_finalize`` unrolled.
                profile = self.profile
                lpn = cmd.lpn
                if lpn in self._buffered_lpns:
                    stats.buffer_read_hits += 1
                    done = ctrl_done + profile.t_buf_read_us
                else:
                    if self._map_cache is None:
                        ppn = self.ftl.page_map[lpn]
                    else:
                        # DFTL: lookup touches the translation cache;
                        # a miss serializes a translation-page read
                        # (plus any dirty-eviction writeback) on the
                        # channel ahead of the data read.
                        ppn = self.ftl.lookup(lpn)
                    if ppn < 0:
                        channel = lpn % self._num_channels
                    else:
                        channel = (ppn // self._pages_per_block) % self._num_channels
                    fg_horizon = self._fg_horizon
                    horizon = fg_horizon[channel]
                    channel_start = ctrl_done if ctrl_done > horizon else horizon
                    if self._map_cache is not None:
                        channel_start = self._charge_map_traffic(channel, channel_start)
                    page_done = channel_start + profile.t_read_xfer_us
                    fg_horizon[channel] = page_done
                    done = page_done + profile.t_sense_us
                cmd.complete_time = done
                self._complete_pop.add(done, cmd, on_complete)
            else:
                self._book_read(cmd, on_complete, ctrl_done)
        elif op is IoOp.TRIM:
            # Deallocate is a pure FTL-metadata operation: no channel
            # work, acknowledged once the controller processes it.
            stats.trim_commands += 1
            stats.trimmed_pages += npages
            for lpn in range(cmd.lpn, cmd.lpn + npages):
                if not self.buffer.contains(lpn):
                    self.ftl.trim_page(lpn)
            if self._map_cache is not None:
                # Translation-page traffic from the trims drains as
                # background channel debt (the command itself still
                # acknowledges at controller speed).
                self._charge_map_debt(cmd.lpn % self._num_channels)
            self._finalize(cmd, on_complete, ctrl_done)
        else:
            if npages > self.buffer.capacity:
                raise ValueError(f"write of {npages} pages exceeds buffer capacity")
            stats.write_commands += 1
            stats.write_bytes += npages * 4096
            self._pending_writes.append((cmd, on_complete, ctrl_done))
            self._admit_pending_writes()

    def reset_time_state(self) -> None:
        """Zero the timing horizons (used right after untimed conditioning)."""
        if self.outstanding:
            raise RuntimeError("cannot reset with commands in flight")
        self._ctrl_busy_until = 0.0
        self._fg_horizon = [0.0] * self.geometry.num_channels
        self._wr_horizon = [0.0] * self.geometry.num_channels
        self._gc_debt_us = [0.0] * self.geometry.num_channels
        # Cancel the in-flight buffer-drain events: their commands have
        # completed (host-visible writes finalize at admission), but a
        # stale drain firing after the buffer is cleared would release
        # pages that no longer exist -- resurrecting completed state
        # into the post-conditioning timeline.
        for event in self._drain_events.values():
            event.cancel()
        self._drain_events.clear()
        self._drain_schedule.clear()
        self.buffer.clear()
        self._pending_writes.clear()
        self.stats = DeviceStats()

    @property
    def write_amplification(self) -> float:
        return self.ftl.stats.write_amplification

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Expose device, buffer and FTL state as pull gauges."""
        prefix = prefix or f"ssd.{self.name}"
        # Gauges close over self (not self.stats): reset_time_state
        # replaces the stats object and the gauges must follow it.
        registry.gauge(f"{prefix}.read_commands", lambda: self.stats.read_commands)
        registry.gauge(f"{prefix}.write_commands", lambda: self.stats.write_commands)
        registry.gauge(f"{prefix}.trim_commands", lambda: self.stats.trim_commands)
        registry.gauge(f"{prefix}.read_bytes", lambda: self.stats.read_bytes)
        registry.gauge(f"{prefix}.write_bytes", lambda: self.stats.write_bytes)
        registry.gauge(f"{prefix}.buffer_read_hits", lambda: self.stats.buffer_read_hits)
        registry.gauge(f"{prefix}.outstanding", lambda: self.outstanding)
        registry.gauge(f"{prefix}.write_amplification", lambda: self.write_amplification)
        registry.gauge(f"{prefix}.buffer_occupied_pages", lambda: self.buffer.occupied)
        registry.gauge(f"{prefix}.gc_debt_us", lambda: sum(self._gc_debt_us))
        registry.gauge(f"{prefix}.ftl.host_programs", lambda: self.ftl.stats.host_programs)
        registry.gauge(f"{prefix}.ftl.gc_programs", lambda: self.ftl.stats.gc_programs)
        registry.gauge(f"{prefix}.ftl.erases", lambda: self.ftl.stats.erases)
        registry.gauge(f"{prefix}.ftl.wl_programs", lambda: self.ftl.stats.wl_programs)
        registry.gauge(f"{prefix}.ftl.wl_migrations", lambda: self.ftl.stats.wl_migrations)
        registry.gauge(f"{prefix}.ftl.retired_blocks", lambda: self.ftl.retired_blocks)
        if self._map_cache is not None:
            cache = self._map_cache
            registry.gauge(f"{prefix}.ftl.map_hits", lambda: cache.hits)
            registry.gauge(f"{prefix}.ftl.map_misses", lambda: cache.misses)
            registry.gauge(f"{prefix}.ftl.map_evictions", lambda: cache.evictions)
            registry.gauge(f"{prefix}.ftl.map_writebacks", lambda: cache.writebacks)
            registry.gauge(f"{prefix}.ftl.map_hit_rate", lambda: cache.hit_rate)
            registry.gauge(f"{prefix}.ftl.map_resident_pages", lambda: cache.resident_pages)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _book_read(self, cmd: DeviceCommand, on_complete: CompletionCallback, start: float) -> None:
        # Single-page reads never reach here: ``submit`` books them
        # inline.  This is the multi-page striping path.
        profile = self.profile
        buffered = self._buffered_lpns
        fg_horizon = self._fg_horizon
        channel_of_lpn = self.ftl.channel_of_lpn
        map_cache = self._map_cache
        ftl_lookup = self.ftl.lookup
        t_buf_read_us = profile.t_buf_read_us
        t_read_xfer_us = profile.t_read_xfer_us
        done = start
        touched_nand = False
        hits = 0
        for lpn in range(cmd.lpn, cmd.lpn + cmd.npages):
            if lpn in buffered:
                page_done = start + t_buf_read_us
                hits += 1
            else:
                if map_cache is not None:
                    # Touch the translation entry (miss traffic is
                    # charged on this page's channel below).
                    ftl_lookup(lpn)
                channel = channel_of_lpn(lpn)
                # Reads queue behind raw read/program occupancy only;
                # GC work is suspended in their favour.
                horizon = fg_horizon[channel]
                channel_start = start if start > horizon else horizon
                if map_cache is not None:
                    channel_start = self._charge_map_traffic(channel, channel_start)
                page_done = channel_start + t_read_xfer_us
                fg_horizon[channel] = page_done
                touched_nand = True
            if page_done > done:
                done = page_done
        if hits:
            self.stats.buffer_read_hits += hits
        if touched_nand:
            # NAND array sense is parallel across dies: it lengthens the
            # command but does not occupy the channel.
            done += profile.t_sense_us
        self._finalize(cmd, on_complete, done)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _admit_pending_writes(self) -> None:
        """Admit the whole eligible prefix of the pending-write queue.

        FIFO admission: the loop stops at the first command the buffer
        cannot hold, so a big write cannot be starved by smaller ones
        arriving behind it.
        """
        pending = self._pending_writes
        if not pending:
            return
        buffer = self.buffer
        now = self.sim.now
        while pending:
            cmd, on_complete, ready_time = pending[0]
            if not buffer.has_space(cmd.npages):
                return
            pending.popleft()
            self._admit_write(
                cmd, on_complete, ready_time if ready_time > now else now
            )

    def _admit_write(
        self, cmd: DeviceCommand, on_complete: CompletionCallback, admit_time: float
    ) -> None:
        # Per-LPN loop below is the write hot path: hoist every
        # attribute load (profile costs, horizon lists, tracer) into
        # locals once, and keep ``lpns`` a range -- it is only ever
        # iterated (here, by the buffer, and by the release callback),
        # never indexed, so nothing needs materialising.
        profile = self.profile
        t_prog_us = profile.t_prog_us
        t_read_xfer_us = profile.t_read_xfer_us
        t_erase_us = profile.t_erase_us
        gc_installment_us = profile.gc_installment_us
        gc_read_visible_fraction = profile.gc_read_visible_fraction
        gc_debt_us = self._gc_debt_us
        wr_horizon = self._wr_horizon
        fg_horizon = self._fg_horizon
        write_page = self.ftl.write_page
        channel_of_page = self.geometry.channel_of_page
        map_cache = self._map_cache
        tracer = self.sim.tracer
        lpns = range(cmd.lpn, cmd.lpn + cmd.npages)
        self.buffer.admit(lpns)
        # The host sees the write complete once it is safely buffered;
        # admission (and therefore host-visible write latency) backs up
        # only when the buffer is full, i.e. when the offered write
        # rate exceeds the NAND drain rate -- Section 3.4's "write rate
        # rises beyond the write buffer serving capability".
        self._finalize(cmd, on_complete, admit_time + profile.t_buf_write_us)
        last_program_done = admit_time
        for lpn in lpns:
            ppn, work = write_page(lpn)
            channel = channel_of_page(ppn)
            if map_cache is not None:
                # Translation updates (host write + any GC relocations)
                # drain like GC: background channel debt, charged to
                # programs in installments below.
                self._charge_map_debt(channel)
            if not work.empty:
                gc_busy_us = (
                    work.relocation_reads * t_read_xfer_us
                    + work.relocation_programs * t_prog_us
                    + work.erases * t_erase_us
                )
                gc_debt_us[channel] += gc_busy_us
                if tracer is not None:
                    # The FTL collects synchronously and the device
                    # charges the busy time as channel debt, so GC
                    # "starts" at the admit and logically "ends" once
                    # the charged debt has drained.
                    tracer.emit(
                        TraceType.GC_START,
                        self.sim.now,
                        f"ssd.{self.name}",
                        channel=channel,
                        relocation_reads=work.relocation_reads,
                        relocation_programs=work.relocation_programs,
                        erases=work.erases,
                        busy_us=gc_busy_us,
                    )
                    tracer.emit(
                        TraceType.GC_END,
                        self.sim.now,
                        f"ssd.{self.name}",
                        channel=channel,
                        drains_at_us=self.sim.now + gc_debt_us[channel],
                    )
            wr_before = wr_horizon[channel]
            channel_start = max(admit_time, wr_before, fg_horizon[channel])
            # Garbage collection runs opportunistically: debt retired
            # while the write path sat idle is invisible to foreground
            # latency (background GC); only the remainder is charged to
            # this program, in bounded installments.
            debt = gc_debt_us[channel]
            idle_gap = channel_start - wr_before
            if idle_gap > 0 and debt > 0:
                debt = debt - idle_gap
                if debt < 0.0:
                    debt = 0.0
            debt_installment = debt if debt < gc_installment_us else gc_installment_us
            gc_debt_us[channel] = debt - debt_installment
            page_done = channel_start + t_prog_us + debt_installment
            wr_horizon[channel] = page_done
            # Reads queue behind the raw program plus the share of GC
            # that suspension cannot hide from them.
            fg_horizon[channel] = (
                channel_start + t_prog_us + gc_read_visible_fraction * debt_installment
            )
            if page_done > last_program_done:
                last_program_done = page_done
        # Commands whose programs drain at the same instant share one
        # event: their buffer pages are released together (in admission
        # order) and one admission pass runs for the whole batch.
        schedule = self._drain_schedule
        batch = schedule.get(last_program_done)
        if batch is None:
            schedule[last_program_done] = [lpns]
            self._drain_events[last_program_done] = self.sim.at(
                last_program_done, self._on_channel_drain, last_program_done
            )
        else:
            batch.append(lpns)

    # ------------------------------------------------------------------
    # DFTL translation-page traffic
    # ------------------------------------------------------------------
    def _charge_map_traffic(self, channel: int, start: float) -> float:
        """Serialize pending translation-page NAND work ahead of ``start``.

        Read-path charging: a map miss must fetch the translation page
        before the data read can begin, so the miss latency is
        host-visible.  Returns the delayed start time.
        """
        map_reads, map_writes = self.ftl.take_map_traffic()
        if not map_reads and not map_writes:
            return start
        profile = self.profile
        busy = map_reads * profile.t_read_xfer_us + map_writes * profile.t_prog_us
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.MAP_MISS,
                self.sim.now,
                f"ssd.{self.name}",
                channel=channel,
                reads=map_reads,
                writebacks=map_writes,
                busy_us=busy,
            )
        return start + busy

    def _charge_map_debt(self, channel: int) -> None:
        """Drain pending translation-page work into background debt.

        Write/trim-path charging: mapping updates do not block the
        host-visible acknowledgement, but their NAND time joins the
        channel's GC debt and is retired in the same installments.
        """
        map_reads, map_writes = self.ftl.take_map_traffic()
        if not map_reads and not map_writes:
            return
        profile = self.profile
        busy = map_reads * profile.t_read_xfer_us + map_writes * profile.t_prog_us
        self._gc_debt_us[channel] += busy
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.MAP_MISS,
                self.sim.now,
                f"ssd.{self.name}",
                channel=channel,
                reads=map_reads,
                writebacks=map_writes,
                busy_us=busy,
            )

    def _on_channel_drain(self, time_key: float) -> None:
        self._drain_events.pop(time_key, None)
        release = self.buffer.release
        for lpns in self._drain_schedule.pop(time_key):
            release(lpns)
        self._admit_pending_writes()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finalize(self, cmd: DeviceCommand, on_complete: CompletionCallback, done: float) -> None:
        cmd.complete_time = done
        self._complete_pop.add(done, cmd, on_complete)

    def _complete(self, cmd: DeviceCommand, on_complete: CompletionCallback) -> None:
        self.outstanding -= 1
        on_complete(cmd)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SsdDevice({self.name}, {self.profile.name}, {self.geometry})"


class NullDevice:
    """A device that completes every command immediately.

    Used for Table 1's maximum-IOPS measurement, where the SmartNIC
    core -- not the storage -- must be the bottleneck.
    """

    def __init__(self, sim: Simulator, name: str = "null0", exported_pages: int = 1 << 30):
        self.sim = sim
        self.name = name
        self.exported_pages = exported_pages
        self.outstanding = 0
        self.stats = DeviceStats()

    def submit(self, cmd: DeviceCommand, on_complete: CompletionCallback) -> None:
        cmd.submit_time = self.sim.now
        cmd.complete_time = self.sim.now
        if cmd.op.is_read:
            self.stats.read_commands += 1
            self.stats.read_bytes += cmd.size_bytes
        elif cmd.op.is_trim:
            self.stats.trim_commands += 1
            self.stats.trimmed_pages += cmd.npages
        else:
            self.stats.write_commands += 1
            self.stats.write_bytes += cmd.size_bytes
        self.outstanding += 1
        self.sim.at_(self.sim.now, self._complete, cmd, on_complete)

    def _complete(self, cmd: DeviceCommand, on_complete: CompletionCallback) -> None:
        self.outstanding -= 1
        on_complete(cmd)

    @property
    def write_amplification(self) -> float:
        return 1.0

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        prefix = prefix or f"ssd.{self.name}"
        registry.gauge(f"{prefix}.read_commands", lambda: self.stats.read_commands)
        registry.gauge(f"{prefix}.write_commands", lambda: self.stats.write_commands)
        registry.gauge(f"{prefix}.trim_commands", lambda: self.stats.trim_commands)
        registry.gauge(f"{prefix}.outstanding", lambda: self.outstanding)

    def reset_time_state(self) -> None:
        self.stats = DeviceStats()
