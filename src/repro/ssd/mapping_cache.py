"""DFTL-style cached mapping table (translation-page granularity).

A page-mapped FTL's full logical-to-physical map does not fit in
controller SRAM on real devices: DFTL keeps the map itself on flash in
*translation pages* and caches the hot subset in a small LRU cache
(the wiscsee simulator calls this the cached mapping table).  A lookup
that misses must first *read* one translation page off NAND; if the
cache is full and the evicted victim page holds updated mappings, the
eviction additionally *writes* the dirty translation page back.  Both
are real NAND operations that the device model charges to channel
time -- the translation-cache thrashing signal that aged multi-tenant
devices exhibit.

The cache is purely a *traffic* model: :class:`~repro.ssd.ftl.Ftl`
stays authoritative for the mapping content (its ``page_map`` list is
the translation table), and the cache only decides whether touching a
mapping costs NAND work.  That separation is what makes the
differential-testing invariant cheap to state: with the whole table
resident the cache can never emit traffic, so device-visible behaviour
is byte-identical to the reference full-map FTL
(``tests/ssd/test_differential.py`` gates exactly that).

Capacity semantics:

* ``capacity_pages=None`` or ``capacity_pages >= total translation
  pages`` -- the table is fully resident (preloaded clean at boot, the
  way a DRAM-backed controller would load it); accesses still run the
  LRU bookkeeping but can never miss.
* smaller values -- a cold LRU cache; conditioning warms it.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Logical map entries packed into one 4 KiB translation page
#: (4-byte physical page numbers).
DEFAULT_ENTRIES_PER_PAGE = 1024

#: Access outcomes (returned by :meth:`MappingCache.access`).
MAP_HIT = 0
#: Miss filled from a free cache slot: one translation-page read.
MAP_MISS = 1
#: Miss that evicted a clean victim: still one read, no writeback.
MAP_MISS_EVICT = 2
#: Miss that evicted a dirty victim: one read plus one writeback
#: program of the victim translation page.
MAP_MISS_WRITEBACK = 3


class MappingCache:
    """LRU cache of translation pages in front of the FTL's map."""

    def __init__(
        self,
        total_entries: int,
        capacity_pages: Optional[int] = None,
        entries_per_page: int = DEFAULT_ENTRIES_PER_PAGE,
    ):
        if total_entries <= 0:
            raise ValueError("total_entries must be positive")
        if entries_per_page <= 0:
            raise ValueError("entries_per_page must be positive")
        if capacity_pages is not None and capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive (or None for resident)")
        self.entries_per_page = entries_per_page
        self.total_pages = -(-total_entries // entries_per_page)  # ceil div
        self.capacity_pages = (
            capacity_pages if capacity_pages is not None else self.total_pages
        )
        #: tpn -> dirty flag; insertion order is LRU order (oldest first).
        self._resident: Dict[int, bool] = {}
        if self.resident_table:
            # Whole table fits: preloaded clean at "boot", like a
            # DRAM-backed map.  Accesses keep the LRU bookkeeping hot
            # but can never generate NAND traffic.
            for tpn in range(self.total_pages):
                self._resident[tpn] = False
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def resident_table(self) -> bool:
        """True when every translation page fits (no traffic possible)."""
        return self.capacity_pages >= self.total_pages

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 1.0

    def translation_page_of(self, lpn: int) -> int:
        return lpn // self.entries_per_page

    # ------------------------------------------------------------------
    # The one operation
    # ------------------------------------------------------------------
    def access(self, lpn: int, dirty: bool) -> int:
        """Touch the translation entry of ``lpn``; return the outcome.

        ``dirty`` marks the translation page as updated (a mapping
        write); a later eviction of that page costs a writeback.
        Returns one of :data:`MAP_HIT`, :data:`MAP_MISS`,
        :data:`MAP_MISS_EVICT`, :data:`MAP_MISS_WRITEBACK`.
        """
        tpn = lpn // self.entries_per_page
        resident = self._resident
        was_dirty = resident.pop(tpn, None)
        if was_dirty is not None:
            # Hit: re-insert at the MRU end, keeping any earlier dirt.
            resident[tpn] = was_dirty or dirty
            self.hits += 1
            return MAP_HIT
        self.misses += 1
        outcome = MAP_MISS
        if len(resident) >= self.capacity_pages:
            victim_tpn = next(iter(resident))
            victim_dirty = resident.pop(victim_tpn)
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
                outcome = MAP_MISS_WRITEBACK
            else:
                outcome = MAP_MISS_EVICT
        resident[tpn] = dirty
        return outcome

    # ------------------------------------------------------------------
    # Measurement and snapshot plumbing
    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        """Zero the hit/miss counters; residency is preserved."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def snapshot(self) -> dict:
        """Residency (in LRU order) plus counters."""
        return {
            "resident": dict(self._resident),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
        }

    def restore(self, snap: dict) -> None:
        self._resident = dict(snap["resident"])
        self.hits = snap["hits"]
        self.misses = snap["misses"]
        self.evictions = snap["evictions"]
        self.writebacks = snap["writebacks"]

    def check_invariants(self) -> None:
        """Residency within capacity and translation-page range."""
        if len(self._resident) > self.capacity_pages:
            raise AssertionError(
                f"cache holds {len(self._resident)} pages, capacity {self.capacity_pages}"
            )
        for tpn in self._resident:
            if not 0 <= tpn < self.total_pages:
                raise AssertionError(f"resident translation page {tpn} out of range")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappingCache({self.resident_pages}/{self.capacity_pages} pages, "
            f"hit_rate={self.hit_rate:.3f})"
        )
