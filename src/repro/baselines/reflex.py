"""ReFlex-style scheduler: static offline-calibrated cost model.

ReFlex (ASPLOS'17) regulates tenants with request costs drawn from an
*offline* device calibration: every IO costs ``pages x unit`` tokens,
writes cost a fixed multiple of reads, and tokens are generated at the
device's calibrated peak rate.  The evaluation's point (Sections 5.2,
5.3) is that a static model cannot track SSD conditions:

* on a *clean* SSD the worst-case write multiple grossly overcharges
  sequential writes, capping write throughput at a fraction of the
  device's real capability (the x6.6 utilisation gap of Figure 6);
* large reads are charged linearly in size even though the device
  serves them disproportionately faster, so 128 KiB streams get the
  same token share as 4 KiB streams (Figure 7a/7d);
* there is no client flow control, so queues (and tail latencies)
  build at the target under consolidation (Figure 8).

Tokens are integrated with a deficit round-robin across tenants, which
is faithful to ReFlex's QoS-aware scheduler shape.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.baselines.base import StorageScheduler
from repro.fabric.request import FabricRequest


class ReflexScheduler(StorageScheduler):
    """Token-paced DRR with a static cost model."""

    name = "reflex"
    submit_overhead_us = 0.10
    complete_overhead_us = 0.04

    def __init__(
        self,
        token_rate_per_us: float = 0.40,
        write_cost_tokens: float = 9.0,
        max_tokens: float = 1024.0,
        quantum_tokens: float = 32.0,
    ):
        """``token_rate_per_us`` is the calibrated device capacity in
        4 KiB-read-equivalents per microsecond (0.40/us = 400 KIOPS,
        the clean-SSD 4 KiB random-read peak).  ``write_cost_tokens``
        is the fixed datasheet-derived write multiple."""
        super().__init__()
        if token_rate_per_us <= 0 or write_cost_tokens < 1 or max_tokens <= 0:
            raise ValueError("invalid ReFlex calibration")
        # The bucket must hold at least one maximum-cost request
        # (128 KiB write at the worst-case multiple) or it deadlocks.
        if max_tokens < 32 * write_cost_tokens:
            raise ValueError("max_tokens below the cost of one 128 KiB write")
        self.token_rate_per_us = token_rate_per_us
        self.write_cost_tokens = write_cost_tokens
        self.max_tokens = max_tokens
        self.quantum_tokens = quantum_tokens
        self.tokens = max_tokens
        self._last_refill = 0.0
        self._queues: Dict[str, Deque[FabricRequest]] = {}
        self._active: Deque[str] = deque()
        self._deficits: Dict[str, float] = {}
        self._wakeup = None

    # ------------------------------------------------------------------
    # Cost model (static, offline)
    # ------------------------------------------------------------------
    def request_cost(self, request: FabricRequest) -> float:
        """Tokens one request consumes under the offline model."""
        per_page = self.write_cost_tokens if request.op.is_write else 1.0
        return per_page * request.npages

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def register_tenant(self, tenant_id: str, weight: float = 1.0) -> None:
        super().register_tenant(tenant_id, weight)
        self._queues.setdefault(tenant_id, deque())
        self._deficits.setdefault(tenant_id, 0.0)

    def unregister_tenant(self, tenant_id: str) -> None:
        queue = self._queues.get(tenant_id)
        if queue:
            raise RuntimeError(f"tenant {tenant_id!r} still has queued IO")
        super().unregister_tenant(tenant_id)
        self._queues.pop(tenant_id, None)
        self._deficits.pop(tenant_id, None)
        if tenant_id in self._active:
            self._active.remove(tenant_id)

    def enqueue(self, request: FabricRequest) -> None:
        queue = self._queues.setdefault(request.tenant_id, deque())
        self._deficits.setdefault(request.tenant_id, 0.0)
        if not queue and request.tenant_id not in self._active:
            self._active.append(request.tenant_id)
        queue.append(request)
        self._pump()

    def notify_completion(self, request: FabricRequest) -> None:
        self._pump()

    # ------------------------------------------------------------------
    # Token-paced DRR
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_refill
        self._last_refill = now
        if elapsed > 0:
            self.tokens = min(self.max_tokens, self.tokens + elapsed * self.token_rate_per_us)

    def _pump(self) -> None:
        self._refill()
        active = self._active
        while active:
            tenant_id = active[0]
            queue = self._queues[tenant_id]
            if not queue:
                active.popleft()
                continue
            request = queue[0]
            cost = self.request_cost(request)
            if self._deficits[tenant_id] < cost:
                self._deficits[tenant_id] += self.quantum_tokens
                active.rotate(-1)
                continue
            if self.tokens < cost:
                self._schedule_wakeup(cost - self.tokens)
                return
            queue.popleft()
            self.tokens -= cost
            self._deficits[tenant_id] -= cost
            self.submit_to_device(request)

    def _schedule_wakeup(self, token_deficit: float) -> None:
        delay = min(max(token_deficit / self.token_rate_per_us, 1.0), 50_000.0)
        if self._wakeup is not None:
            self._wakeup.cancel()
        self._wakeup = self.sim.schedule(delay, self._on_wakeup)

    def _on_wakeup(self) -> None:
        self._wakeup = None
        self._pump()
