"""Vanilla SPDK-style target: no isolation, pass-through submission.

This is the "vanilla" configuration of the evaluation (Table 1,
Figure 13) and the substrate for Parda, whose mechanism is entirely
client-side.  Every request goes straight to the device in arrival
order, so tenants interfere exactly as in Section 2.3's motivating
experiments.
"""

from __future__ import annotations

from repro.baselines.base import StorageScheduler
from repro.fabric.request import FabricRequest


class FifoScheduler(StorageScheduler):
    """Submit every request to the SSD immediately, in arrival order."""

    name = "vanilla"
    submit_overhead_us = 0.0
    complete_overhead_us = 0.0
    # Pure pass-through: the pipeline may fuse enqueue + device submit.
    passthrough_enqueue = True

    def enqueue(self, request: FabricRequest) -> None:
        self.submit_to_device(request)
