"""Comparison schemes (paper Section 5.1).

All four target-side scheduling policies share the interface in
:mod:`repro.baselines.base` and plug into the per-SSD pipeline:

* :class:`~repro.baselines.fifo.FifoScheduler` -- vanilla SPDK target:
  pass-through, no isolation (the "vanilla" rows of the evaluation).
* :class:`~repro.baselines.reflex.ReflexScheduler` -- ReFlex's request
  cost model (static, offline-calibrated) with token-paced round-robin.
* :class:`~repro.baselines.flashfq.FlashFqScheduler` -- FlashFQ's
  start-time fair queueing with a linear cost model and throttled
  dispatch.
* Parda has no target-side component: it is the vanilla target plus
  :class:`~repro.fabric.policies.PardaClientPolicy` at the client.

Gimbal itself lives in :mod:`repro.core`.
"""

from repro.baselines.base import StorageScheduler
from repro.baselines.fifo import FifoScheduler
from repro.baselines.flashfq import FlashFqScheduler
from repro.baselines.reflex import ReflexScheduler

__all__ = [
    "StorageScheduler",
    "FifoScheduler",
    "ReflexScheduler",
    "FlashFqScheduler",
]
