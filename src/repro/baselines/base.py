"""The storage-scheduler interface shared by Gimbal and the baselines.

A scheduler instance is owned by exactly one per-SSD pipeline
(:class:`repro.fabric.pipeline.SsdPipeline`) -- the paper's
shared-nothing design, one pipeline + one core per SSD.  The pipeline
calls down with ingress requests and device completions; the scheduler
calls back up through :meth:`SsdPipeline.device_submit` whenever its
policy admits an IO to the device.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Optional

from repro.fabric.request import FabricRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fabric.pipeline import SsdPipeline


class StorageScheduler(abc.ABC):
    """Target-side IO scheduling policy for one SSD."""

    #: Human-readable scheme name (used in experiment reports).
    name = "abstract"
    #: Extra core time this policy spends on the submission path
    #: (Table 1 measures exactly this against vanilla SPDK).
    submit_overhead_us = 0.0
    #: Extra core time on the completion path.
    complete_overhead_us = 0.0
    #: A scheduler whose :meth:`enqueue` unconditionally submits the
    #: request to the device (no queueing, no reordering, no state)
    #: declares it here; the pipeline then fuses the enqueue and the
    #: device submission into one event handler.  A subclass that
    #: overrides :meth:`enqueue` with real policy must leave this False.
    passthrough_enqueue = False

    def __init__(self) -> None:
        self.pipeline: Optional["SsdPipeline"] = None
        self.tenant_weights: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Pipeline-facing lifecycle
    # ------------------------------------------------------------------
    def attach(self, pipeline: "SsdPipeline") -> None:
        """Bind to the owning pipeline (called once, by the pipeline)."""
        if self.pipeline is not None:
            raise RuntimeError("scheduler already attached to a pipeline")
        self.pipeline = pipeline

    def register_tenant(self, tenant_id: str, weight: float = 1.0) -> None:
        """Declare a tenant before its first IO arrives."""
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        self.tenant_weights[tenant_id] = weight

    def unregister_tenant(self, tenant_id: str) -> None:
        """Detach a tenant (its IOs must have drained).

        Subclasses drop any per-tenant state and rebalance shares.
        """
        self.tenant_weights.pop(tenant_id, None)

    @abc.abstractmethod
    def enqueue(self, request: FabricRequest) -> None:
        """Accept one ingress request (data already fetched for writes)."""

    def notify_completion(self, request: FabricRequest) -> None:
        """Observe a device completion (before the response is sent)."""

    # ------------------------------------------------------------------
    # Flow-control and visibility hooks (optional)
    # ------------------------------------------------------------------
    def credit_for(self, tenant_id: str) -> int:
        """Credit grant piggybacked on this tenant's completions.

        0 means the scheme exposes no credit information (clients then
        self-limit only by their queue depth).
        """
        return 0

    def virtual_view(self) -> Optional[dict]:
        """Per-SSD headroom snapshot for clients, or None."""
        return None

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    @property
    def sim(self):
        if self.pipeline is None:
            raise RuntimeError("scheduler is not attached")
        return self.pipeline.sim

    def submit_to_device(self, request: FabricRequest) -> None:
        if self.pipeline is None:
            raise RuntimeError("scheduler is not attached")
        self.pipeline.device_submit(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(tenants={len(self.tenant_weights)})"
