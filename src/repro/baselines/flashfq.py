"""FlashFQ-style scheduler: start-time fair queueing with a linear model.

FlashFQ (USENIX ATC'13) assigns each request start/finish tags from a
*linear* device-time model (``base + per_page x pages``) and dispatches
the backlogged request with the minimum start tag, throttling the
number of IOs outstanding at the device (SFQ(D)).  Virtual time
advances to the start tag of each dispatched request.

The evaluation's point: the linear model is static and symmetric in
IO type, so read and write streams receive equal tag progress even
when writes are many times more expensive inside the device
(Figure 7b/7e), and the work-conserving dispatcher issues as much as
the throttle allows with no regard for device latency (Figures 6b, 8).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Tuple

from repro.baselines.base import StorageScheduler
from repro.fabric.request import FabricRequest


class FlashFqScheduler(StorageScheduler):
    """SFQ(D) with a calibrated linear cost model."""

    name = "flashfq"
    submit_overhead_us = 0.12
    complete_overhead_us = 0.05

    def __init__(
        self,
        depth: int = 64,
        cost_base_us: float = 25.0,
        cost_per_page_us: float = 3.0,
    ):
        """``depth`` is the dispatch throttle (outstanding IOs at the
        SSD); the cost coefficients are the offline-fitted linear
        service-time model, identical for reads and writes as in
        FlashFQ's fitting on flash devices."""
        super().__init__()
        if depth <= 0 or cost_base_us < 0 or cost_per_page_us < 0:
            raise ValueError("invalid FlashFQ parameters")
        self.depth = depth
        self.cost_base_us = cost_base_us
        self.cost_per_page_us = cost_per_page_us
        self.virtual_time = 0.0
        self.outstanding = 0
        self._last_finish: Dict[str, float] = {}
        self._heap: List[Tuple[float, int, FabricRequest]] = []
        self._tiebreak = itertools.count()

    def request_cost(self, request: FabricRequest) -> float:
        """Modelled service time (identical for reads and writes)."""
        return self.cost_base_us + self.cost_per_page_us * request.npages

    def unregister_tenant(self, tenant_id: str) -> None:
        super().unregister_tenant(tenant_id)
        self._last_finish.pop(tenant_id, None)

    def enqueue(self, request: FabricRequest) -> None:
        weight = self.tenant_weights.get(request.tenant_id, 1.0)
        start = max(self.virtual_time, self._last_finish.get(request.tenant_id, 0.0))
        finish = start + self.request_cost(request) / weight
        self._last_finish[request.tenant_id] = finish
        heapq.heappush(self._heap, (start, next(self._tiebreak), request))
        self._dispatch()

    def notify_completion(self, request: FabricRequest) -> None:
        self.outstanding -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        while self._heap and self.outstanding < self.depth:
            start, _, request = heapq.heappop(self._heap)
            self.virtual_time = max(self.virtual_time, start)
            self.outstanding += 1
            self.submit_to_device(request)
