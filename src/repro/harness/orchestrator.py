"""Suite-scale orchestration: one worker pool for every experiment.

Regenerating the paper's evaluation means running ~20 experiment
drivers, each of which expands into an independent *sweep* of
simulation points.  Run one driver at a time and the machine spends
most of its life underused: a fresh worker pool is stood up per sweep,
points dispatch in declaration order so one expensive straggler
serializes the tail, and cores sit idle between experiments.  This
module schedules the whole suite as one flat pool of points instead:

* **Persistent pool** -- a single :class:`~repro.harness.parallel.WorkerPool`
  is created once per suite run (workers warmed with the experiment
  imports) and shared by every sweep, so worker spawn and ``repro.*``
  import costs are paid once, not once per figure.
* **Cost-model scheduling** -- each point's runtime is predicted by a
  :class:`CostModel` fed from the result cache's journaled per-point
  elapsed times (falling back to a per-experiment prior, then a flat
  default), and ready points dispatch longest-processing-time-first.
  Cheap points are chunked into batches so a worker round-trip
  amortizes its IPC over several points.
* **Streaming execution** -- experiments are expanded one after
  another while the pool is already computing earlier ones (cache
  lookups for experiment *k+1* overlap the simulation of experiment
  *k*), completions are consumed via
  :func:`concurrent.futures.as_completed`, and each experiment is
  finalized the moment its last point lands.

Scheduling never changes results: every point is keyed by
``(experiment, index)`` and each experiment's results are merged in
declared point order, so an orchestrated suite is byte-identical to
running the same drivers serially (``benchmarks/perf/test_suite_perf.py``
gates exactly that, plus the wall-clock win).

Drivers participate by exposing the declarative protocol::

    def sweep(**kwargs) -> Sweep        # declare the points
    def finalize(results, **kwargs)     # merge ordered results
    def run(..., jobs=1, cache=None, pool=None)  # == finalize(sweep().run())

``python -m repro suite`` is the CLI entry point.
"""

from __future__ import annotations

import importlib
import inspect
import json
import os
import time
from concurrent.futures import as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.harness.cache import CacheSpec, ResultCache, Uncacheable, point_fingerprint, resolve_cache
from repro.harness.parallel import SweepPoint, WorkerPool, _clamp_jobs, _execute_point_timed
from repro.obs import bump
from repro.sim.shard import EFFECTIVE_JOBS_ENV


@contextmanager
def _advertise_jobs(effective_jobs: int):
    """Expose the suite's job budget to points executed in-process.

    Worker processes learn the budget from their pool initializer;
    points running in the orchestrating process itself (serial paths)
    read it from the environment, so a sharded point under ``repro
    suite`` clamps its shard fan-out rather than multiplying the
    suite's parallelism.
    """
    previous = os.environ.get(EFFECTIVE_JOBS_ENV)
    os.environ[EFFECTIVE_JOBS_ENV] = str(max(1, effective_jobs))
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(EFFECTIVE_JOBS_ENV, None)
        else:
            os.environ[EFFECTIVE_JOBS_ENV] = previous

#: Name of the per-cache-directory suite journal (one JSON line per
#: orchestrated suite run; distinct from the per-sweep ``journal.jsonl``).
SUITE_JOURNAL_NAME = "suite.jsonl"

#: Points predicted to cost no more than this many seconds are batched.
DEFAULT_BATCH_COST_S = 0.25

#: Upper bound on how many cheap points share one worker round-trip.
DEFAULT_BATCH_MAX = 8

#: Cost assumed for a point with no cache history and no prior.
DEFAULT_POINT_COST_S = 2.0


# ----------------------------------------------------------------------
# Experiment registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment in a suite: a driver module plus its kwargs."""

    name: str
    module_path: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def load(self):
        return importlib.import_module(self.module_path)


def suite_experiments(
    quick: bool = True, names: Optional[Sequence[str]] = None
) -> List[ExperimentSpec]:
    """The full evaluation suite, straight from the CLI registry.

    ``quick`` selects each experiment's scaled-down kwargs (the same
    ones ``repro run --quick`` uses); ``names`` restricts to a subset,
    preserving registry order.
    """
    from repro.cli import EXPERIMENTS, _resolve_experiment

    if names is None:
        selected = list(EXPERIMENTS)
    else:
        wanted = set()
        for name in names:
            resolved = _resolve_experiment(name)
            if resolved is None:
                raise KeyError(f"unknown experiment {name!r}")
            wanted.add(resolved)
        selected = [name for name in EXPERIMENTS if name in wanted]
    specs = []
    for name in selected:
        module_path, quick_kwargs = EXPERIMENTS[name]
        specs.append(
            ExperimentSpec(
                name=name,
                module_path=module_path,
                kwargs=dict(quick_kwargs) if quick else {},
            )
        )
    return specs


def _accepted_kwargs(fn: Callable[..., Any], kwargs: Mapping[str, Any]) -> Dict[str, Any]:
    """Filter ``kwargs`` down to the parameters ``fn`` accepts.

    Driver ``sweep``/``finalize`` signatures list only the knobs they
    use; the suite hands every driver the same registry kwargs and
    lets each take what it understands (a ``**kwargs`` catch-all
    accepts everything).
    """
    params = inspect.signature(fn).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return dict(kwargs)
    return {key: value for key, value in kwargs.items() if key in params}


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class CostModel:
    """Predict a sweep point's runtime from journaled cache timings.

    Every cache entry records the seconds its point took to compute
    (``elapsed_s``); that is exactly the signal LPT scheduling needs.
    Prediction degrades through five tiers:

    1. exact content-address match (same fn, kwargs and code) -- the
       recorded time itself;
    2. a per-function surrogate model
       (:class:`~repro.harness.surrogate.SurrogateSet`) trained on the
       cache journal's per-point records, which interpolates runtime
       across *parameter values* (a qd=64 point near journaled qd=48
       and qd=96 points gets a kwargs-aware estimate, not the fn-wide
       mean);
    3. mean recorded time of the same point function;
    4. a caller-supplied per-experiment prior;
    5. a flat default.

    Built defensively: an absent, empty, or corrupt cache or journal
    never raises here -- it just pushes predictions down the tiers.
    ``tier_hits`` counts which tier answered each prediction.
    """

    #: Fewer journal records than this and the surrogate tier is skipped
    #: for that function (too little signal to beat the per-fn mean).
    SURROGATE_MIN_RECORDS = 8

    #: Newest journal records kept per function when training.
    SURROGATE_MAX_RECORDS = 512

    def __init__(
        self,
        by_fingerprint: Optional[Dict[str, float]] = None,
        by_fn: Optional[Dict[str, float]] = None,
        priors: Optional[Dict[str, float]] = None,
        default_s: float = DEFAULT_POINT_COST_S,
        store: Optional[ResultCache] = None,
        surrogates: Optional[Dict[str, Any]] = None,
    ):
        self.by_fingerprint = by_fingerprint or {}
        self.by_fn = by_fn or {}
        self.priors = priors or {}
        self.default_s = default_s
        self._store = store
        self.surrogates = surrogates or {}
        self.tier_hits = {
            "exact": 0, "surrogate": 0, "by_fn": 0, "prior": 0, "default": 0,
        }

    @classmethod
    def from_cache(
        cls,
        store: Optional[ResultCache],
        priors: Optional[Dict[str, float]] = None,
        default_s: float = DEFAULT_POINT_COST_S,
        surrogate: bool = True,
    ) -> "CostModel":
        by_fingerprint: Dict[str, float] = {}
        sums: Dict[str, Tuple[float, int]] = {}
        if store is not None:
            try:
                entries = store.entries()
            except Exception:
                entries = []
            for entry in entries:
                elapsed = entry.get("elapsed_s")
                if not isinstance(elapsed, (int, float)) or elapsed < 0:
                    continue
                by_fingerprint[entry["fingerprint"]] = float(elapsed)
                total, count = sums.get(entry.get("fn", "?"), (0.0, 0))
                sums[entry.get("fn", "?")] = (total + float(elapsed), count + 1)
        by_fn = {fn: total / count for fn, (total, count) in sums.items() if count}
        surrogates = cls._train_surrogates(store) if surrogate else {}
        return cls(
            by_fingerprint=by_fingerprint,
            by_fn=by_fn,
            priors=priors,
            default_s=default_s,
            store=store,
            surrogates=surrogates,
        )

    @staticmethod
    def _train_surrogates(store: Optional[ResultCache]) -> Dict[str, Any]:
        """Per-fn elapsed_s surrogates from journal point records.

        Never raises: missing numpy falls back to the pure-Python
        k-NN inside :class:`SurrogateSet`, and any journal corruption
        or training failure just drops that function back to tier 3.
        """
        if store is None:
            return {}
        try:
            from repro.harness.surrogate import SurrogateSet, journal_records

            per_fn: Dict[str, List[Tuple[Dict[str, Any], Dict[str, float]]]] = {}
            for record in journal_records(store):
                fn = record.get("fn")
                elapsed = record.get("elapsed_s")
                if not isinstance(fn, str) or not isinstance(elapsed, (int, float)):
                    continue
                if elapsed < 0:
                    continue
                per_fn.setdefault(fn, []).append(
                    (record["kwargs"], {"elapsed_s": float(elapsed)})
                )
        except Exception:
            return {}
        surrogates: Dict[str, Any] = {}
        for fn, records in per_fn.items():
            if len(records) < CostModel.SURROGATE_MIN_RECORDS:
                continue
            try:
                surrogates[fn] = SurrogateSet.fit(
                    records[-CostModel.SURROGATE_MAX_RECORDS:],
                    targets=("elapsed_s",),
                    seed=0,
                )
            except Exception:
                continue
        return surrogates

    def predict(self, point: SweepPoint, experiment: Optional[str] = None) -> float:
        """Predicted seconds for ``point`` (never raises)."""
        if self.by_fingerprint and self._store is not None:
            try:
                fingerprint, _, _ = point_fingerprint(
                    point.fn,
                    point.kwargs,
                    self._store.schema_version,
                    roots=self._store.roots,
                )
            except Uncacheable:
                fingerprint = None
            if fingerprint is not None:
                exact = self.by_fingerprint.get(fingerprint)
                if exact is not None:
                    self.tier_hits["exact"] += 1
                    return exact
        fn_name = f"{getattr(point.fn, '__module__', '?')}:{getattr(point.fn, '__qualname__', '?')}"
        surrogate = self.surrogates.get(fn_name)
        if surrogate is not None:
            try:
                means, _ = surrogate.predict([point.kwargs])["elapsed_s"]
                predicted = float(means[0])
                if predicted == predicted and predicted != float("inf"):
                    self.tier_hits["surrogate"] += 1
                    return max(0.0, predicted)
            except Exception:
                pass
        by_fn = self.by_fn.get(fn_name)
        if by_fn is not None:
            self.tier_hits["by_fn"] += 1
            return by_fn
        if experiment is not None:
            prior = self.priors.get(experiment)
            if prior is not None:
                self.tier_hits["prior"] += 1
                return prior
        self.tier_hits["default"] += 1
        return self.default_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostModel(exact={len(self.by_fingerprint)}, fns={len(self.by_fn)}, "
            f"surrogates={len(self.surrogates)}, priors={len(self.priors)}, "
            f"default={self.default_s}s)"
        )


# ----------------------------------------------------------------------
# Dispatch planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Task:
    """One schedulable point: (experiment ordinal, point, predicted cost)."""

    exp: int
    point: SweepPoint
    cost: float


def plan_dispatch(
    tasks: Sequence[_Task],
    batch_cost_s: float = DEFAULT_BATCH_COST_S,
    batch_max: int = DEFAULT_BATCH_MAX,
) -> List[List[_Task]]:
    """Order tasks LPT and chunk the cheap ones into batches.

    Returns dispatch *units* (each a list of tasks executed by one
    worker round-trip), sorted most-expensive-first.  Expensive points
    stay singletons; points predicted under ``batch_cost_s`` are
    grouped -- still in LPT order -- into units of up to ``batch_max``
    so the per-task IPC overhead amortizes.  The plan is a pure
    function of (tasks, costs): ties break on declaration order, so
    planning is deterministic even though execution is not ordered.
    """
    ordered = sorted(tasks, key=lambda task: (-task.cost, task.exp, task.point.index))
    units: List[List[_Task]] = []
    batch: List[_Task] = []
    for task in ordered:
        if task.cost > batch_cost_s or batch_max <= 1:
            units.append([task])
            continue
        batch.append(task)
        if len(batch) >= batch_max:
            units.append(batch)
            batch = []
    if batch:
        units.append(batch)
    units.sort(key=lambda unit: (-sum(t.cost for t in unit), unit[0].exp, unit[0].point.index))
    return units


def _execute_unit(tasks: List[Tuple[int, SweepPoint]]) -> List[Tuple[int, int, float, Any]]:
    """Worker-side trampoline: run one dispatch unit's points in order.

    Module-level so units pickle by reference; returns per-point
    ``(experiment ordinal, point index, elapsed seconds, value)`` so
    the parent can merge and write back the cache without ambiguity.
    """
    out: List[Tuple[int, int, float, Any]] = []
    for exp, point in tasks:
        index, elapsed, value = _execute_point_timed(point)
        out.append((exp, index, elapsed, value))
    return out


# ----------------------------------------------------------------------
# The suite runner
# ----------------------------------------------------------------------
@dataclass
class ExperimentRun:
    """Outcome of one experiment inside a suite run."""

    name: str
    result: Any
    points: int
    cache_hits: int
    computed: int
    wall_s: float


@dataclass
class SuiteResult:
    """Everything a suite run produced, in declared experiment order."""

    experiments: List[ExperimentRun]
    wall_s: float
    jobs: int
    points_total: int
    cache_hits: int
    batches: int
    stolen_idle_s: float

    @property
    def results(self) -> Dict[str, Any]:
        return {run.name: run.result for run in self.experiments}

    def report(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 3),
            "experiments": len(self.experiments),
            "points_total": self.points_total,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "stolen_idle_s": round(self.stolen_idle_s, 3),
            "per_experiment": [
                {
                    "name": run.name,
                    "points": run.points,
                    "cache_hits": run.cache_hits,
                    "computed": run.computed,
                    "wall_s": round(run.wall_s, 3),
                }
                for run in self.experiments
            ],
        }


class _ExpState:
    """Parent-side bookkeeping for one experiment's in-flight points."""

    __slots__ = (
        "spec", "module", "sweep", "results", "points_by_index",
        "pending", "hits", "computed", "started_at", "finished_at", "result",
    )

    def __init__(self, spec: ExperimentSpec, module, sweep):
        self.spec = spec
        self.module = module
        self.sweep = sweep
        self.results: Dict[int, Any] = {}
        self.points_by_index = {point.index: point for point in sweep.points}
        self.pending = 0
        self.hits = 0
        self.computed = 0
        self.started_at = time.perf_counter()
        self.finished_at: Optional[float] = None
        self.result: Any = None

    def finalize(self) -> None:
        ordered = [self.results[point.index] for point in self.sweep.points]
        finalize = getattr(self.module, "finalize")
        self.result = finalize(ordered, **_accepted_kwargs(finalize, self.spec.kwargs))
        self.finished_at = time.perf_counter()

    @property
    def done(self) -> bool:
        return self.finished_at is not None


def run_suite(
    specs: Sequence[ExperimentSpec],
    jobs: Optional[int] = None,
    cache: CacheSpec = None,
    pool: Optional[WorkerPool] = None,
    cost_model: Optional[CostModel] = None,
    priors: Optional[Dict[str, float]] = None,
    batch_cost_s: float = DEFAULT_BATCH_COST_S,
    batch_max: int = DEFAULT_BATCH_MAX,
    progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> SuiteResult:
    """Run every experiment's sweep points on one shared worker pool.

    ``jobs`` defaults to the machine's CPU count (``jobs <= 1`` runs
    in-process, still cost-ordered, still streaming).  ``pool`` lends
    an existing :class:`WorkerPool`; otherwise one is created for the
    run and torn down afterwards.  ``cache`` follows
    :func:`repro.harness.parallel.run_sweep` semantics -- lookups
    happen before dispatch, computed points are written back, and the
    per-experiment merge respects declared point order, so results are
    byte-identical to the serial path.

    ``progress`` (when given) receives ``(event, payload)`` pairs:
    ``point`` per completed point, ``experiment`` per finalized
    experiment, ``suite`` once at the end.
    """
    specs = list(specs)
    started = time.perf_counter()
    store = resolve_cache(cache)
    stats_before = store.stats.snapshot() if store is not None else None
    model = cost_model or CostModel.from_cache(store, priors=priors)

    own_pool = False
    if pool is None:
        effective_jobs = _clamp_jobs(jobs if jobs is not None and jobs > 0 else 0x7FFFFFFF)
        if effective_jobs > 1:
            pool = WorkerPool(effective_jobs)
            own_pool = True
    else:
        effective_jobs = pool.jobs
        if effective_jobs <= 1:
            # A one-worker pool buys no parallelism, only per-unit
            # pickling and IPC round-trips.  Take the in-process path
            # instead (the caller's pool is untouched -- its lazy
            # executor is never spawned by us and never closed).
            pool = None

    states: List[_ExpState] = []
    futures: Dict[Any, List[Tuple[int, int]]] = {}
    serial_units: List[List[_Task]] = []
    points_total = 0
    cache_hits = 0
    batches = 0
    stolen_idle_s = 0.0

    def emit(event: str, payload: Dict[str, Any]) -> None:
        if progress is not None:
            progress(event, payload)

    def account(state: _ExpState, exp_ord: int, index: int, elapsed: float, value: Any) -> None:
        nonlocal stolen_idle_s
        point = state.points_by_index[index]
        if store is not None:
            value = store.store(point, value, elapsed)
        state.results[index] = value
        state.pending -= 1
        state.computed += 1
        bump("suite.points_done")
        # Work on a later experiment while an earlier one is still in
        # flight is time the serial-experiment baseline would have
        # spent with those cores idle.
        if any(not earlier.done for earlier in states[:exp_ord]):
            stolen_idle_s += elapsed
        emit(
            "point",
            {
                "experiment": state.spec.name,
                "label": point.label,
                "elapsed_s": elapsed,
                "remaining": state.pending,
            },
        )
        if state.pending == 0:
            state.finalize()
            bump("suite.experiments_done")
            emit(
                "experiment",
                {
                    "experiment": state.spec.name,
                    "points": len(state.points_by_index),
                    "cache_hits": state.hits,
                    "wall_s": state.finished_at - state.started_at,
                },
            )

    try:
        # -- expansion, cache lookup, dispatch (streaming) -------------
        for exp_ord, spec in enumerate(specs):
            module = spec.load()
            sweep_fn = getattr(module, "sweep", None)
            if sweep_fn is None:
                raise TypeError(
                    f"experiment {spec.name!r} ({spec.module_path}) does not expose "
                    "the declarative sweep()/finalize() protocol"
                )
            sweep = sweep_fn(**_accepted_kwargs(sweep_fn, spec.kwargs))
            state = _ExpState(spec, module, sweep)
            states.append(state)
            tasks: List[_Task] = []
            for point in sweep.points:
                points_total += 1
                if store is not None:
                    hit, value = store.lookup(point)
                    if hit:
                        state.results[point.index] = value
                        state.hits += 1
                        cache_hits += 1
                        bump("suite.cache_hits")
                        bump("suite.points_done")
                        continue
                tasks.append(_Task(exp_ord, point, model.predict(point, spec.name)))
            state.pending = len(tasks)
            if not tasks:
                state.finalize()
                emit(
                    "experiment",
                    {
                        "experiment": spec.name,
                        "points": len(state.points_by_index),
                        "cache_hits": state.hits,
                        "wall_s": state.finished_at - state.started_at,
                    },
                )
                continue
            units = plan_dispatch(tasks, batch_cost_s=batch_cost_s, batch_max=batch_max)
            batches += sum(1 for unit in units if len(unit) > 1)
            if pool is not None:
                # Submitting is non-blocking, so expanding and looking
                # up experiment k+1 overlaps computing experiment k.
                for unit in units:
                    payload = [(task.exp, task.point) for task in unit]
                    future = pool.submit(_execute_unit, payload)
                    futures[future] = [(task.exp, task.point.index) for task in unit]
            else:
                serial_units.extend(units)

        bump("suite.points_total", points_total)

        # -- consumption -----------------------------------------------
        if pool is not None:
            try:
                for future in as_completed(futures):
                    for exp_ord, index, elapsed, value in future.result():
                        account(states[exp_ord], exp_ord, index, elapsed, value)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        else:
            with _advertise_jobs(effective_jobs):
                for unit in serial_units:
                    for exp_ord, point in ((task.exp, task.point) for task in unit):
                        index, elapsed, value = _execute_point_timed(point)
                        account(states[exp_ord], exp_ord, index, elapsed, value)
    finally:
        if own_pool and pool is not None:
            pool.close(cancel_pending=True)

    wall_s = time.perf_counter() - started
    bump("suite.stolen_idle_sec", stolen_idle_s)
    result = SuiteResult(
        experiments=[
            ExperimentRun(
                name=state.spec.name,
                result=state.result,
                points=len(state.points_by_index),
                cache_hits=state.hits,
                computed=state.computed,
                wall_s=(state.finished_at or started) - state.started_at,
            )
            for state in states
        ],
        wall_s=wall_s,
        jobs=effective_jobs,
        points_total=points_total,
        cache_hits=cache_hits,
        batches=batches,
        stolen_idle_s=stolen_idle_s,
    )
    emit("suite", result.report())
    _journal_suite(store, stats_before, result)
    return result


def _journal_suite(
    store: Optional[ResultCache],
    stats_before: Optional[Dict[str, Any]],
    result: SuiteResult,
) -> None:
    """Append one line to the cache directory's suite journal."""
    if store is None:
        return
    record = {"at": round(time.time(), 3)}
    record.update(result.report())
    if stats_before is not None:
        record["cache"] = store.stats.delta_since(stats_before)
    try:
        store.root.mkdir(parents=True, exist_ok=True)
        with open(store.root / SUITE_JOURNAL_NAME, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError:
        pass


def run_suite_serial(
    specs: Sequence[ExperimentSpec],
    jobs: int = 1,
    cache: CacheSpec = None,
) -> Dict[str, Any]:
    """The pre-orchestrator baseline: experiments one at a time.

    Each driver's ``run()`` executes to completion (fanning its own
    points across ``jobs`` workers with a per-sweep executor) before
    the next driver starts.  This is both the reference the perf gate
    compares against and the identity oracle for CI: orchestrated and
    serial suites must produce equal per-experiment results.
    """
    results: Dict[str, Any] = {}
    with _advertise_jobs(jobs):
        for spec in specs:
            module = spec.load()
            run_fn = module.run
            kwargs = _accepted_kwargs(run_fn, spec.kwargs)
            params = inspect.signature(run_fn).parameters
            if "jobs" in params:
                kwargs["jobs"] = jobs
            if "cache" in params:
                kwargs["cache"] = cache
            results[spec.name] = run_fn(**kwargs)
    return results
