"""Multi-JBOF cluster for the RocksDB case study (Sections 4.3, 5.6).

Builds the paper's application testbed: several SmartNIC JBOFs, a
shared rack-level blob allocator, and N DB instances, each an LSM tree
over a replicated blobstore with per-(instance, SSD) tenant sessions.

Three client-side switches reproduce Figure 13's ablation:

* ``flow_control`` -- sessions use the credit policy (the IO rate
  limiter); off = unlimited submission;
* ``load_balance`` -- reads steered to the least-loaded replica;
* replication itself is always on (fault tolerance), as in the paper.

Beyond the static figure-13 shape, the cluster supports *tenant
churn* at rack scale: instances can arrive mid-run
(:meth:`KvCluster.add_instance` inside a running simulation), depart
gracefully (:meth:`KvCluster.depart_instance` -- stop the client,
wait for background LSM work and in-flight IO to drain, delete every
file, hand all mega blobs back to the rack allocator, disconnect the
sessions), and a whole :class:`~repro.workloads.population.TenantSpec`
schedule can be executed end to end with
:meth:`KvCluster.run_population`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.fabric import (
    CreditClientPolicy,
    Network,
    NvmeOfInitiator,
    NvmeOfTarget,
    PardaClientPolicy,
    UnlimitedClientPolicy,
)
from repro.fabric.boundary import (
    CoordinatorFabric,
    JbofShardHost,
    fabric_lookahead_us,
)
from repro.sim.engine import KERNEL_BACKEND_ENV
from repro.sim.shard import (
    ShardExecutor,
    ShardKernel,
    ShardPlan,
    plan_shards,
)
from repro.harness.testbed import SCHEMES
from repro.kv import (
    Blobstore,
    GlobalBlobAllocator,
    LocalBlobAllocator,
    LsmConfig,
    LsmTree,
    RemoteBackend,
    YcsbRunner,
)
from repro.sim import RngRegistry, make_simulator
from repro.ssd import SsdDevice, SsdGeometry, precondition_clean, precondition_fragmented
from repro.workloads.patterns import AddressRegion
from repro.workloads.population import TenantSpec
from repro.workloads.ycsb import YCSB_WORKLOADS

from repro.baselines import FifoScheduler, FlashFqScheduler, ReflexScheduler
from repro.core import GimbalScheduler


@dataclass
class KvClusterConfig:
    """Cluster shape and scheme selection."""

    __test__ = False

    scheme: str = "gimbal"
    condition: str = "fragmented"
    num_jbofs: int = 3
    ssds_per_jbof: int = 4
    geometry: SsdGeometry = field(default_factory=SsdGeometry)
    #: Client-side credit flow control (Figure 13's "+FC").
    flow_control: Optional[bool] = None  # None = scheme default
    #: Read load balancing across replicas (Figure 13's "+LB").
    load_balance: bool = True
    mega_pages: int = 2048
    micro_pages: int = 64
    lsm: LsmConfig = field(default_factory=LsmConfig)
    #: Departure-protocol polling interval (simulated microseconds).
    depart_poll_us: float = 50.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.num_jbofs <= 0 or self.ssds_per_jbof <= 0:
            raise ValueError("cluster must have at least one SSD")
        if self.depart_poll_us <= 0:
            raise ValueError("departure poll interval must be positive")


def _scheduler_factory_for(scheme: str):
    if scheme == "gimbal":
        return GimbalScheduler
    if scheme == "reflex":
        return ReflexScheduler
    if scheme == "flashfq":
        return FlashFqScheduler
    return FifoScheduler


def build_jbof_shard(spec: Dict[str, object]) -> ShardKernel:
    """Build one JBOF shard: its own simulator, network, targets.

    Module-level and driven by a plain-dict spec so it pickles into a
    shard worker process; the inline (single-process) execution path
    calls it directly, which is what makes the two byte-identical.
    """
    config: KvClusterConfig = spec["config"]
    sim = make_simulator(spec.get("kernel_backend"))
    network = Network(sim)
    factory = _scheduler_factory_for(config.scheme)
    targets: Dict[str, NvmeOfTarget] = {}
    for jbof_index in spec["jbof_indices"]:
        devices: Dict[str, SsdDevice] = {}
        for ssd_index in range(config.ssds_per_jbof):
            device = SsdDevice(
                sim, geometry=config.geometry, name=f"ssd{ssd_index}"
            )
            if config.condition == "clean":
                precondition_clean(device)
            elif config.condition == "fragmented":
                precondition_fragmented(device)
            devices[f"ssd{ssd_index}"] = device
        targets[f"jbof{jbof_index}"] = NvmeOfTarget(
            sim,
            network,
            f"jbof{jbof_index}",
            devices,
            scheduler_factory=factory,
        )
    host = JbofShardHost(sim, network, targets)
    kernel = ShardKernel(
        spec["shard_id"],
        sim,
        host.handle_message,
        spec["lookahead_us"],
        probe=bool(spec.get("probe", False)),
    )
    host.bind_kernel(kernel)
    return kernel


@dataclass
class KvInstance:
    """Everything one DB instance owns inside the cluster."""

    name: str
    initiator: NvmeOfInitiator
    backends: Dict[str, RemoteBackend]
    allocator: LocalBlobAllocator
    store: Blobstore
    tree: LsmTree
    runner: YcsbRunner
    arrived_us: float
    departing: bool = False

    @property
    def outstanding(self) -> int:
        return sum(backend.outstanding for backend in self.backends.values())


class KvCluster:
    """The rack: JBOF targets plus DB instances."""

    __test__ = False

    def __init__(
        self,
        config: KvClusterConfig,
        shards: Optional[int] = None,
        shard_mode: str = "auto",
        shard_probes: bool = False,
    ):
        self.config = config
        self.sim = make_simulator()
        self.rngs = RngRegistry(config.seed)
        self.network = Network(self.sim)
        self.targets: List[NvmeOfTarget] = []
        #: backend name ("jbofX/ssdY") -> all RemoteBackends touching it.
        self._backends_by_ssd: Dict[str, List[RemoteBackend]] = {}
        self.global_allocator = GlobalBlobAllocator(
            mega_pages=config.mega_pages, load_of=self._ssd_load
        )
        self.shard_plan: Optional[ShardPlan] = None
        self.shard_executor: Optional[ShardExecutor] = None
        self.shard_report: Optional[Dict[str, object]] = None
        self._coordinator: Optional[CoordinatorFabric] = None
        if shards:
            self._build_sharded(shards, shard_mode, shard_probes)
        else:
            self._build_unsharded()
        self.runners: List[YcsbRunner] = []
        self.instances: Dict[str, KvInstance] = {}
        # Rack-lifecycle accounting (see register_metrics).
        self.tenants_arrived = 0
        self.tenants_departed = 0
        self.peak_tenants = 0
        self.peak_megas_in_use = 0
        self._departed_reads_to_primary = 0
        self._departed_reads_to_shadow = 0

    # ------------------------------------------------------------------
    # Topology build
    # ------------------------------------------------------------------
    def _build_unsharded(self) -> None:
        config = self.config
        for jbof_index in range(config.num_jbofs):
            devices = {}
            for ssd_index in range(config.ssds_per_jbof):
                device = SsdDevice(
                    self.sim, geometry=config.geometry, name=f"ssd{ssd_index}"
                )
                if config.condition == "clean":
                    precondition_clean(device)
                elif config.condition == "fragmented":
                    precondition_fragmented(device)
                devices[f"ssd{ssd_index}"] = device
            target = NvmeOfTarget(
                self.sim,
                self.network,
                f"jbof{jbof_index}",
                devices,
                scheduler_factory=self._scheduler_factory(),
            )
            self.targets.append(target)
            for ssd_name, device in devices.items():
                backend_name = f"{target.name}/{ssd_name}"
                self._backends_by_ssd[backend_name] = []
                self.global_allocator.register_backend(
                    backend_name, AddressRegion(0, device.exported_pages)
                )

    def _build_sharded(
        self, requested: int, shard_mode: str, shard_probes: bool
    ) -> None:
        """Partition the rack: coordinator shard 0 keeps every client-side
        object on ``self.sim``; JBOFs spread round-robin over shards
        1..N, each with its own simulator behind the fabric boundary
        (:mod:`repro.fabric.boundary`)."""
        config = self.config
        plan = plan_shards(requested, mode=shard_mode, max_shards=config.num_jbofs)
        self.shard_plan = plan
        lookahead = fabric_lookahead_us(self.network)
        coordinator = CoordinatorFabric(self.sim, self.network)
        self._coordinator = coordinator
        executor = ShardExecutor(lookahead)
        kernel = ShardKernel(
            0, self.sim, coordinator.handle_message, lookahead, probe=shard_probes
        )
        coordinator.bind_kernel(kernel)
        executor.add_local(kernel)
        backend = os.environ.get(KERNEL_BACKEND_ENV) or None
        for slot in range(plan.shards):
            spec = {
                "config": config,
                "jbof_indices": [
                    i for i in range(config.num_jbofs) if i % plan.shards == slot
                ],
                "shard_id": slot + 1,
                "lookahead_us": lookahead,
                "kernel_backend": backend,
                "probe": shard_probes,
            }
            if plan.mode == "processes":
                executor.add_process(build_jbof_shard, spec)
            else:
                executor.add_local(build_jbof_shard(spec))
        self.shard_executor = executor
        exported = config.geometry.exported_pages
        for jbof_index in range(config.num_jbofs):
            stub = coordinator.target_stub(
                f"jbof{jbof_index}",
                1 + jbof_index % plan.shards,
                [f"ssd{i}" for i in range(config.ssds_per_jbof)],
            )
            self.targets.append(stub)
            for ssd_name in stub.ssd_names:
                backend_name = f"{stub.name}/{ssd_name}"
                self._backends_by_ssd[backend_name] = []
                self.global_allocator.register_backend(
                    backend_name, AddressRegion(0, exported)
                )

    # ------------------------------------------------------------------
    # Scheme wiring
    # ------------------------------------------------------------------
    def _scheduler_factory(self):
        return _scheduler_factory_for(self.config.scheme)

    def _client_policy(self):
        scheme = self.config.scheme
        flow_control = self.config.flow_control
        if flow_control is None:
            flow_control = scheme == "gimbal"
        if scheme == "gimbal" and flow_control:
            return CreditClientPolicy()
        if scheme == "parda":
            return PardaClientPolicy()
        return UnlimitedClientPolicy()

    def _ssd_load(self, backend_name: str) -> float:
        """Aggregate load of one SSD across every instance touching it."""
        backends = self._backends_by_ssd.get(backend_name, [])
        if not backends:
            return 0.0
        return sum(backend.load_score for backend in backends)

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------
    def add_instance(
        self,
        name: str,
        workload: str,
        record_count: int = 2048,
        concurrency: int = 4,
    ) -> YcsbRunner:
        """One DB instance with sessions to every SSD in the rack.

        Safe to call both before the simulation starts (the static
        figure-10/13 shape) and from inside a running simulation (a
        tenant arrival).
        """
        if name in self.instances:
            raise ValueError(f"instance {name!r} already exists")
        initiator = NvmeOfInitiator(self.sim, self.network, f"client-{name}")
        backends: Dict[str, RemoteBackend] = {}
        for target in self.targets:
            for ssd_name in target.ssd_names:
                backend_name = f"{target.name}/{ssd_name}"
                session = initiator.connect(
                    tenant_id=f"{name}@{backend_name}",
                    target=target,
                    ssd_name=ssd_name,
                    policy=self._client_policy(),
                    queue_depth=64,
                )
                backend = RemoteBackend(backend_name, session)
                backends[backend_name] = backend
                self._backends_by_ssd[backend_name].append(backend)
        allocator = LocalBlobAllocator(self.global_allocator, self.config.micro_pages)
        store = Blobstore(
            allocator,
            backends,
            replicate=True,
            load_balance_reads=self.config.load_balance,
        )
        tree = LsmTree(
            name,
            store,
            self.sim,
            config=self.config.lsm,
            rng=self.rngs.stream(f"lsm:{name}"),
        )
        runner = YcsbRunner(
            tree,
            YCSB_WORKLOADS[workload],
            record_count=record_count,
            rng=self.rngs.stream(f"ycsb:{name}"),
            concurrency=concurrency,
        )
        self.runners.append(runner)
        self.instances[name] = KvInstance(
            name=name,
            initiator=initiator,
            backends=backends,
            allocator=allocator,
            store=store,
            tree=tree,
            runner=runner,
            arrived_us=self.sim.now,
        )
        self.tenants_arrived += 1
        self.peak_tenants = max(self.peak_tenants, len(self.instances))
        self._note_mega_occupancy()
        return runner

    def _note_mega_occupancy(self) -> None:
        in_use = (
            self.global_allocator.total_megas
            - self.global_allocator.total_available_megas
        )
        if in_use > self.peak_megas_in_use:
            self.peak_megas_in_use = in_use

    # ------------------------------------------------------------------
    # Departure
    # ------------------------------------------------------------------
    def depart_instance(
        self,
        name: str,
        on_done: Optional[Callable[[Dict[str, object]], None]] = None,
        poll_us: Optional[float] = None,
    ) -> None:
        """Gracefully retire one DB instance (a tenant departure).

        Stops the client, then waits (polling simulated time) until the
        LSM tree is quiescent and all fabric IO has drained before
        deleting the instance's files -- deleting under a mid-flight
        compaction would double-free the tables the compaction still
        references.  Once the deletion trims drain too, every mega blob
        goes back to the rack allocator, the sessions disconnect, and
        ``on_done`` receives the tenant's final results.
        """
        inst = self.instances[name]
        if inst.departing:
            raise ValueError(f"instance {name!r} is already departing")
        inst.departing = True
        inst.runner.stop()
        interval = poll_us if poll_us is not None else self.config.depart_poll_us
        self._note_mega_occupancy()

        def wait_quiesce() -> None:
            if inst.tree.quiescent and inst.outstanding == 0:
                for file in list(inst.store.files.values()):
                    inst.store.delete(file)
                self.sim.schedule(interval, wait_trim_drain)
            else:
                self.sim.schedule(interval, wait_quiesce)

        def wait_trim_drain() -> None:
            if inst.outstanding == 0:
                finalize()
            else:
                self.sim.schedule(interval, wait_trim_drain)

        def finalize() -> None:
            result = inst.runner.results()
            result["departed_us"] = self.sim.now
            result["arrived_us"] = inst.arrived_us
            result["megas_acquired"] = inst.allocator.megas_acquired
            result["megas_released"] = inst.allocator.megas_released
            inst.allocator.release_all()
            result["megas_released_total"] = inst.allocator.megas_released
            self._departed_reads_to_primary += inst.store.reads_to_primary
            self._departed_reads_to_shadow += inst.store.reads_to_shadow
            for backend_name, backend in inst.backends.items():
                backend.session.disconnect()
                self._backends_by_ssd[backend_name].remove(backend)
            del self.instances[name]
            self.runners.remove(inst.runner)
            self.tenants_departed += 1
            if on_done is not None:
                on_done(result)

        wait_quiesce()

    # ------------------------------------------------------------------
    # Rack-scale population execution
    # ------------------------------------------------------------------
    def run_population(
        self, specs: List[TenantSpec], poll_us: Optional[float] = None
    ) -> Dict[str, object]:
        """Execute a full tenant churn schedule and drain the rack.

        Every spec arrives at its ``arrival_us``, loads, runs its
        workload, and departs after its lifetime (measured from the
        moment loading finished, so short-lived tenants still do real
        work).  The call returns when the last tenant has departed;
        afterwards the rack holds zero instances and -- thanks to
        allocator reclamation -- the global mega-blob pool is exactly
        as available as before the churn.
        """
        if self.instances:
            raise RuntimeError("run_population needs an empty rack to start from")
        pre_available = self.global_allocator.total_available_megas
        results: Dict[str, Dict[str, object]] = {}

        def launch(spec: TenantSpec) -> None:
            runner = self.add_instance(
                spec.name,
                spec.workload,
                record_count=spec.record_count,
                concurrency=spec.concurrency,
            )

            def loaded() -> None:
                runner.start()
                runner.begin_measurement()
                self.sim.schedule(spec.lifetime_us, depart)

            def depart() -> None:
                self.depart_instance(
                    spec.name, on_done=lambda result: record(spec, result), poll_us=poll_us
                )

            runner.load(loaded)

        def record(spec: TenantSpec, result: Dict[str, object]) -> None:
            result["tenant_class"] = spec.tenant_class
            result["record_count"] = spec.record_count
            result["concurrency"] = spec.concurrency
            results[spec.name] = result

        for spec in specs:
            self.sim.schedule(max(0.0, spec.arrival_us - self.sim.now), launch, spec)
        self._advance()
        if self.instances:
            raise RuntimeError(
                f"{len(self.instances)} instances still resident after the "
                "population drained"
            )
        missing = [spec.name for spec in specs if spec.name not in results]
        if missing:
            raise RuntimeError(f"{len(missing)} tenants never departed: {missing[:5]}")
        post_available = self.global_allocator.total_available_megas
        out = {
            "tenants": [results[spec.name] for spec in specs],
            "peak_tenants": self.peak_tenants,
            "peak_megas_in_use": self.peak_megas_in_use,
            "megas_allocated": self.global_allocator.megas_allocated,
            "megas_freed": self.global_allocator.megas_freed,
            "megas_leaked": pre_available - post_available,
            "reads_to_primary": self.reads_to_primary,
            "reads_to_shadow": self.reads_to_shadow,
            "drained_us": self.sim.now,
        }
        shard = self._shard_outcome()
        if shard is not None:
            out["shard"] = shard
        return out

    # ------------------------------------------------------------------
    # Rack-level accounting
    # ------------------------------------------------------------------
    @property
    def reads_to_primary(self) -> int:
        return self._departed_reads_to_primary + sum(
            inst.store.reads_to_primary for inst in self.instances.values()
        )

    @property
    def reads_to_shadow(self) -> int:
        return self._departed_reads_to_shadow + sum(
            inst.store.reads_to_shadow for inst in self.instances.values()
        )

    def register_metrics(self, registry, prefix: str = "rack") -> None:
        """Install rack occupancy/reclamation/steering gauges.

        Gauges are pull metrics (sampled at read time), so registering
        them costs the simulation hot path nothing.
        """
        allocator = self.global_allocator
        registry.gauge(f"{prefix}.active_tenants", lambda: len(self.instances))
        registry.gauge(f"{prefix}.peak_tenants", lambda: self.peak_tenants)
        registry.gauge(f"{prefix}.tenants_arrived", lambda: self.tenants_arrived)
        registry.gauge(f"{prefix}.tenants_departed", lambda: self.tenants_departed)
        registry.gauge(f"{prefix}.megas_total", lambda: allocator.total_megas)
        registry.gauge(
            f"{prefix}.megas_available", lambda: allocator.total_available_megas
        )
        registry.gauge(f"{prefix}.megas_allocated", lambda: allocator.megas_allocated)
        registry.gauge(f"{prefix}.megas_freed", lambda: allocator.megas_freed)
        registry.gauge(
            f"{prefix}.peak_megas_in_use", lambda: self.peak_megas_in_use
        )
        registry.gauge(f"{prefix}.reads_to_primary", lambda: self.reads_to_primary)
        registry.gauge(f"{prefix}.reads_to_shadow", lambda: self.reads_to_shadow)
        if self.shard_executor is not None:
            self.shard_executor.register_metrics(registry)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _advance(self, until_us: Optional[float] = None) -> None:
        """Advance the rack: the plain event loop unsharded, the
        conservative window protocol when sharded."""
        if self.shard_executor is not None:
            self.shard_executor.run_until(until_us)
        elif until_us is None:
            self.sim.run()
        else:
            self.sim.run(until_us=until_us)

    def finish_shards(self) -> Optional[Dict[str, object]]:
        """Collect shard-layer statistics and shut worker processes
        down.  Idempotent; returns None on an unsharded cluster.  After
        this, the cluster cannot advance further."""
        if self.shard_executor is None:
            return None
        self.shard_report = self.shard_executor.finish()
        return self.shard_report

    def _shard_outcome(self) -> Optional[Dict[str, object]]:
        """The deterministic slice of the shard report, safe to embed
        in result rows: identical between inline and multi-process
        executions of the same plan (wall-clock barrier stalls and the
        like stay in :attr:`shard_report`)."""
        report = self.finish_shards()
        if report is None:
            return None
        plan = self.shard_plan
        return {
            "shards": plan.shards,
            "requested": plan.requested,
            "clamped": plan.clamped,
            "lookahead_us": report["lookahead_us"],
            "windows": report["windows"],
            "messages": report["messages"],
        }

    def load_all(self) -> None:
        """Run the YCSB load phase for every instance.

        Loading is the only activity, so the event heap drains exactly
        when every instance has finished inserting its records.
        """
        remaining = {"count": len(self.runners)}

        def one_loaded() -> None:
            remaining["count"] -= 1

        for runner in self.runners:
            runner.load(one_loaded)
        self._advance()
        if remaining["count"]:
            raise RuntimeError(f"{remaining['count']} instances did not finish loading")

    def run(self, warmup_us: float, measure_us: float) -> Dict[str, object]:
        start = self.sim.now
        for runner in self.runners:
            runner.start()
        self._advance(start + warmup_us)
        for runner in self.runners:
            runner.begin_measurement()
        self._advance(start + warmup_us + measure_us)
        per_instance = [runner.results() for runner in self.runners]
        read_summaries = [r["read_latency"] for r in per_instance if r["read_latency"]["count"]]
        total_kops = sum(r["kops"] for r in per_instance)
        mean_read = (
            sum(s["mean"] * s["count"] for s in read_summaries)
            / max(1.0, sum(s["count"] for s in read_summaries))
            if read_summaries
            else 0.0
        )
        p999 = max((s["p999"] for s in read_summaries), default=0.0)
        out = {
            "scheme": self.config.scheme,
            "instances": per_instance,
            "total_kops": total_kops,
            "read_avg_us": mean_read,
            "read_p999_us": p999,
        }
        shard = self._shard_outcome()
        if shard is not None:
            out["shard"] = shard
        return out
