"""Multi-JBOF cluster for the RocksDB case study (Sections 4.3, 5.6).

Builds the paper's application testbed: several SmartNIC JBOFs, a
shared rack-level blob allocator, and N DB instances, each an LSM tree
over a replicated blobstore with per-(instance, SSD) tenant sessions.

Three client-side switches reproduce Figure 13's ablation:

* ``flow_control`` -- sessions use the credit policy (the IO rate
  limiter); off = unlimited submission;
* ``load_balance`` -- reads steered to the least-loaded replica;
* replication itself is always on (fault tolerance), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fabric import (
    CreditClientPolicy,
    Network,
    NvmeOfInitiator,
    NvmeOfTarget,
    PardaClientPolicy,
    UnlimitedClientPolicy,
)
from repro.harness.testbed import SCHEMES
from repro.kv import (
    Blobstore,
    GlobalBlobAllocator,
    LocalBlobAllocator,
    LsmConfig,
    LsmTree,
    RemoteBackend,
    YcsbRunner,
)
from repro.sim import RngRegistry, Simulator
from repro.ssd import SsdDevice, SsdGeometry, precondition_clean, precondition_fragmented
from repro.workloads.patterns import AddressRegion
from repro.workloads.ycsb import YCSB_WORKLOADS

from repro.baselines import FifoScheduler, FlashFqScheduler, ReflexScheduler
from repro.core import GimbalScheduler


@dataclass
class KvClusterConfig:
    """Cluster shape and scheme selection."""

    __test__ = False

    scheme: str = "gimbal"
    condition: str = "fragmented"
    num_jbofs: int = 3
    ssds_per_jbof: int = 4
    geometry: SsdGeometry = field(default_factory=SsdGeometry)
    #: Client-side credit flow control (Figure 13's "+FC").
    flow_control: Optional[bool] = None  # None = scheme default
    #: Read load balancing across replicas (Figure 13's "+LB").
    load_balance: bool = True
    mega_pages: int = 2048
    micro_pages: int = 64
    lsm: LsmConfig = field(default_factory=LsmConfig)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.num_jbofs <= 0 or self.ssds_per_jbof <= 0:
            raise ValueError("cluster must have at least one SSD")


class KvCluster:
    """The rack: JBOF targets plus DB instances."""

    __test__ = False

    def __init__(self, config: KvClusterConfig):
        self.config = config
        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.network = Network(self.sim)
        self.targets: List[NvmeOfTarget] = []
        #: backend name ("jbofX/ssdY") -> all RemoteBackends touching it.
        self._backends_by_ssd: Dict[str, List[RemoteBackend]] = {}
        self.global_allocator = GlobalBlobAllocator(
            mega_pages=config.mega_pages, load_of=self._ssd_load
        )
        for jbof_index in range(config.num_jbofs):
            devices = {}
            for ssd_index in range(config.ssds_per_jbof):
                device = SsdDevice(
                    self.sim, geometry=config.geometry, name=f"ssd{ssd_index}"
                )
                if config.condition == "clean":
                    precondition_clean(device)
                elif config.condition == "fragmented":
                    precondition_fragmented(device)
                devices[f"ssd{ssd_index}"] = device
            target = NvmeOfTarget(
                self.sim,
                self.network,
                f"jbof{jbof_index}",
                devices,
                scheduler_factory=self._scheduler_factory(),
            )
            self.targets.append(target)
            for ssd_name, device in devices.items():
                backend_name = f"{target.name}/{ssd_name}"
                self._backends_by_ssd[backend_name] = []
                self.global_allocator.register_backend(
                    backend_name, AddressRegion(0, device.exported_pages)
                )
        self.runners: List[YcsbRunner] = []

    # ------------------------------------------------------------------
    # Scheme wiring
    # ------------------------------------------------------------------
    def _scheduler_factory(self):
        scheme = self.config.scheme
        if scheme == "gimbal":
            return GimbalScheduler
        if scheme == "reflex":
            return ReflexScheduler
        if scheme == "flashfq":
            return FlashFqScheduler
        return FifoScheduler

    def _client_policy(self):
        scheme = self.config.scheme
        flow_control = self.config.flow_control
        if flow_control is None:
            flow_control = scheme == "gimbal"
        if scheme == "gimbal" and flow_control:
            return CreditClientPolicy()
        if scheme == "parda":
            return PardaClientPolicy()
        return UnlimitedClientPolicy()

    def _ssd_load(self, backend_name: str) -> float:
        """Aggregate load of one SSD across every instance touching it."""
        backends = self._backends_by_ssd.get(backend_name, [])
        if not backends:
            return 0.0
        return sum(backend.load_score for backend in backends)

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------
    def add_instance(
        self,
        name: str,
        workload: str,
        record_count: int = 2048,
        concurrency: int = 4,
    ) -> YcsbRunner:
        """One DB instance with sessions to every SSD in the rack."""
        initiator = NvmeOfInitiator(self.sim, self.network, f"client-{name}")
        backends: Dict[str, RemoteBackend] = {}
        for target in self.targets:
            for ssd_name in target.ssd_names:
                backend_name = f"{target.name}/{ssd_name}"
                session = initiator.connect(
                    tenant_id=f"{name}@{backend_name}",
                    target=target,
                    ssd_name=ssd_name,
                    policy=self._client_policy(),
                    queue_depth=64,
                )
                backend = RemoteBackend(backend_name, session)
                backends[backend_name] = backend
                self._backends_by_ssd[backend_name].append(backend)
        allocator = LocalBlobAllocator(self.global_allocator, self.config.micro_pages)
        store = Blobstore(
            allocator,
            backends,
            replicate=True,
            load_balance_reads=self.config.load_balance,
        )
        tree = LsmTree(
            name,
            store,
            self.sim,
            config=self.config.lsm,
            rng=self.rngs.stream(f"lsm:{name}"),
        )
        runner = YcsbRunner(
            tree,
            YCSB_WORKLOADS[workload],
            record_count=record_count,
            rng=self.rngs.stream(f"ycsb:{name}"),
            concurrency=concurrency,
        )
        self.runners.append(runner)
        return runner

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def load_all(self) -> None:
        """Run the YCSB load phase for every instance.

        Loading is the only activity, so the event heap drains exactly
        when every instance has finished inserting its records.
        """
        remaining = {"count": len(self.runners)}

        def one_loaded() -> None:
            remaining["count"] -= 1

        for runner in self.runners:
            runner.load(one_loaded)
        self.sim.run()
        if remaining["count"]:
            raise RuntimeError(f"{remaining['count']} instances did not finish loading")

    def run(self, warmup_us: float, measure_us: float) -> Dict[str, object]:
        start = self.sim.now
        for runner in self.runners:
            runner.start()
        self.sim.run(until_us=start + warmup_us)
        for runner in self.runners:
            runner.begin_measurement()
        self.sim.run(until_us=start + warmup_us + measure_us)
        per_instance = [runner.results() for runner in self.runners]
        read_summaries = [r["read_latency"] for r in per_instance if r["read_latency"]["count"]]
        total_kops = sum(r["kops"] for r in per_instance)
        mean_read = (
            sum(s["mean"] * s["count"] for s in read_summaries)
            / max(1.0, sum(s["count"] for s in read_summaries))
            if read_summaries
            else 0.0
        )
        p999 = max((s["p999"] for s in read_summaries), default=0.0)
        return {
            "scheme": self.config.scheme,
            "instances": per_instance,
            "total_kops": total_kops,
            "read_avg_us": mean_read,
            "read_p999_us": p999,
        }
