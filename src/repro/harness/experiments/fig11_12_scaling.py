"""Figures 11 & 12: throughput and read latency vs DB instance count.

Gimbal-configured JBOFs, sweeping the number of RocksDB instances.
Paper shape: throughput grows with instances until the JBOFs saturate
(A/B/D flatten around 20 instances, F around 16), while average read
latency creeps up with consolidation; the read-only workload C scales
furthest.

Scaled defaults sweep 1..6 instances over one JBOF (the paper sweeps
4..24 over three).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.harness.experiments.common import Sweep, merge_rows
from repro.harness.experiments.fig10_rocksdb import run_one
from repro.harness.report import format_table

DEFAULT_SWEEP = (1, 2, 4, 6)


def _point(workload: str, instances: int, **kwargs) -> dict:
    """One Gimbal (workload, instance count) cell, reshaped for the figure."""
    result = run_one("gimbal", workload, instances=instances, **kwargs)
    return {
        "workload": workload,
        "instances": instances,
        "kops": result["kops"],
        "read_avg_us": result["read_avg_us"],
    }


def sweep(
    workloads: Sequence[str] = ("A", "C", "F"),
    instance_counts: Sequence[int] = DEFAULT_SWEEP,
    **kwargs,
):
    """One point per (workload, instance count) in the original loop order."""
    sw = Sweep("fig11-12")
    for workload in workloads:
        for count in instance_counts:
            sw.point(
                _point,
                label=f"workload={workload},instances={count}",
                workload=workload,
                instances=count,
                **kwargs,
            )
    return sw


def finalize(results) -> Dict[str, object]:
    return {"figure": "11+12", "rows": merge_rows(results)}


def run(
    workloads: Sequence[str] = ("A", "C", "F"),
    instance_counts: Sequence[int] = DEFAULT_SWEEP,
    jobs: int = 1,
    cache=None,
    pool=None,
    **kwargs,
) -> Dict[str, object]:
    return finalize(
        sweep(workloads=workloads, instance_counts=instance_counts, **kwargs).run(
            jobs=jobs, cache=cache, pool=pool
        )
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["workload"], row["instances"], row["kops"], row["read_avg_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["YCSB", "instances", "KOPS", "read avg us"],
        table_rows,
        title="Figures 11/12: scaling the number of DB instances (Gimbal)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
