"""Figures 11 & 12: throughput and read latency vs DB instance count.

Gimbal-configured JBOFs, sweeping the number of RocksDB instances.
Paper shape: throughput grows with instances until the JBOFs saturate
(A/B/D flatten around 20 instances, F around 16), while average read
latency creeps up with consolidation; the read-only workload C scales
furthest.

Scaled defaults sweep 1..6 instances over one JBOF (the paper sweeps
4..24 over three).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness.experiments.fig10_rocksdb import run_one
from repro.harness.report import format_table

DEFAULT_SWEEP = (1, 2, 4, 6)


def run(
    workloads: Sequence[str] = ("A", "C", "F"),
    instance_counts: Sequence[int] = DEFAULT_SWEEP,
    **kwargs,
) -> Dict[str, object]:
    rows: List[dict] = []
    for workload in workloads:
        for count in instance_counts:
            result = run_one("gimbal", workload, instances=count, **kwargs)
            rows.append(
                {
                    "workload": workload,
                    "instances": count,
                    "kops": result["kops"],
                    "read_avg_us": result["read_avg_us"],
                }
            )
    return {"figure": "11+12", "rows": rows}


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["workload"], row["instances"], row["kops"], row["read_avg_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["YCSB", "instances", "KOPS", "read avg us"],
        table_rows,
        title="Figures 11/12: scaling the number of DB instances (Gimbal)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
