"""Extension study (paper Section 6): Gimbal on QLC NAND.

The paper expects its techniques to carry over to QLC, whose
read/write asymmetry is even more pronounced than TLC's.  This
experiment runs the fragmented mixed read/write workload on the QLC
profile (60 us programs, 2.5 ms erases) with Gimbal's parameters
retuned the way Section 4.2 prescribes for a different medium: a
higher worst-case write cost (the read/write IOPS ratio of the
device) and a higher Thresh_max (slower saturation latencies).

Expected shape: on the unmanaged target the writers' GC traffic
crushes readers even harder than on TLC; Gimbal restores the read
share while holding write latency bounded.
"""

from __future__ import annotations

from typing import Dict

from repro.core import GimbalParams
from repro.harness.experiments.common import Sweep, merge_rows, read_spec, run_workers, write_spec
from repro.harness.report import format_table
from repro.harness.testbed import TestbedConfig
from repro.metrics.histogram import LatencyHistogram

#: Section 4.2-style retuning for the QLC medium.
QLC_GIMBAL_PARAMS = GimbalParams(
    thresh_max_us=3000.0,
    write_cost_worst=16.0,
)


def _point(
    scheme: str, measure_us: float, warmup_us: float, workers_per_class: int
) -> dict:
    """One scheme's fragmented mixed read/write run on the QLC profile."""
    specs = [read_spec(f"rd{i}", 1) for i in range(workers_per_class)]
    specs += [write_spec(f"wr{i}", 1) for i in range(workers_per_class)]
    results = run_workers(
        TestbedConfig(
            scheme=scheme,
            condition="fragmented",
            device_profile="qlc",
            gimbal_params=QLC_GIMBAL_PARAMS,
        ),
        specs,
        warmup_us=warmup_us,
        measure_us=measure_us,
        region_pages=1600,
    )
    read_bw = sum(w["bandwidth_mbps"] for w in results["workers"][:workers_per_class])
    write_bw = sum(w["bandwidth_mbps"] for w in results["workers"][workers_per_class:])
    read_latency = LatencyHistogram()
    for worker in results["testbed"].workers[:workers_per_class]:
        read_latency.merge(worker.read_latency)
    return {
        "scheme": scheme,
        "read_mbps": read_bw,
        "write_mbps": write_bw,
        "read_avg_us": read_latency.mean,
        "read_p99_us": read_latency.percentile(99.0),
    }


def sweep(
    measure_us: float = 900_000.0,
    warmup_us: float = 500_000.0,
    workers_per_class: int = 8,
    schemes=("gimbal", "vanilla", "flashfq"),
):
    """One point per scheme."""
    sw = Sweep("ext-qlc")
    for scheme in schemes:
        sw.point(
            _point,
            label=f"scheme={scheme}",
            scheme=scheme,
            measure_us=measure_us,
            warmup_us=warmup_us,
            workers_per_class=workers_per_class,
        )
    return sw


def finalize(results) -> Dict[str, object]:
    return {"experiment": "qlc-extension", "rows": merge_rows(results)}


def run(
    measure_us: float = 900_000.0,
    warmup_us: float = 500_000.0,
    workers_per_class: int = 8,
    schemes=("gimbal", "vanilla", "flashfq"),
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            measure_us=measure_us,
            warmup_us=warmup_us,
            workers_per_class=workers_per_class,
            schemes=schemes,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (r["scheme"], r["read_mbps"], r["write_mbps"], r["read_avg_us"], r["read_p99_us"])
        for r in results["rows"]
    ]
    return format_table(
        ["scheme", "read MB/s", "write MB/s", "read avg us", "read p99 us"],
        table_rows,
        title="QLC extension: fragmented 4KB mixed R/W on QLC NAND",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
