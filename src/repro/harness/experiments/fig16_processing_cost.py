"""Figure 16 (Appendix): bandwidth vs added per-IO processing cost.

All SmartNIC cores active against four SSDs; artificial per-IO
processing is added on the submission path.  Paper shape: small IOs
tolerate only ~1-5 us of added cost before bandwidth collapses (the
cores saturate), while 128 KiB IOs tolerate 5-10 us -- the headroom
argument behind "we can only add minimal computation per storage IO".
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import build_sweep, merge_rows
from repro.harness.report import format_table
from repro.harness.testbed import Testbed, TestbedConfig
from repro.workloads import FioSpec

ADDED_COSTS_US = (0.0, 1.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0)
NUM_SSDS = 4
NUM_CORES = 8

#: case label -> (io_pages, read)
CASES = {
    "4KB-read": (1, True),
    "128KB-read": (32, True),
    "4KB-write": (1, False),
    "128KB-write": (32, False),
}


def _case(
    io_pages: int, read: bool, added_cost: float, measure_us: float, seed: int = 42
) -> float:
    testbed = Testbed(
        TestbedConfig(
            scheme="vanilla",
            condition="clean",
            num_ssds=NUM_SSDS,
            num_cores=NUM_CORES,
            added_io_cost_us=added_cost,
            seed=seed,
        )
    )
    for ssd_index in range(NUM_SSDS):
        for worker_index in range(2):
            testbed.add_worker(
                FioSpec(
                    f"w{ssd_index}-{worker_index}",
                    io_pages=io_pages,
                    queue_depth=32 if io_pages == 1 else 8,
                    read_ratio=1.0 if read else 0.0,
                    pattern="random" if read else "sequential",
                ),
                ssd=f"ssd{ssd_index}",
                region_pages=4096,
            )
    results = testbed.run(warmup_us=100_000.0, measure_us=measure_us)
    return results["total_bandwidth_mbps"] / 1024.0  # GB/s


def _point(case: str, added_cost_us: float, measure_us: float, seed: int) -> dict:
    io_pages, read = CASES[case]
    bandwidth = _case(io_pages, read, added_cost_us, measure_us, seed=seed)
    return {"case": case, "added_cost_us": added_cost_us, "gbps": bandwidth}


def sweep(
    measure_us: float = 300_000.0, added_costs=ADDED_COSTS_US, root_seed: int = 42
):
    """Declare one point per (case, added cost) cell."""
    return build_sweep(
        "fig16",
        {"case": CASES, "added_cost_us": added_costs},
        _point,
        root_seed=root_seed,
        measure_us=measure_us,
    )


def finalize(results) -> Dict[str, object]:
    """Merge ordered point results into the figure's result dict."""
    return {"figure": "16", "rows": merge_rows(results)}


def run(
    measure_us: float = 300_000.0,
    added_costs=ADDED_COSTS_US,
    jobs: int = 1,
    root_seed: int = 42,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(measure_us=measure_us, added_costs=added_costs, root_seed=root_seed).run(
            jobs=jobs, cache=cache, pool=pool
        )
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["case"], row["added_cost_us"], row["gbps"]) for row in results["rows"]
    ]
    return format_table(
        ["case", "added per-IO cost us", "GB/s"],
        table_rows,
        title="Figure 16: JBOF bandwidth vs added per-IO processing cost",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
