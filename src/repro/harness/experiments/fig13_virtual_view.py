"""Figure 13: application optimisations enabled by the SSD virtual view.

8 DB instances over one Gimbal JBOF, comparing three client
configurations:

* **vanilla** -- no credit-driven rate limiting, reads to the primary;
* **+FC** -- the credit-based IO rate limiter;
* **+FC+LB** -- plus the read load balancer steering to the replica
  with more credit.

Paper shape: the rate limiter cuts p99.9 read latency ~28% and the
load balancer a further ~19%.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import Sweep, merge_rows
from repro.harness.kvcluster import KvCluster, KvClusterConfig
from repro.harness.report import format_table

VARIANTS = (
    ("vanilla", dict(flow_control=False, load_balance=False)),
    ("+FC", dict(flow_control=True, load_balance=False)),
    ("+FC+LB", dict(flow_control=True, load_balance=True)),
)

_TOGGLES_BY_VARIANT = dict(VARIANTS)


def _point(
    workload: str,
    variant: str,
    instances: int,
    record_count: int,
    warmup_us: float,
    measure_us: float,
) -> dict:
    """One (workload, client-configuration) cluster run."""
    cluster = KvCluster(
        KvClusterConfig(
            scheme="gimbal",
            condition="fragmented",
            num_jbofs=1,
            **_TOGGLES_BY_VARIANT[variant],
        )
    )
    for index in range(instances):
        cluster.add_instance(f"db{index}", workload, record_count=record_count)
    cluster.load_all()
    results = cluster.run(warmup_us=warmup_us, measure_us=measure_us)
    return {
        "workload": workload,
        "variant": variant,
        "kops": results["total_kops"],
        "read_p999_us": results["read_p999_us"],
    }


def sweep(
    workloads=("A", "B", "C", "D", "F"),
    instances: int = 8,
    record_count: int = 2048,
    warmup_us: float = 300_000.0,
    measure_us: float = 700_000.0,
):
    """One point per (workload, variant) in the original loop order."""
    sw = Sweep("fig13")
    for workload in workloads:
        for label, _toggles in VARIANTS:
            sw.point(
                _point,
                label=f"workload={workload},variant={label}",
                workload=workload,
                variant=label,
                instances=instances,
                record_count=record_count,
                warmup_us=warmup_us,
                measure_us=measure_us,
            )
    return sw


def finalize(results) -> Dict[str, object]:
    return {"figure": "13", "rows": merge_rows(results)}


def run(
    workloads=("A", "B", "C", "D", "F"),
    instances: int = 8,
    record_count: int = 2048,
    warmup_us: float = 300_000.0,
    measure_us: float = 700_000.0,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            workloads=workloads,
            instances=instances,
            record_count=record_count,
            warmup_us=warmup_us,
            measure_us=measure_us,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["workload"], row["variant"], row["kops"], row["read_p999_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["YCSB", "variant", "KOPS", "read p99.9 us"],
        table_rows,
        title="Figure 13: virtual-view optimisations (vanilla / +FC / +FC+LB)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
