"""Figure 13: application optimisations enabled by the SSD virtual view.

8 DB instances over one Gimbal JBOF, comparing three client
configurations:

* **vanilla** -- no credit-driven rate limiting, reads to the primary;
* **+FC** -- the credit-based IO rate limiter;
* **+FC+LB** -- plus the read load balancer steering to the replica
  with more credit.

Paper shape: the rate limiter cuts p99.9 read latency ~28% and the
load balancer a further ~19%.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.kvcluster import KvCluster, KvClusterConfig
from repro.harness.report import format_table

VARIANTS = (
    ("vanilla", dict(flow_control=False, load_balance=False)),
    ("+FC", dict(flow_control=True, load_balance=False)),
    ("+FC+LB", dict(flow_control=True, load_balance=True)),
)


def run(
    workloads=("A", "B", "C", "D", "F"),
    instances: int = 8,
    record_count: int = 2048,
    warmup_us: float = 300_000.0,
    measure_us: float = 700_000.0,
) -> Dict[str, object]:
    rows: List[dict] = []
    for workload in workloads:
        for label, toggles in VARIANTS:
            cluster = KvCluster(
                KvClusterConfig(
                    scheme="gimbal",
                    condition="fragmented",
                    num_jbofs=1,
                    **toggles,
                )
            )
            for index in range(instances):
                cluster.add_instance(f"db{index}", workload, record_count=record_count)
            cluster.load_all()
            results = cluster.run(warmup_us=warmup_us, measure_us=measure_us)
            rows.append(
                {
                    "workload": workload,
                    "variant": label,
                    "kops": results["total_kops"],
                    "read_p999_us": results["read_p999_us"],
                }
            )
    return {"figure": "13", "rows": rows}


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["workload"], row["variant"], row["kops"], row["read_p999_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["YCSB", "variant", "KOPS", "read p99.9 us"],
        table_rows,
        title="Figure 13: virtual-view optimisations (vanilla / +FC / +FC+LB)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
