"""Figure 10: RocksDB/YCSB performance across schemes.

DB instances over SmartNIC JBOFs on fragmented SSDs, running the five
core YCSB workloads.  Paper shape: Gimbal improves throughput ~1.3-2.1x
over the baselines with lower average and p99.9 read latency; the
update-heavy mixes (A, F) gain the most, the read-only mix (C) the
least, because Gimbal's win is scheduling mixed read/write traffic.

Scaled defaults: the paper runs 24 instances over 3 JBOFs (12 SSDs);
the default here is 6 instances over 1 JBOF (4 SSDs), which keeps the
per-SSD consolidation comparable while fitting a benchmark budget.
Pass ``num_jbofs=3, instances=24`` for the full-scale configuration.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import Sweep, merge_rows
from repro.harness.kvcluster import KvCluster, KvClusterConfig
from repro.harness.report import format_table

WORKLOADS = ("A", "B", "C", "D", "F")


def run_one(
    scheme: str,
    workload: str,
    instances: int = 6,
    num_jbofs: int = 1,
    record_count: int = 2048,
    warmup_us: float = 300_000.0,
    measure_us: float = 700_000.0,
    shards: int = 0,
    shard_mode: str = "auto",
) -> Dict[str, object]:
    cluster = KvCluster(
        KvClusterConfig(scheme=scheme, condition="fragmented", num_jbofs=num_jbofs),
        shards=shards or None,
        shard_mode=shard_mode,
    )
    for index in range(instances):
        cluster.add_instance(f"db{index}", workload, record_count=record_count)
    cluster.load_all()
    results = cluster.run(warmup_us=warmup_us, measure_us=measure_us)
    row = {
        "scheme": scheme,
        "workload": workload,
        "kops": results["total_kops"],
        "read_avg_us": results["read_avg_us"],
        "read_p999_us": results["read_p999_us"],
    }
    shard = results.get("shard")
    if shard is not None:
        row["shards"] = shard["shards"]
        row["shard_windows"] = shard["windows"]
    return row


def sweep(
    schemes=("gimbal", "reflex", "parda", "flashfq"),
    workloads=WORKLOADS,
    **kwargs,
):
    """One point per (workload, scheme) in the original loop order."""
    sw = Sweep("fig10")
    for workload in workloads:
        for scheme in schemes:
            sw.point(
                run_one,
                label=f"workload={workload},scheme={scheme}",
                scheme=scheme,
                workload=workload,
                **kwargs,
            )
    return sw


def finalize(results) -> Dict[str, object]:
    return {"figure": "10", "rows": merge_rows(results)}


def run(
    schemes=("gimbal", "reflex", "parda", "flashfq"),
    workloads=WORKLOADS,
    jobs: int = 1,
    cache=None,
    pool=None,
    **kwargs,
) -> Dict[str, object]:
    return finalize(
        sweep(schemes=schemes, workloads=workloads, **kwargs).run(
            jobs=jobs, cache=cache, pool=pool
        )
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["workload"], row["scheme"], row["kops"], row["read_avg_us"], row["read_p999_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["YCSB", "scheme", "KOPS", "read avg us", "read p99.9 us"],
        table_rows,
        title="Figure 10: RocksDB/YCSB across schemes (fragmented SSDs)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
