"""Section 5.8: generalisation to a different SSD (Intel DC P3600).

Reruns the Figure 7-style mixed read/write fairness experiments on the
P3600 device profile with Gimbal's Thresh_max retuned to 3 ms (the
paper's adjustment for the P3600's higher large-read tail latency).
Paper shape: f-Utils stay close to the DCT983 case -- ~0.6-0.7 for the
clean condition and ~0.6-0.9 for the fragmented one -- i.e. Gimbal
adapts to the device.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import P3600_PARAMS
from repro.harness.experiments.common import (
    Sweep,
    f_utils_for,
    merge_rows,
    read_spec,
    run_workers,
    write_spec,
)
from repro.harness.report import format_table
from repro.harness.testbed import TestbedConfig

#: (condition, io_pages) pairs matching the Figure 7 b/c workloads.
CONDITIONS = (("clean", 32), ("fragmented", 1))


def _point(
    condition: str,
    io_pages: int,
    measure_us: float,
    warmup_us: float,
    workers_per_class: int,
) -> dict:
    """One mixed read/write run on the P3600 profile."""
    specs = [read_spec(f"rd{i}", io_pages) for i in range(workers_per_class)]
    specs += [write_spec(f"wr{i}", io_pages) for i in range(workers_per_class)]
    results = run_workers(
        TestbedConfig(
            scheme="gimbal",
            condition=condition,
            device_profile="p3600",
            gimbal_params=P3600_PARAMS,
        ),
        specs,
        warmup_us=warmup_us,
        measure_us=measure_us,
        region_pages=1600,
    )
    futils = f_utils_for(results, specs, condition, device_profile="p3600")
    read_futil = sum(futils[:workers_per_class]) / workers_per_class
    write_futil = sum(futils[workers_per_class:]) / workers_per_class
    return {
        "condition": condition,
        "read_futil": read_futil,
        "write_futil": write_futil,
        "read_mbps": sum(
            w["bandwidth_mbps"] for w in results["workers"][:workers_per_class]
        ),
        "write_mbps": sum(
            w["bandwidth_mbps"] for w in results["workers"][workers_per_class:]
        ),
    }


def sweep(
    measure_us: float = 1_200_000.0,
    warmup_us: float = 600_000.0,
    workers_per_class: int = 8,
):
    """One point per device condition."""
    sw = Sweep("sec5.8")
    for condition, io_pages in CONDITIONS:
        sw.point(
            _point,
            label=f"condition={condition}",
            condition=condition,
            io_pages=io_pages,
            measure_us=measure_us,
            warmup_us=warmup_us,
            workers_per_class=workers_per_class,
        )
    return sw


def finalize(results) -> Dict[str, object]:
    return {"section": "5.8", "rows": merge_rows(results)}


def run(
    measure_us: float = 1_200_000.0,
    warmup_us: float = 600_000.0,
    workers_per_class: int = 8,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            measure_us=measure_us,
            warmup_us=warmup_us,
            workers_per_class=workers_per_class,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (r["condition"], r["read_futil"], r["write_futil"], r["read_mbps"], r["write_mbps"])
        for r in results["rows"]
    ]
    return format_table(
        ["condition", "read f-Util", "write f-Util", "read MB/s", "write MB/s"],
        table_rows,
        title="Section 5.8: Gimbal on the Intel P3600 profile (Thresh_max = 3ms)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
