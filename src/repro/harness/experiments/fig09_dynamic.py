"""Figure 9: dynamic workload -- write-cost adaptation over time.

Gimbal on one SSD.  Eight rate-capped readers (200 MB/s each) start;
one rate-capped writer (60 MB/s) arrives per phase until 8 writers
run, then readers leave one per phase.  The paper's story: the first
writer's IOs are absorbed by the device write buffer, so its latency
stays near-buffer-level and Gimbal drops the write cost toward 1; as
writers accumulate the write rate exceeds the buffer's drain rate,
latency jumps ~10x, the estimated cost climbs back toward worst case,
and write bandwidth converges to the fair share.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import Sweep
from repro.harness.report import format_series
from repro.harness.testbed import Testbed, TestbedConfig
from repro.metrics.throughput import IntervalSeries
from repro.ssd.commands import IoOp
from repro.workloads import FioSpec


def _point(
    phase_us: float,
    sample_window_us: float,
    num_readers: int,
    num_writers: int,
    condition: str,
) -> Dict[str, object]:
    """The whole dynamic run is one simulation, hence one sweep point."""
    testbed = Testbed(TestbedConfig(scheme="gimbal", condition=condition))
    readers = [
        testbed.add_worker(
            FioSpec(
                f"rd{i}", io_pages=32, queue_depth=4, read_ratio=1.0, rate_limit_mbps=200.0
            ),
            region_pages=1600,
        )
        for i in range(num_readers)
    ]
    writers = [
        testbed.add_worker(
            FioSpec(
                f"wr{i}",
                io_pages=32,
                queue_depth=4,
                read_ratio=0.0,
                pattern="sequential",
                rate_limit_mbps=60.0,
            ),
            region_pages=1600,
        )
        for i in range(num_writers)
    ]
    sim = testbed.sim
    scheduler = testbed.target.pipelines["ssd0"].scheduler

    bandwidth = {
        worker.spec.name: IntervalSeries(sample_window_us, mode="sum") for worker in readers + writers
    }
    latency = {
        "read": IntervalSeries(sample_window_us, mode="mean"),
        "write": IntervalSeries(sample_window_us, mode="mean"),
    }
    write_cost_series = IntervalSeries(sample_window_us, mode="last")

    # Tap per-completion data through the workers' histograms by
    # wrapping each worker's completion hook.
    for worker in readers + writers:
        original = worker._on_complete

        def tapped(request, worker=worker, original=original):
            bandwidth[worker.spec.name].record(sim.now, request.size_bytes)
            key = "read" if request.op is IoOp.READ else "write"
            latency[key].record(sim.now, request.device_latency_us)
            write_cost_series.record(sim.now, scheduler.write_cost.cost)
            original(request)

        worker._on_complete = tapped

    def timeline():
        for reader in readers:
            reader.start()
        yield phase_us
        for writer in writers:
            writer.start()
            yield phase_us
        for reader in readers:
            reader.stop()
            yield phase_us

    testbed.sim.process(timeline())
    total_phases = 1 + num_writers + num_readers
    testbed.sim.run(until_us=phase_us * (total_phases + 1))

    return {
        "figure": "9",
        "phase_us": phase_us,
        "per_worker_bandwidth": {
            name: series.bandwidth_series_mbps() for name, series in bandwidth.items()
        },
        "latency_series": {key: series.series() for key, series in latency.items()},
        "write_cost_series": write_cost_series.series(),
    }


def sweep(
    phase_us: float = 500_000.0,
    sample_window_us: float = 100_000.0,
    num_readers: int = 8,
    num_writers: int = 8,
    condition: str = "fragmented",
):
    sw = Sweep("fig09")
    sw.point(
        _point,
        label="dynamic",
        phase_us=phase_us,
        sample_window_us=sample_window_us,
        num_readers=num_readers,
        num_writers=num_writers,
        condition=condition,
    )
    return sw


def finalize(results) -> Dict[str, object]:
    return results[0]


def run(
    phase_us: float = 500_000.0,
    sample_window_us: float = 100_000.0,
    num_readers: int = 8,
    num_writers: int = 8,
    condition: str = "fragmented",
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            phase_us=phase_us,
            sample_window_us=sample_window_us,
            num_readers=num_readers,
            num_writers=num_writers,
            condition=condition,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    parts = [
        "Figure 9: dynamic workload (phase = %.1fs)" % (results["phase_us"] / 1e6),
        format_series("read device latency (us)", results["latency_series"]["read"][:40]),
        format_series("write device latency (us)", results["latency_series"]["write"][:40]),
        format_series("estimated write cost", results["write_cost_series"][:40]),
    ]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
