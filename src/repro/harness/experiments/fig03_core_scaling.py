"""Figure 3: throughput vs number of cores, server vs SmartNIC JBOF.

Four SSDs, deep queues, sweeping the target's core count.  Paper
shape: the server saturates ~1.5 MIOPS of 4 KiB random reads with 2
cores; the SmartNIC needs ~3 of its wimpy cores for the same traffic;
one core suffices at 128 KiB.
"""

from __future__ import annotations

from typing import Dict

from repro.fabric.smartnic import SERVER_CPU, SMARTNIC_CPU
from repro.harness.experiments.common import Sweep, merge_rows
from repro.harness.report import format_table
from repro.harness.testbed import Testbed, TestbedConfig
from repro.workloads import FioSpec

CORE_COUNTS = (1, 2, 3, 4, 6, 8)
NUM_SSDS = 4
WORKERS_PER_SSD = 2

_CPU_MODELS = {"server": SERVER_CPU, "smartnic": SMARTNIC_CPU}

_OPS = (
    ("rnd-read", 1.0, "random"),
    ("seq-write", 0.0, "sequential"),
)


def _point(host: str, cores: int, op: str, measure_us: float) -> dict:
    """One (host CPU, core count, op) throughput measurement."""
    read_ratio, pattern = next(
        (ratio, pat) for name, ratio, pat in _OPS if name == op
    )
    testbed = Testbed(
        TestbedConfig(
            scheme="vanilla",
            condition="clean",
            num_ssds=NUM_SSDS,
            num_cores=cores,
            cpu_model=_CPU_MODELS[host],
        )
    )
    for ssd_index in range(NUM_SSDS):
        for worker_index in range(WORKERS_PER_SSD):
            spec = FioSpec(
                f"{op}-{ssd_index}-{worker_index}",
                io_pages=1,
                queue_depth=64,
                read_ratio=read_ratio,
                pattern=pattern,
            )
            testbed.add_worker(spec, ssd=f"ssd{ssd_index}", region_pages=4096)
    results = testbed.run(warmup_us=100_000.0, measure_us=measure_us)
    kiops = sum(worker["iops"] for worker in results["workers"]) / 1000.0
    return {"host": host, "op": op, "cores": cores, "kiops": kiops}


def sweep(measure_us: float = 300_000.0, core_counts=CORE_COUNTS):
    """One point per (host, cores, op) in the original loop order."""
    sw = Sweep("fig03")
    for host in ("server", "smartnic"):
        for cores in core_counts:
            for op, _ratio, _pattern in _OPS:
                sw.point(
                    _point,
                    label=f"host={host},cores={cores},op={op}",
                    host=host,
                    cores=cores,
                    op=op,
                    measure_us=measure_us,
                )
    return sw


def finalize(results) -> Dict[str, object]:
    """Merge ordered point results into the figure's result dict."""
    return {"figure": "3", "rows": merge_rows(results)}


def run(
    measure_us: float = 300_000.0,
    core_counts=CORE_COUNTS,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(measure_us=measure_us, core_counts=core_counts).run(
            jobs=jobs, cache=cache, pool=pool
        )
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["host"], row["op"], row["cores"], row["kiops"]) for row in results["rows"]
    ]
    return format_table(
        ["host", "op", "cores", "KIOPS"],
        table_rows,
        title="Figure 3: 4KB throughput vs core count (4 SSDs)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
