"""Figure 14 (Appendix A): 4 KiB IOPS vs read ratio, clean vs fragmented.

Closed-loop 4 KiB random IO directly against the device, sweeping the
read fraction.  Paper shape: the "bathtub" -- on a fragmented device,
adding just 5% writes to a read-only stream drops total IOPS ~40%,
and the write-heavy end reaches only ~17% of the clean device's
throughput.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.harness.experiments.common import build_sweep, merge_rows
from repro.harness.report import format_table
from repro.sim import make_simulator
from repro.ssd import DeviceCommand, IoOp, SsdDevice, precondition_clean, precondition_fragmented

READ_RATIOS = (0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 0.9, 0.95, 1.0)


def _closed_loop(
    condition: str,
    read_ratio: float,
    queue_depth: int,
    duration_us: float,
    seed: int = 11,
):
    sim = make_simulator()
    device = SsdDevice(sim)
    if condition == "clean":
        precondition_clean(device)
    else:
        precondition_fragmented(device)
    rng = random.Random(seed)
    exported = device.exported_pages
    state = {"read_bytes": 0, "write_bytes": 0, "ops": 0}

    def issue():
        op = IoOp.READ if rng.random() < read_ratio else IoOp.WRITE
        device.submit(DeviceCommand(op, rng.randrange(exported - 1), 1), on_complete)

    def on_complete(cmd):
        if cmd.op.is_read:
            state["read_bytes"] += cmd.size_bytes
        else:
            state["write_bytes"] += cmd.size_bytes
        state["ops"] += 1
        if sim.now < duration_us:
            issue()

    for _ in range(queue_depth):
        issue()
    sim.run(until_us=duration_us)
    seconds = duration_us / 1e6
    mib = 1024 * 1024
    return {
        "read_mbps": state["read_bytes"] / seconds / mib,
        "write_mbps": state["write_bytes"] / seconds / mib,
        "kiops": state["ops"] / seconds / 1000.0,
    }


def _point(
    condition: str, read_ratio: float, queue_depth: int, duration_us: float, seed: int
) -> dict:
    point = _closed_loop(condition, read_ratio, queue_depth, duration_us, seed=seed)
    return {
        "condition": condition,
        "read_ratio": read_ratio,
        "read_mbps": point["read_mbps"],
        "write_mbps": point["write_mbps"],
        "kiops": point["kiops"],
    }


def sweep(
    duration_us: float = 500_000.0,
    queue_depth: int = 32,
    read_ratios=READ_RATIOS,
    root_seed: int = 42,
):
    """Declare one point per (condition, read ratio) cell."""
    return build_sweep(
        "fig14",
        {"condition": ("clean", "fragmented"), "read_ratio": read_ratios},
        _point,
        root_seed=root_seed,
        queue_depth=queue_depth,
        duration_us=duration_us,
    )


def finalize(results) -> Dict[str, object]:
    """Merge ordered point results into the figure's result dict."""
    return {"figure": "14", "rows": merge_rows(results)}


def run(
    duration_us: float = 500_000.0,
    queue_depth: int = 32,
    read_ratios=READ_RATIOS,
    jobs: int = 1,
    root_seed: int = 42,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            duration_us=duration_us,
            queue_depth=queue_depth,
            read_ratios=read_ratios,
            root_seed=root_seed,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (
            row["condition"],
            row["read_ratio"],
            row["read_mbps"],
            row["write_mbps"],
            row["kiops"],
        )
        for row in results["rows"]
    ]
    return format_table(
        ["condition", "read ratio", "read MB/s", "write MB/s", "KIOPS"],
        table_rows,
        title="Figure 14: 4KB performance vs read ratio (clean vs fragmented)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
