"""Figures 19-23 (Appendix D): characterising JBOF multi-tenant
interference on the vanilla target.

* Figure 19 -- IO *intensity*: two identical streams, one with twice
  the queue depth, sweeping IO size; the intense stream takes ~2x.
* Figure 20 -- IO *size*: a 4 KiB stream against a neighbour of
  growing IO size; large IOs dominate bandwidth.
* Figure 21 -- IO *pattern*: a read stream standalone vs mixed with a
  same-shape write stream; reads keep only a fraction when mixed.
* Figures 22/23 -- latency: a 4 KiB stream's average/p99.9 latency as
  a background stream of the opposite type grows its IO size.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.experiments.common import Sweep, run_workers
from repro.harness.report import format_table
from repro.harness.testbed import TestbedConfig
from repro.workloads import FioSpec

SIZES_KB = (4, 16, 64, 128, 256)


def _pair(spec_a: FioSpec, spec_b: FioSpec, measure_us: float, condition: str = "clean"):
    results = run_workers(
        TestbedConfig(scheme="vanilla", condition=condition),
        [spec_a, spec_b],
        warmup_us=150_000.0,
        measure_us=measure_us,
        region_pages=8192,
    )
    return results


def _point19(size_kb: int, op: str, measure_us: float) -> dict:
    io_pages = size_kb // 4
    read_ratio, pattern = (1.0, "random") if op == "rnd-rd" else (0.0, "sequential")
    base_depth = 16 if io_pages == 1 else 4
    results = _pair(
        FioSpec("intense", io_pages=io_pages, queue_depth=2 * base_depth,
                read_ratio=read_ratio, pattern=pattern),
        FioSpec("mild", io_pages=io_pages, queue_depth=base_depth,
                read_ratio=read_ratio, pattern=pattern),
        measure_us,
    )
    intense, mild = (w["bandwidth_mbps"] for w in results["workers"])
    return {"fig": "19", "op": op, "size_kb": size_kb,
            "intense_mbps": intense, "mild_mbps": mild}


def _point20(size_kb: int, measure_us: float) -> dict:
    results = _pair(
        FioSpec("s1-4k", io_pages=1, queue_depth=32, read_ratio=1.0),
        FioSpec("s2", io_pages=size_kb // 4, queue_depth=32, read_ratio=1.0),
        measure_us,
    )
    small, big = (w["bandwidth_mbps"] for w in results["workers"])
    return {"fig": "20", "neighbour_kb": size_kb, "stream1_mbps": small, "stream2_mbps": big}


def _point21(size_kb: int, measure_us: float) -> dict:
    io_pages = size_kb // 4
    solo = run_workers(
        TestbedConfig(scheme="vanilla", condition="clean"),
        [FioSpec("rd", io_pages=io_pages, queue_depth=16, read_ratio=1.0)],
        warmup_us=150_000.0,
        measure_us=measure_us,
        region_pages=8192,
    )["workers"][0]["bandwidth_mbps"]
    mixed = _pair(
        FioSpec("rd", io_pages=io_pages, queue_depth=16, read_ratio=1.0),
        FioSpec("wr", io_pages=io_pages, queue_depth=16, read_ratio=0.0,
                pattern="sequential"),
        measure_us,
    )["workers"][0]["bandwidth_mbps"]
    return {"fig": "21", "size_kb": size_kb, "standalone_mbps": solo, "mixed_mbps": mixed}


def _point22_23(fig: str, bg_size_kb: int, measure_us: float) -> dict:
    probe_read = fig == "22"
    probe = FioSpec(
        "probe",
        io_pages=1,
        queue_depth=8,
        read_ratio=1.0 if probe_read else 0.0,
        pattern="random" if probe_read else "sequential",
    )
    if bg_size_kb == 0:
        results = run_workers(
            TestbedConfig(scheme="vanilla", condition="clean"),
            [probe],
            warmup_us=150_000.0,
            measure_us=measure_us,
            region_pages=8192,
        )
    else:
        background = FioSpec(
            "bg",
            io_pages=bg_size_kb // 4,
            queue_depth=16,
            read_ratio=0.0 if probe_read else 1.0,
            pattern="sequential" if probe_read else "random",
        )
        results = _pair(probe, background, measure_us)
    worker = results["workers"][0]
    latency = worker["read_latency"] if probe_read else worker["write_latency"]
    return {
        "fig": fig,
        "bg_size_kb": bg_size_kb,
        "avg_us": latency["mean"],
        "p999_us": latency["p999"],
    }


def run_fig19(measure_us: float = 400_000.0) -> List[dict]:
    return [
        _point19(size_kb, op, measure_us)
        for size_kb in SIZES_KB
        for op in ("rnd-rd", "seq-wr")
    ]


def run_fig20(measure_us: float = 400_000.0) -> List[dict]:
    return [_point20(size_kb, measure_us) for size_kb in SIZES_KB]


def run_fig21(measure_us: float = 400_000.0) -> List[dict]:
    return [_point21(size_kb, measure_us) for size_kb in SIZES_KB]


def run_fig22_23(measure_us: float = 400_000.0) -> List[dict]:
    return [
        _point22_23(fig, size_kb, measure_us)
        for fig in ("22", "23")
        for size_kb in (0,) + SIZES_KB
    ]


def sweep(measure_us: float = 400_000.0):
    """One point per appendix cell, grouped 19 / 20 / 21 / 22-23."""
    sw = Sweep("fig19-23")
    for size_kb in SIZES_KB:
        for op in ("rnd-rd", "seq-wr"):
            sw.point(
                _point19,
                label=f"fig19:size={size_kb},op={op}",
                size_kb=size_kb,
                op=op,
                measure_us=measure_us,
            )
    for size_kb in SIZES_KB:
        sw.point(
            _point20, label=f"fig20:size={size_kb}", size_kb=size_kb, measure_us=measure_us
        )
    for size_kb in SIZES_KB:
        sw.point(
            _point21, label=f"fig21:size={size_kb}", size_kb=size_kb, measure_us=measure_us
        )
    for fig in ("22", "23"):
        for size_kb in (0,) + SIZES_KB:
            sw.point(
                _point22_23,
                label=f"fig{fig}:bg={size_kb}",
                fig=fig,
                bg_size_kb=size_kb,
                measure_us=measure_us,
            )
    return sw


def finalize(results) -> Dict[str, object]:
    """Slice the ordered point results back into the four sub-figures."""
    n19 = len(SIZES_KB) * 2
    n20 = n19 + len(SIZES_KB)
    n21 = n20 + len(SIZES_KB)
    return {
        "figure": "19-23",
        "fig19": list(results[:n19]),
        "fig20": list(results[n19:n20]),
        "fig21": list(results[n20:n21]),
        "fig22_23": list(results[n21:]),
    }


def run(
    measure_us: float = 400_000.0, jobs: int = 1, cache=None, pool=None
) -> Dict[str, object]:
    return finalize(sweep(measure_us=measure_us).run(jobs=jobs, cache=cache, pool=pool))


def summarize(results: Dict[str, object]) -> str:
    parts = [
        format_table(
            ["op", "size KB", "2x-QD MB/s", "1x-QD MB/s"],
            [(r["op"], r["size_kb"], r["intense_mbps"], r["mild_mbps"]) for r in results["fig19"]],
            title="Figure 19: intensity asymmetry",
        ),
        format_table(
            ["neighbour KB", "4KB stream MB/s", "neighbour MB/s"],
            [(r["neighbour_kb"], r["stream1_mbps"], r["stream2_mbps"]) for r in results["fig20"]],
            title="Figure 20: size asymmetry",
        ),
        format_table(
            ["size KB", "standalone MB/s", "mixed MB/s"],
            [(r["size_kb"], r["standalone_mbps"], r["mixed_mbps"]) for r in results["fig21"]],
            title="Figure 21: read bandwidth, standalone vs mixed with writes",
        ),
        format_table(
            ["fig", "bg size KB", "avg us", "p99.9 us"],
            [(r["fig"], r["bg_size_kb"], r["avg_us"], r["p999_us"]) for r in results["fig22_23"]],
            title="Figures 22/23: probe latency vs background IO size",
        ),
    ]
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
