"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

# Re-exported so drivers import their whole sweep API from one place.
from repro.harness.cache import CacheSpec, ResultCache, resolve_cache  # noqa: F401
from repro.harness.parallel import (
    Sweep,
    merge_rows,  # noqa: F401
    point_seed,  # noqa: F401
    run_sweep,  # noqa: F401
    sweep_axes,
)
from repro.harness.testbed import Testbed, TestbedConfig
from repro.metrics.fairness import f_util
from repro.workloads import FioSpec

#: Default measurement windows (microseconds of simulated time).  The
#: paper runs minutes; one simulated second is enough for steady state
#: at these device speeds, and benches scale these down further.
DEFAULT_WARMUP_US = 400_000.0
DEFAULT_MEASURE_US = 1_000_000.0

#: fio queue depths from Section 5.1: QD32 for 4 KiB, QD4 for 128 KiB.
QD_BY_PAGES = {1: 32, 32: 4}


def default_queue_depth(io_pages: int) -> int:
    return QD_BY_PAGES.get(io_pages, 8)


def read_spec(name: str, io_pages: int, queue_depth: Optional[int] = None) -> FioSpec:
    """Random-read worker (all microbenchmark reads are random)."""
    return FioSpec(
        name=name,
        io_pages=io_pages,
        queue_depth=queue_depth or default_queue_depth(io_pages),
        read_ratio=1.0,
        pattern="random",
    )


def write_spec(name: str, io_pages: int, queue_depth: Optional[int] = None) -> FioSpec:
    """Write worker: 128 KiB writes are sequential, 4 KiB writes random
    (Section 5.1)."""
    return FioSpec(
        name=name,
        io_pages=io_pages,
        queue_depth=queue_depth or default_queue_depth(io_pages),
        read_ratio=0.0,
        pattern="sequential" if io_pages >= 32 else "random",
    )


def run_workers(
    config: TestbedConfig,
    specs: List[FioSpec],
    warmup_us: float = DEFAULT_WARMUP_US,
    measure_us: float = DEFAULT_MEASURE_US,
    region_pages: int = 2048,
) -> Dict[str, object]:
    """Stand up a testbed, run the workers, return the results dict."""
    testbed = Testbed(config)
    for spec in specs:
        testbed.add_worker(spec, region_pages=region_pages)
    results = testbed.run(warmup_us=warmup_us, measure_us=measure_us)
    results["testbed"] = testbed
    return results


def build_sweep(
    name: str,
    axes: Mapping[str, Iterable[Any]],
    point_fn: Callable[..., Any],
    root_seed: int = 42,
    **fixed: Any,
) -> Sweep:
    """Declare one sweep point per combination of the named axes.

    Axes expand in nested-loop order (last axis fastest), matching the
    open-coded loops the drivers used before, so row order is stable.
    ``point_fn`` receives the axis values, the ``fixed`` kwargs, and a
    per-point ``seed`` derived from ``root_seed`` and the point label.
    """
    sweep = Sweep(name, root_seed=root_seed)
    for combo in sweep_axes(axes):
        label = ",".join(f"{key}={combo[key]}" for key in combo)
        sweep.point(
            point_fn, label=label, seed=sweep.seed_for(label), **fixed, **combo
        )
    return sweep


_standalone_cache: Dict[Tuple, float] = {}


def standalone_bandwidth(
    condition: str,
    spec: FioSpec,
    measure_us: float = DEFAULT_MEASURE_US,
    device_profile: str = "dct983",
) -> float:
    """Bandwidth of one worker running exclusively on the SSD.

    This is the denominator of the paper's f-Util metric; computed on
    the vanilla configuration (no isolation machinery in the way) and
    cached per (condition, shape).
    """
    key = (
        condition,
        device_profile,
        spec.io_pages,
        spec.queue_depth,
        spec.read_ratio,
        spec.pattern,
        measure_us,
    )
    cached = _standalone_cache.get(key)
    if cached is not None:
        return cached
    solo = FioSpec(
        name="standalone",
        io_pages=spec.io_pages,
        queue_depth=spec.queue_depth,
        read_ratio=spec.read_ratio,
        pattern=spec.pattern,
    )
    results = run_workers(
        TestbedConfig(scheme="vanilla", condition=condition, device_profile=device_profile),
        [solo],
        warmup_us=200_000.0,
        measure_us=measure_us,
        region_pages=16384,
    )
    bandwidth = results["workers"][0]["bandwidth_mbps"]
    _standalone_cache[key] = bandwidth
    return bandwidth


def f_utils_for(
    results: Dict[str, object],
    specs: List[FioSpec],
    condition: str,
    device_profile: str = "dct983",
    standalone_measure_us: float = DEFAULT_MEASURE_US,
) -> List[float]:
    """Per-worker f-Util values for one run.

    ``standalone_measure_us`` scales the denominator's measurement
    window; quick/golden runs shrink it along with their own windows.
    """
    total = len(specs)
    values = []
    for worker, spec in zip(results["workers"], specs):
        standalone = standalone_bandwidth(
            condition,
            spec,
            measure_us=standalone_measure_us,
            device_profile=device_profile,
        )
        values.append(f_util(worker["bandwidth_mbps"], standalone, total))
    return values
