"""Figure 2: unloaded latency vs IO size, server vs SmartNIC JBOF.

QD1 fio against one SSD through the NVMe-oF target, once with the x86
server CPU model and once with the wimpy SmartNIC cores.  Paper shape:
SmartNIC adds ~1% latency for small random reads, rising to ~20% at
128/256 KiB; sequential writes differ by a few microseconds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fabric.smartnic import SERVER_CPU, SMARTNIC_CPU
from repro.harness.experiments.common import run_workers
from repro.harness.report import format_table
from repro.harness.testbed import TestbedConfig
from repro.workloads import FioSpec

#: IO sizes on the figure's x-axis, in KiB.
IO_SIZES_KB = (4, 8, 16, 32, 128, 256)


def run(measure_us: float = 300_000.0) -> Dict[str, object]:
    rows: List[dict] = []
    for host, cpu_model in (("server", SERVER_CPU), ("smartnic", SMARTNIC_CPU)):
        for size_kb in IO_SIZES_KB:
            io_pages = size_kb // 4
            for op_name, spec in (
                (
                    "rnd-read",
                    FioSpec("w0", io_pages=io_pages, queue_depth=1, read_ratio=1.0),
                ),
                (
                    "seq-write",
                    FioSpec(
                        "w0",
                        io_pages=io_pages,
                        queue_depth=1,
                        read_ratio=0.0,
                        pattern="sequential",
                    ),
                ),
            ):
                results = run_workers(
                    TestbedConfig(scheme="vanilla", condition="clean", cpu_model=cpu_model),
                    [spec],
                    warmup_us=50_000.0,
                    measure_us=measure_us,
                    region_pages=8192,
                )
                worker = results["workers"][0]
                latency = (
                    worker["read_latency"] if op_name == "rnd-read" else worker["write_latency"]
                )
                rows.append(
                    {
                        "host": host,
                        "op": op_name,
                        "size_kb": size_kb,
                        "avg_latency_us": latency["mean"],
                    }
                )
    return {"figure": "2", "rows": rows}


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["host"], row["op"], row["size_kb"], row["avg_latency_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["host", "op", "size_KB", "avg_latency_us"],
        table_rows,
        title="Figure 2: unloaded latency vs IO size (server vs SmartNIC)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
