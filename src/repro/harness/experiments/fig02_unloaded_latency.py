"""Figure 2: unloaded latency vs IO size, server vs SmartNIC JBOF.

QD1 fio against one SSD through the NVMe-oF target, once with the x86
server CPU model and once with the wimpy SmartNIC cores.  Paper shape:
SmartNIC adds ~1% latency for small random reads, rising to ~20% at
128/256 KiB; sequential writes differ by a few microseconds.
"""

from __future__ import annotations

from typing import Dict

from repro.fabric.smartnic import SERVER_CPU, SMARTNIC_CPU
from repro.harness.experiments.common import build_sweep, merge_rows, run_workers
from repro.harness.report import format_table
from repro.harness.testbed import TestbedConfig
from repro.workloads import FioSpec

#: IO sizes on the figure's x-axis, in KiB.
IO_SIZES_KB = (4, 8, 16, 32, 128, 256)

_CPU_MODELS = {"server": SERVER_CPU, "smartnic": SMARTNIC_CPU}


def _point(host: str, size_kb: int, op: str, measure_us: float, seed: int) -> dict:
    """One (host CPU, IO size, op) latency measurement."""
    io_pages = size_kb // 4
    if op == "rnd-read":
        spec = FioSpec("w0", io_pages=io_pages, queue_depth=1, read_ratio=1.0)
    else:
        spec = FioSpec(
            "w0", io_pages=io_pages, queue_depth=1, read_ratio=0.0, pattern="sequential"
        )
    results = run_workers(
        TestbedConfig(
            scheme="vanilla", condition="clean", cpu_model=_CPU_MODELS[host], seed=seed
        ),
        [spec],
        warmup_us=50_000.0,
        measure_us=measure_us,
        region_pages=8192,
    )
    worker = results["workers"][0]
    latency = worker["read_latency"] if op == "rnd-read" else worker["write_latency"]
    return {
        "host": host,
        "op": op,
        "size_kb": size_kb,
        "avg_latency_us": latency["mean"],
    }


def sweep(measure_us: float = 300_000.0, root_seed: int = 42):
    """Declare the figure's sweep points (one per host/size/op cell)."""
    return build_sweep(
        "fig02",
        {"host": ("server", "smartnic"), "size_kb": IO_SIZES_KB, "op": ("rnd-read", "seq-write")},
        _point,
        root_seed=root_seed,
        measure_us=measure_us,
    )


def finalize(results) -> Dict[str, object]:
    """Merge ordered point results into the figure's result dict."""
    return {"figure": "2", "rows": merge_rows(results)}


def run(
    measure_us: float = 300_000.0,
    jobs: int = 1,
    root_seed: int = 42,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(measure_us=measure_us, root_seed=root_seed).run(
            jobs=jobs, cache=cache, pool=pool
        )
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["host"], row["op"], row["size_kb"], row["avg_latency_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["host", "op", "size_KB", "avg_latency_us"],
        table_rows,
        title="Figure 2: unloaded latency vs IO size (server vs SmartNIC)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
