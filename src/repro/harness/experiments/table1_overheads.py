"""Table 1: Gimbal's CPU overhead versus the vanilla target.

(a) Mean per-IO core time on the submission and completion paths
    (reported in the paper's unit: 125 cycles = 1 us), for 4 KiB reads
    at QD1 and QD32.  The difference between the schemes is exactly
    the scheduler's ``submit_overhead_us``/``complete_overhead_us``.
(b) Maximum 4 KiB read IOPS against a NULL backend with 1 core /
    1 worker and 4 cores / 8 workers -- the SmartNIC core, not the
    storage, is the bottleneck, so this measures the switch's cost.

Paper shape: Gimbal adds ~40-60% scheduler cycles and loses ~9-12% of
NULL-device IOPS versus vanilla SPDK.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.experiments.common import Sweep
from repro.harness.report import format_table
from repro.harness.testbed import Testbed, TestbedConfig
from repro.workloads import FioSpec

CYCLE_CASES = (("1 worker (QD1)", 1, 1), ("16 workers (QD32)", 32, 16))
NULL_IOPS_CASES = (("1 core, 1 worker", 1, 1), ("4 cores, 8 workers", 4, 8))


def _cycles_case(
    scheme: str, queue_depth: int, workers: int, measure_us: float, seed: int = 42
) -> Dict[str, float]:
    testbed = Testbed(TestbedConfig(scheme=scheme, condition="clean", seed=seed))
    for index in range(workers):
        testbed.add_worker(
            FioSpec(f"w{index}", io_pages=1, queue_depth=queue_depth, read_ratio=1.0),
            region_pages=2048,
        )
    testbed.run(warmup_us=50_000.0, measure_us=measure_us)
    core = testbed.target.cores[0]
    cycles = core.mean_cycles_by_tag()
    return {"submit": cycles.get("submit", 0.0), "complete": cycles.get("complete", 0.0)}


def _null_iops_case(
    scheme: str, cores: int, workers: int, measure_us: float, seed: int = 42
) -> float:
    # One NULL backend per core: pipelines are pinned per SSD, so the
    # multi-core case distributes tenants across per-core pipelines
    # exactly as the paper's multi-core extension balances them.
    testbed = Testbed(
        TestbedConfig(
            scheme=scheme,
            condition="none",
            device_profile="null",
            num_cores=cores,
            num_ssds=cores,
            seed=seed,
        )
    )
    for index in range(workers):
        testbed.add_worker(
            FioSpec(f"w{index}", io_pages=1, queue_depth=64, read_ratio=1.0),
            ssd=f"ssd{index % cores}",
            region_pages=2048,
        )
    results = testbed.run(warmup_us=20_000.0, measure_us=measure_us)
    return sum(worker["iops"] for worker in results["workers"]) / 1000.0


def sweep(measure_us: float = 200_000.0, root_seed: int = 42):
    # Each (case, scheme) measurement is one sweep point; the
    # vanilla/gimbal pairing happens in finalize() on the ordered
    # results.
    sw = Sweep("table1", root_seed=root_seed)
    for label, queue_depth, workers in CYCLE_CASES:
        for scheme in ("vanilla", "gimbal"):
            point_label = f"cycles:{label}:{scheme}"
            sw.point(
                _cycles_case,
                label=point_label,
                scheme=scheme,
                queue_depth=queue_depth,
                workers=workers,
                measure_us=measure_us,
                seed=sw.seed_for(point_label),
            )
    for label, cores, workers in NULL_IOPS_CASES:
        for scheme in ("vanilla", "gimbal"):
            point_label = f"null-iops:{label}:{scheme}"
            sw.point(
                _null_iops_case,
                label=point_label,
                scheme=scheme,
                cores=cores,
                workers=workers,
                measure_us=measure_us,
                seed=sw.seed_for(point_label),
            )
    return sw


def finalize(results) -> Dict[str, object]:
    cycle_rows: List[dict] = []
    for case_index, (label, _queue_depth, _workers) in enumerate(CYCLE_CASES):
        vanilla = results[2 * case_index]
        gimbal = results[2 * case_index + 1]
        for path in ("submit", "complete"):
            overhead_pct = (
                (gimbal[path] - vanilla[path]) / vanilla[path] * 100.0 if vanilla[path] else 0.0
            )
            cycle_rows.append(
                {
                    "case": label,
                    "path": path,
                    "vanilla_cycles": vanilla[path],
                    "gimbal_cycles": gimbal[path],
                    "overhead_pct": overhead_pct,
                }
            )
    iops_rows: List[dict] = []
    offset = 2 * len(CYCLE_CASES)
    for case_index, (label, _cores, _workers) in enumerate(NULL_IOPS_CASES):
        vanilla = results[offset + 2 * case_index]
        gimbal = results[offset + 2 * case_index + 1]
        iops_rows.append(
            {
                "case": label,
                "vanilla_kiops": vanilla,
                "gimbal_kiops": gimbal,
                "loss_pct": (vanilla - gimbal) / vanilla * 100.0 if vanilla else 0.0,
            }
        )
    return {"table": "1", "cycles": cycle_rows, "null_iops": iops_rows}


def run(
    measure_us: float = 200_000.0,
    jobs: int = 1,
    root_seed: int = 42,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(measure_us=measure_us, root_seed=root_seed).run(
            jobs=jobs, cache=cache, pool=pool
        )
    )


def summarize(results: Dict[str, object]) -> str:
    parts = [
        format_table(
            ["case", "path", "vanilla cycles", "gimbal cycles", "overhead %"],
            [
                (r["case"], r["path"], r["vanilla_cycles"], r["gimbal_cycles"], r["overhead_pct"])
                for r in results["cycles"]
            ],
            title="Table 1a: per-IO CPU cycles (125 cycles = 1us), 4KB read",
        ),
        format_table(
            ["case", "vanilla KIOPS", "gimbal KIOPS", "loss %"],
            [
                (r["case"], r["vanilla_kiops"], r["gimbal_kiops"], r["loss_pct"])
                for r in results["null_iops"]
            ],
            title="Table 1b: max IOPS with NULL device (4KB read)",
        ),
    ]
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
