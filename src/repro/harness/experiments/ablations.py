"""Ablation study: disable one Gimbal mechanism at a time.

Runs the Figure 7-style workloads against each variant in
:mod:`repro.core.ablations`:

* mixed IO sizes on a clean device (exercises virtual slots),
* mixed read/write on a clean device (exercises the dynamic write
  cost -- a frozen worst case recreates ReFlex's clean-write collapse),
* mixed read/write on a fragmented device (exercises the dual bucket
  and the threshold dynamics).
"""

from __future__ import annotations

from typing import Dict

from repro.core.ablations import ABLATIONS
from repro.harness.experiments.common import Sweep, merge_rows, read_spec, run_workers, write_spec
from repro.harness.report import format_table
from repro.harness.testbed import TestbedConfig
from repro.metrics.histogram import LatencyHistogram

DEFAULT_VARIANTS = ("full", "fixed-threshold", "single-bucket", "no-slots", "static-cost")


def _case_specs(case: str, workers: int):
    if case == "sizes-clean":
        specs = [read_spec(f"small{i}", 1) for i in range(workers)]
        specs += [read_spec(f"large{i}", 32) for i in range(max(1, workers // 4))]
        return "clean", specs, ["4KB"] * workers + ["128KB"] * max(1, workers // 4)
    if case == "rw-clean":
        specs = [read_spec(f"rd{i}", 32) for i in range(workers)]
        specs += [write_spec(f"wr{i}", 32) for i in range(workers)]
    else:  # rw-frag
        specs = [read_spec(f"rd{i}", 1) for i in range(workers)]
        specs += [write_spec(f"wr{i}", 1) for i in range(workers)]
    condition = "clean" if case == "rw-clean" else "fragmented"
    return condition, specs, ["read"] * workers + ["write"] * workers


def _point(
    case: str, variant: str, measure_us: float, warmup_us: float, workers: int
) -> dict:
    """One (case, ablation variant) run."""
    condition, specs, groups = _case_specs(case, workers)
    scheduler_cls = ABLATIONS[variant]
    results = run_workers(
        TestbedConfig(
            scheme="gimbal",
            condition=condition,
            scheduler_factory=scheduler_cls,
        ),
        specs,
        warmup_us=warmup_us,
        measure_us=measure_us,
        region_pages=1600,
    )
    by_group: Dict[str, float] = {}
    for worker, group in zip(results["workers"], groups):
        by_group[group] = by_group.get(group, 0.0) + worker["bandwidth_mbps"]
    tail = LatencyHistogram()
    for worker in results["testbed"].workers:
        tail.merge(worker.read_latency)
        tail.merge(worker.write_latency)
    return {
        "case": case,
        "variant": variant,
        "by_group_mbps": by_group,
        "total_mbps": results["total_bandwidth_mbps"],
        "p99_us": tail.percentile(99.0),
    }


def sweep(
    measure_us: float = 900_000.0,
    warmup_us: float = 500_000.0,
    workers: int = 8,
    variants=DEFAULT_VARIANTS,
):
    """One point per (case, variant) in the original loop order."""
    sw = Sweep("ablations")
    for case in ("sizes-clean", "rw-clean", "rw-frag"):
        for variant in variants:
            sw.point(
                _point,
                label=f"case={case},variant={variant}",
                case=case,
                variant=variant,
                measure_us=measure_us,
                warmup_us=warmup_us,
                workers=workers,
            )
    return sw


def finalize(results) -> Dict[str, object]:
    return {"experiment": "ablations", "rows": merge_rows(results)}


def run(
    measure_us: float = 900_000.0,
    warmup_us: float = 500_000.0,
    workers: int = 8,
    variants=DEFAULT_VARIANTS,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            measure_us=measure_us,
            warmup_us=warmup_us,
            workers=workers,
            variants=variants,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = []
    for row in results["rows"]:
        groups = ", ".join(f"{k}={v:.0f}" for k, v in sorted(row["by_group_mbps"].items()))
        table_rows.append((row["case"], row["variant"], row["total_mbps"], row["p99_us"], groups))
    return format_table(
        ["case", "variant", "total MB/s", "p99 us", "per-class MB/s"],
        table_rows,
        title="Ablations: Gimbal with one mechanism disabled at a time",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
