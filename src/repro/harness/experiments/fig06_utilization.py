"""Figure 6: device utilisation under uniform tenants, per scheme.

16 workers of the *same* workload per run, across the four cases the
paper plots: 128 KiB on Clean-SSD (read, write) and 4 KiB on
Fragment-SSD (read, write).  Paper shape: Gimbal tracks FlashFQ's
aggregate bandwidth (both near device max) while ReFlex collapses
clean writes (~x6.6) and Parda under-reads the fragmented device
(~x2.6); Gimbal's credit flow control keeps average latency far below
the work-conserving schemes.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import Sweep, merge_rows, read_spec, run_workers, write_spec
from repro.harness.report import format_table
from repro.harness.testbed import SCHEMES, TestbedConfig

#: (label, condition, io_pages, is_read)
CASES = (
    ("C-R", "clean", 32, True),
    ("C-W", "clean", 32, False),
    ("F-R", "fragmented", 1, True),
    ("F-W", "fragmented", 1, False),
)

_CASE_BY_LABEL = {label: (condition, io_pages, is_read) for label, condition, io_pages, is_read in CASES}

NUM_WORKERS = 16


def _point(
    case: str, scheme: str, num_workers: int, warmup_us: float, measure_us: float
) -> dict:
    """One (case, scheme) run of ``num_workers`` identical tenants."""
    condition, io_pages, is_read = _CASE_BY_LABEL[case]
    make = read_spec if is_read else write_spec
    specs = [make(f"w{i}", io_pages) for i in range(num_workers)]
    results = run_workers(
        TestbedConfig(scheme=scheme, condition=condition),
        specs,
        warmup_us=warmup_us,
        measure_us=measure_us,
        region_pages=1600,
    )
    latency_key = "read_latency" if is_read else "write_latency"
    total_count = sum(w[latency_key]["count"] for w in results["workers"])
    mean_latency = (
        sum(w[latency_key]["mean"] * w[latency_key]["count"] for w in results["workers"])
        / total_count
        if total_count
        else 0.0
    )
    return {
        "case": case,
        "scheme": scheme,
        "aggregate_mbps": results["total_bandwidth_mbps"],
        "avg_latency_us": mean_latency,
    }


def sweep(
    measure_us: float = 1_000_000.0,
    warmup_us: float = 500_000.0,
    schemes=SCHEMES,
    num_workers: int = NUM_WORKERS,
):
    """One point per (case, scheme) in the original loop order."""
    sw = Sweep("fig06")
    for label, _condition, _io_pages, _is_read in CASES:
        for scheme in schemes:
            sw.point(
                _point,
                label=f"case={label},scheme={scheme}",
                case=label,
                scheme=scheme,
                num_workers=num_workers,
                warmup_us=warmup_us,
                measure_us=measure_us,
            )
    return sw


def finalize(results) -> Dict[str, object]:
    """Merge ordered point results into the figure's result dict."""
    return {"figure": "6", "rows": merge_rows(results)}


def run(
    measure_us: float = 1_000_000.0,
    warmup_us: float = 500_000.0,
    schemes=SCHEMES,
    num_workers: int = NUM_WORKERS,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            measure_us=measure_us,
            warmup_us=warmup_us,
            schemes=schemes,
            num_workers=num_workers,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["case"], row["scheme"], row["aggregate_mbps"], row["avg_latency_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["case", "scheme", "aggregate MB/s", "avg latency us"],
        table_rows,
        title="Figure 6: utilisation with 16 identical workers "
        "(C=clean 128KB, F=fragmented 4KB)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
