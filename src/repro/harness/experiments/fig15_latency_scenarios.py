"""Figure 15 (Appendix A): random-read latency vs IO size, four scenarios.

Average read latency for one probing read stream under: a vanilla
(clean, otherwise idle) device, a fragmented device, a 70/30
read/write background mix, and QD8 self-load.  Paper shape: all three
perturbations inflate latency substantially (52-84% on average), with
larger IOs degrading the most.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.harness.experiments.common import Sweep, merge_rows
from repro.harness.report import format_table
from repro.sim import make_simulator
from repro.ssd import DeviceCommand, IoOp, SsdDevice, precondition_clean, precondition_fragmented

IO_SIZES_KB = (4, 8, 16, 32, 64, 128, 256)
SCENARIOS = ("vanilla", "fragmented", "70/30-rw", "qd8")


def _scenario_latency(scenario: str, io_pages: int, duration_us: float) -> float:
    sim = make_simulator()
    device = SsdDevice(sim)
    if scenario == "fragmented":
        precondition_fragmented(device)
    else:
        precondition_clean(device)
    rng = random.Random(13)
    exported = device.exported_pages
    state = {"latency": 0.0, "count": 0}

    probe_depth = 8 if scenario == "qd8" else 1

    def issue_probe():
        device.submit(
            DeviceCommand(IoOp.READ, rng.randrange(exported - io_pages), io_pages),
            probe_done,
        )

    def probe_done(cmd):
        state["latency"] += cmd.latency_us
        state["count"] += 1
        if sim.now < duration_us:
            issue_probe()

    if scenario == "70/30-rw":
        # Background 70/30 4 KiB mix at QD16.
        def issue_background():
            op = IoOp.READ if rng.random() < 0.7 else IoOp.WRITE
            device.submit(
                DeviceCommand(op, rng.randrange(exported - 1), 1), background_done
            )

        def background_done(cmd):
            if sim.now < duration_us:
                issue_background()

        for _ in range(16):
            issue_background()

    for _ in range(probe_depth):
        issue_probe()
    sim.run(until_us=duration_us)
    return state["latency"] / max(state["count"], 1)


def _point(scenario: str, size_kb: int, duration_us: float) -> dict:
    latency = _scenario_latency(scenario, size_kb // 4, duration_us)
    return {"scenario": scenario, "size_kb": size_kb, "avg_latency_us": latency}


def sweep(duration_us: float = 300_000.0, io_sizes_kb=IO_SIZES_KB):
    """One point per (scenario, IO size) in the original loop order."""
    sw = Sweep("fig15")
    for scenario in SCENARIOS:
        for size_kb in io_sizes_kb:
            sw.point(
                _point,
                label=f"scenario={scenario},size_kb={size_kb}",
                scenario=scenario,
                size_kb=size_kb,
                duration_us=duration_us,
            )
    return sw


def finalize(results) -> Dict[str, object]:
    return {"figure": "15", "rows": merge_rows(results)}


def run(
    duration_us: float = 300_000.0,
    io_sizes_kb=IO_SIZES_KB,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(duration_us=duration_us, io_sizes_kb=io_sizes_kb).run(
            jobs=jobs, cache=cache, pool=pool
        )
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["scenario"], row["size_kb"], row["avg_latency_us"]) for row in results["rows"]
    ]
    return format_table(
        ["scenario", "size KB", "avg latency us"],
        table_rows,
        title="Figure 15: random read latency under four scenarios",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
