"""Rack-scale multi-JBOF churn: hundreds of tenants over N JBOFs.

The paper's application experiments (Sections 4.3, 5.6) run a handful
of DB instances against one JBOF.  This driver scales the same stack
to the rack: a heavy-hitter + long-tail :class:`TenantPopulation`
arrives, runs and departs over N JBOFs x M SSDs, exercising the full
tenant lifecycle -- file create/delete, mega-blob reclamation back to
the rack allocator, replica read steering -- under churn.

Axes: scheduling scheme x rack size (JBOF count) x churn rate x
population skew.  Each point reports rack occupancy, allocator
behaviour (a run must end with zero leaked mega blobs), per-tenant
fairness (Jain's index over per-tenant throughput) and the per-tenant
read-latency aggregate.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import Sweep, merge_rows
from repro.harness.kvcluster import KvCluster, KvClusterConfig
from repro.harness.report import format_table
from repro.metrics import jain_index
from repro.sim.rng import derive_seed
from repro.workloads.population import TenantPopulation, peak_concurrent


def _aggregate(outcome: Dict[str, object]) -> Dict[str, object]:
    """Per-tenant fairness/latency rollup of one population run."""
    tenants = outcome["tenants"]
    kops = [tenant["kops"] for tenant in tenants]
    reads = [tenant["read_latency"] for tenant in tenants]
    read_count = sum(summary["count"] for summary in reads)
    read_mean = (
        sum(summary["mean"] * summary["count"] for summary in reads) / read_count
        if read_count
        else 0.0
    )
    return {
        "tenants_run": len(tenants),
        "peak_tenants": outcome["peak_tenants"],
        "peak_megas_in_use": outcome["peak_megas_in_use"],
        "megas_allocated": outcome["megas_allocated"],
        "megas_leaked": outcome["megas_leaked"],
        "reads_to_primary": outcome["reads_to_primary"],
        "reads_to_shadow": outcome["reads_to_shadow"],
        "drained_us": outcome["drained_us"],
        "total_kops": sum(kops),
        "jain": jain_index(kops) if any(k > 0 for k in kops) else 0.0,
        "read_avg_us": read_mean,
        "read_p999_us": max((summary["p999"] for summary in reads), default=0.0),
    }


def _point(
    scheme: str,
    jbofs: int,
    ssds_per_jbof: int,
    tenants: int,
    churn: float,
    skew: float,
    horizon_us: float,
    condition: str,
    seed: int,
    shards: int = 0,
    shard_mode: str = "auto",
) -> dict:
    """One full churn schedule on one rack configuration.

    ``shards > 0`` runs the rack through the conservative sharded
    execution layer (:mod:`repro.sim.shard`).  ``shards`` is a real
    point kwarg (not ambient state) so the result cache fingerprints
    it; the row records only the deterministic shard fields, keeping
    rows byte-identical between inline and multi-process executions of
    the same plan.
    """
    cluster = KvCluster(
        KvClusterConfig(
            scheme=scheme,
            condition=condition,
            num_jbofs=jbofs,
            ssds_per_jbof=ssds_per_jbof,
            seed=seed,
        ),
        shards=shards or None,
        shard_mode=shard_mode,
    )
    population = TenantPopulation(
        tenants=tenants,
        horizon_us=horizon_us,
        skew=skew,
        churn=churn,
        seed=derive_seed(seed, "population"),
    )
    specs = population.generate()
    outcome = cluster.run_population(specs)
    row = {
        "scheme": scheme,
        "jbofs": jbofs,
        "churn": churn,
        "skew": skew,
        "peak_planned": peak_concurrent(specs),
    }
    row.update(_aggregate(outcome))
    shard = outcome.get("shard")
    if shard is not None:
        row["shards"] = shard["shards"]
        row["shards_requested"] = shard["requested"]
        row["shards_clamped"] = shard["clamped"]
        row["shard_windows"] = shard["windows"]
        row["shard_messages"] = shard["messages"]
    return row


def explore_space(
    tenant_counts=(25, 50, 75, 100, 125, 150, 175, 200),
    churns=(0.4, 0.8),
    jbofs: int = 4,
    ssds_per_jbof: int = 4,
    skew: float = 0.9,
    horizon_us: float = 120_000.0,
    condition: str = "clean",
    jain_floor: float = 0.3,
    root_seed: int = 42,
):
    """Capacity-planning hunt: how many tenants before fairness cliffs?

    Scans tenant count per churn rate on a Gimbal-managed rack and
    locates where Jain's index falls through ``jain_floor`` -- the
    knee a rack operator sizes against.  Points here are expensive
    (full churn schedules), which is exactly when surrogate screening
    pays: the engine simulates the knee's neighbourhood, not the grid.
    """
    from repro.harness.adaptive import CrossoverSpec, ExploreSpace

    return ExploreSpace(
        name="rack-capacity",
        point_fn=_point,
        axes={"churn": list(churns), "tenants": list(tenant_counts)},
        fixed={
            "scheme": "gimbal",
            "jbofs": jbofs,
            "ssds_per_jbof": ssds_per_jbof,
            "skew": skew,
            "horizon_us": horizon_us,
            "condition": condition,
        },
        crossover=CrossoverSpec(along="tenants", metric="jain", level=jain_floor),
        root_seed=root_seed,
    )


def sweep(
    schemes=("gimbal", "vanilla"),
    rack=(4,),
    churns=(0.8,),
    skews=(0.9,),
    tenants: int = 200,
    ssds_per_jbof: int = 4,
    horizon_us: float = 600_000.0,
    condition: str = "clean",
    root_seed: int = 42,
    shards: int = 0,
    shard_mode: str = "auto",
):
    """One point per (scheme, rack size, churn, skew) combination."""
    sw = Sweep("rack", root_seed=root_seed)
    for scheme in schemes:
        for jbofs in rack:
            for churn in churns:
                for skew in skews:
                    label = f"scheme={scheme},jbofs={jbofs},churn={churn},skew={skew}"
                    sw.point(
                        _point,
                        label=label,
                        scheme=scheme,
                        jbofs=jbofs,
                        ssds_per_jbof=ssds_per_jbof,
                        tenants=tenants,
                        churn=churn,
                        skew=skew,
                        horizon_us=horizon_us,
                        condition=condition,
                        seed=sw.seed_for(label),
                        shards=shards,
                        shard_mode=shard_mode,
                    )
    return sw


def finalize(results) -> Dict[str, object]:
    rows = merge_rows(results)
    leaked = sum(row["megas_leaked"] for row in rows)
    if leaked:
        raise RuntimeError(f"rack churn leaked {leaked} mega blobs across the sweep")
    out: Dict[str, object] = {"figure": "rack", "rows": rows}
    # Shard fan-outs that the worker-pool budget reduced: journaled on
    # the merged result because per-point bumps land in worker-process
    # observability sessions, which the parent never sees.
    clamped = sum(1 for row in rows if row.get("shards_clamped"))
    if clamped:
        out["shards_clamped"] = clamped
    return out


def run(
    schemes=("gimbal", "vanilla"),
    rack=(4,),
    churns=(0.8,),
    skews=(0.9,),
    tenants: int = 200,
    ssds_per_jbof: int = 4,
    horizon_us: float = 600_000.0,
    condition: str = "clean",
    root_seed: int = 42,
    shards: int = 0,
    shard_mode: str = "auto",
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            schemes=schemes,
            rack=rack,
            churns=churns,
            skews=skews,
            tenants=tenants,
            ssds_per_jbof=ssds_per_jbof,
            horizon_us=horizon_us,
            condition=condition,
            root_seed=root_seed,
            shards=shards,
            shard_mode=shard_mode,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (
            row["scheme"],
            row["jbofs"],
            row["churn"],
            row["skew"],
            row["peak_tenants"],
            row["total_kops"],
            row["jain"],
            row["read_p999_us"],
            row["megas_leaked"],
        )
        for row in results["rows"]
    ]
    return format_table(
        [
            "scheme",
            "JBOFs",
            "churn",
            "skew",
            "peak tenants",
            "KOPS",
            "Jain",
            "read p99.9 us",
            "leaked megas",
        ],
        table_rows,
        title="Rack-scale churn: tenant population over a multi-JBOF rack",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
