"""Rack-scale multi-JBOF churn: hundreds of tenants over N JBOFs.

The paper's application experiments (Sections 4.3, 5.6) run a handful
of DB instances against one JBOF.  This driver scales the same stack
to the rack: a heavy-hitter + long-tail :class:`TenantPopulation`
arrives, runs and departs over N JBOFs x M SSDs, exercising the full
tenant lifecycle -- file create/delete, mega-blob reclamation back to
the rack allocator, replica read steering -- under churn.

Axes: scheduling scheme x rack size (JBOF count) x churn rate x
population skew.  Each point reports rack occupancy, allocator
behaviour (a run must end with zero leaked mega blobs), per-tenant
fairness (Jain's index over per-tenant throughput) and the per-tenant
read-latency aggregate.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import Sweep, merge_rows
from repro.harness.kvcluster import KvCluster, KvClusterConfig
from repro.harness.report import format_table
from repro.metrics import jain_index
from repro.sim.rng import derive_seed
from repro.workloads.population import TenantPopulation, peak_concurrent


def _aggregate(outcome: Dict[str, object]) -> Dict[str, object]:
    """Per-tenant fairness/latency rollup of one population run."""
    tenants = outcome["tenants"]
    kops = [tenant["kops"] for tenant in tenants]
    reads = [tenant["read_latency"] for tenant in tenants]
    read_count = sum(summary["count"] for summary in reads)
    read_mean = (
        sum(summary["mean"] * summary["count"] for summary in reads) / read_count
        if read_count
        else 0.0
    )
    return {
        "tenants_run": len(tenants),
        "peak_tenants": outcome["peak_tenants"],
        "peak_megas_in_use": outcome["peak_megas_in_use"],
        "megas_allocated": outcome["megas_allocated"],
        "megas_leaked": outcome["megas_leaked"],
        "reads_to_primary": outcome["reads_to_primary"],
        "reads_to_shadow": outcome["reads_to_shadow"],
        "drained_us": outcome["drained_us"],
        "total_kops": sum(kops),
        "jain": jain_index(kops) if any(k > 0 for k in kops) else 0.0,
        "read_avg_us": read_mean,
        "read_p999_us": max((summary["p999"] for summary in reads), default=0.0),
    }


def _point(
    scheme: str,
    jbofs: int,
    ssds_per_jbof: int,
    tenants: int,
    churn: float,
    skew: float,
    horizon_us: float,
    condition: str,
    seed: int,
) -> dict:
    """One full churn schedule on one rack configuration."""
    cluster = KvCluster(
        KvClusterConfig(
            scheme=scheme,
            condition=condition,
            num_jbofs=jbofs,
            ssds_per_jbof=ssds_per_jbof,
            seed=seed,
        )
    )
    population = TenantPopulation(
        tenants=tenants,
        horizon_us=horizon_us,
        skew=skew,
        churn=churn,
        seed=derive_seed(seed, "population"),
    )
    specs = population.generate()
    outcome = cluster.run_population(specs)
    row = {
        "scheme": scheme,
        "jbofs": jbofs,
        "churn": churn,
        "skew": skew,
        "peak_planned": peak_concurrent(specs),
    }
    row.update(_aggregate(outcome))
    return row


def sweep(
    schemes=("gimbal", "vanilla"),
    rack=(4,),
    churns=(0.8,),
    skews=(0.9,),
    tenants: int = 200,
    ssds_per_jbof: int = 4,
    horizon_us: float = 600_000.0,
    condition: str = "clean",
    root_seed: int = 42,
):
    """One point per (scheme, rack size, churn, skew) combination."""
    sw = Sweep("rack", root_seed=root_seed)
    for scheme in schemes:
        for jbofs in rack:
            for churn in churns:
                for skew in skews:
                    label = f"scheme={scheme},jbofs={jbofs},churn={churn},skew={skew}"
                    sw.point(
                        _point,
                        label=label,
                        scheme=scheme,
                        jbofs=jbofs,
                        ssds_per_jbof=ssds_per_jbof,
                        tenants=tenants,
                        churn=churn,
                        skew=skew,
                        horizon_us=horizon_us,
                        condition=condition,
                        seed=sw.seed_for(label),
                    )
    return sw


def finalize(results) -> Dict[str, object]:
    rows = merge_rows(results)
    leaked = sum(row["megas_leaked"] for row in rows)
    if leaked:
        raise RuntimeError(f"rack churn leaked {leaked} mega blobs across the sweep")
    return {"figure": "rack", "rows": rows}


def run(
    schemes=("gimbal", "vanilla"),
    rack=(4,),
    churns=(0.8,),
    skews=(0.9,),
    tenants: int = 200,
    ssds_per_jbof: int = 4,
    horizon_us: float = 600_000.0,
    condition: str = "clean",
    root_seed: int = 42,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            schemes=schemes,
            rack=rack,
            churns=churns,
            skews=skews,
            tenants=tenants,
            ssds_per_jbof=ssds_per_jbof,
            horizon_us=horizon_us,
            condition=condition,
            root_seed=root_seed,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (
            row["scheme"],
            row["jbofs"],
            row["churn"],
            row["skew"],
            row["peak_tenants"],
            row["total_kops"],
            row["jain"],
            row["read_p999_us"],
            row["megas_leaked"],
        )
        for row in results["rows"]
    ]
    return format_table(
        [
            "scheme",
            "JBOFs",
            "churn",
            "skew",
            "peak tenants",
            "KOPS",
            "Jain",
            "read p99.9 us",
            "leaked megas",
        ],
        table_rows,
        title="Rack-scale churn: tenant population over a multi-JBOF rack",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
