"""Table 2: qualitative comparison of the four multi-tenancy schemes.

This is a property matrix, not a measurement; the rows are derived
from the implementations themselves (which scheduler classes exist,
where flow control lives) so the table cannot drift from the code.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.experiments.common import Sweep
from repro.harness.report import format_table

#: scheme -> (BW estimation, IO cost & WR tax, fair queueing, flow control)
PROPERTIES: Dict[str, tuple] = {
    "reflex": ("Static", "Static", "@Target", "no"),
    "parda": ("Dynamic", "none", "@Client", "yes"),
    "flashfq": ("none", "Static", "@Target", "no"),
    "gimbal": ("Dynamic", "Dynamic", "@Target", "yes"),
}


def _point() -> Dict[str, object]:
    from repro.baselines import FlashFqScheduler, ReflexScheduler
    from repro.core import GimbalScheduler
    from repro.fabric.policies import CreditClientPolicy, PardaClientPolicy

    # Cross-check the matrix against the code's actual shape.
    checks = {
        "reflex_static_cost": ReflexScheduler().request_cost is not None,
        "flashfq_static_cost": FlashFqScheduler().request_cost is not None,
        "gimbal_dynamic_cost": hasattr(GimbalScheduler(), "write_cost"),
        "gimbal_flow_control": CreditClientPolicy is not None,
        "parda_flow_control": PardaClientPolicy is not None,
    }
    rows: List[dict] = [
        {
            "scheme": scheme,
            "bw_estimation": props[0],
            "io_cost": props[1],
            "fair_queueing": props[2],
            "flow_control": props[3],
        }
        for scheme, props in PROPERTIES.items()
    ]
    return {"table": "2", "rows": rows, "checks": checks}


def sweep():
    sw = Sweep("table2")
    sw.point(_point, label="matrix")
    return sw


def finalize(results) -> Dict[str, object]:
    return results[0]


def run(jobs: int = 1, cache=None, pool=None) -> Dict[str, object]:
    return finalize(sweep().run(jobs=jobs, cache=cache, pool=pool))


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (r["scheme"], r["bw_estimation"], r["io_cost"], r["fair_queueing"], r["flow_control"])
        for r in results["rows"]
    ]
    return format_table(
        ["scheme", "BW estimation", "IO cost & WR tax", "fair queueing", "flow control"],
        table_rows,
        title="Table 2: multi-tenancy mechanism comparison",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
