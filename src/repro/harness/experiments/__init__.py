"""Per-figure/table experiment drivers.

Every module regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md): it exposes a ``run(...)`` function
returning structured results plus a ``main()`` that prints the same
rows/series the paper reports.  The benchmark suite calls ``run``
with scaled-down durations; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.harness.experiments import (  # noqa: F401
    ablations,
    aging,
    ext_qlc,
    fig02_unloaded_latency,
    fig03_core_scaling,
    fig04_interference,
    fig06_utilization,
    fig07_fairness,
    fig08_latency,
    fig09_dynamic,
    fig10_rocksdb,
    fig11_12_scaling,
    fig13_virtual_view,
    fig14_read_ratio,
    fig15_latency_scenarios,
    fig16_processing_cost,
    fig17_congestion_dynamics,
    fig18_threshold_trace,
    fig19_23_appendix_d,
    sec58_generalization,
    table1_overheads,
    table2_comparison,
)
