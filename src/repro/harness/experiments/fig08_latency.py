"""Figure 8: read/write latency percentiles under mixed R/W load.

The same workloads as Figure 7b (clean, 128 KiB) and 7c (fragmented,
4 KiB): 16 readers + 16 writers, reporting end-to-end average, p99 and
p99.9 per IO type per scheme.  Paper shape: Gimbal cuts the p99 of
reads and writes roughly in half versus Parda and by an order of
magnitude versus the uncontrolled schemes (ReFlex/FlashFQ), because
credits bound the number of outstanding IOs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.experiments.common import read_spec, run_workers, write_spec
from repro.harness.report import format_table
from repro.harness.testbed import SCHEMES, TestbedConfig
from repro.metrics.histogram import LatencyHistogram

CASES = (
    ("clean-128KB", "clean", 32),
    ("frag-4KB", "fragmented", 1),
)


def run(
    measure_us: float = 1_500_000.0,
    warmup_us: float = 700_000.0,
    schemes=SCHEMES,
    workers_per_class: int = 16,
) -> Dict[str, object]:
    rows: List[dict] = []
    for label, condition, io_pages in CASES:
        for scheme in schemes:
            specs = [read_spec(f"rd{i}", io_pages) for i in range(workers_per_class)]
            specs += [write_spec(f"wr{i}", io_pages) for i in range(workers_per_class)]
            results = run_workers(
                TestbedConfig(scheme=scheme, condition=condition),
                specs,
                warmup_us=warmup_us,
                measure_us=measure_us,
                region_pages=1600,
            )
            testbed = results["testbed"]
            merged = {"read": LatencyHistogram(), "write": LatencyHistogram()}
            for worker in testbed.workers:
                merged["read"].merge(worker.read_latency)
                merged["write"].merge(worker.write_latency)
            for op_name, histogram in merged.items():
                summary = histogram.summary()
                rows.append(
                    {
                        "case": label,
                        "scheme": scheme,
                        "op": op_name,
                        "avg_us": summary["mean"],
                        "p99_us": summary["p99"],
                        "p999_us": summary["p999"],
                    }
                )
    return {"figure": "8", "rows": rows}


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["case"], row["scheme"], row["op"], row["avg_us"], row["p99_us"], row["p999_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["case", "scheme", "op", "avg us", "p99 us", "p99.9 us"],
        table_rows,
        title="Figure 8: latency under mixed read/write (16+16 workers)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
