"""Figure 8: read/write latency percentiles under mixed R/W load.

The same workloads as Figure 7b (clean, 128 KiB) and 7c (fragmented,
4 KiB): 16 readers + 16 writers, reporting end-to-end average, p99 and
p99.9 per IO type per scheme.  Paper shape: Gimbal cuts the p99 of
reads and writes roughly in half versus Parda and by an order of
magnitude versus the uncontrolled schemes (ReFlex/FlashFQ), because
credits bound the number of outstanding IOs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.experiments.common import Sweep, merge_rows, read_spec, run_workers, write_spec
from repro.harness.report import format_table
from repro.harness.testbed import SCHEMES, TestbedConfig
from repro.metrics.histogram import LatencyHistogram

CASES = (
    ("clean-128KB", "clean", 32),
    ("frag-4KB", "fragmented", 1),
)

_CASE_BY_LABEL = {label: (condition, io_pages) for label, condition, io_pages in CASES}


def _point(
    case: str, scheme: str, workers_per_class: int, warmup_us: float, measure_us: float
) -> List[dict]:
    """One (case, scheme) run; returns the read row then the write row."""
    condition, io_pages = _CASE_BY_LABEL[case]
    specs = [read_spec(f"rd{i}", io_pages) for i in range(workers_per_class)]
    specs += [write_spec(f"wr{i}", io_pages) for i in range(workers_per_class)]
    results = run_workers(
        TestbedConfig(scheme=scheme, condition=condition),
        specs,
        warmup_us=warmup_us,
        measure_us=measure_us,
        region_pages=1600,
    )
    testbed = results["testbed"]
    merged = {"read": LatencyHistogram(), "write": LatencyHistogram()}
    for worker in testbed.workers:
        merged["read"].merge(worker.read_latency)
        merged["write"].merge(worker.write_latency)
    rows = []
    for op_name, histogram in merged.items():
        summary = histogram.summary()
        rows.append(
            {
                "case": case,
                "scheme": scheme,
                "op": op_name,
                "avg_us": summary["mean"],
                "p99_us": summary["p99"],
                "p999_us": summary["p999"],
            }
        )
    return rows


def sweep(
    measure_us: float = 1_500_000.0,
    warmup_us: float = 700_000.0,
    schemes=SCHEMES,
    workers_per_class: int = 16,
):
    """One point per (case, scheme); each yields a read and a write row."""
    sw = Sweep("fig08")
    for label, _condition, _io_pages in CASES:
        for scheme in schemes:
            sw.point(
                _point,
                label=f"case={label},scheme={scheme}",
                case=label,
                scheme=scheme,
                workers_per_class=workers_per_class,
                warmup_us=warmup_us,
                measure_us=measure_us,
            )
    return sw


def finalize(results) -> Dict[str, object]:
    """Merge ordered point results into the figure's result dict."""
    return {"figure": "8", "rows": merge_rows(results)}


def run(
    measure_us: float = 1_500_000.0,
    warmup_us: float = 700_000.0,
    schemes=SCHEMES,
    workers_per_class: int = 16,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            measure_us=measure_us,
            warmup_us=warmup_us,
            schemes=schemes,
            workers_per_class=workers_per_class,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["case"], row["scheme"], row["op"], row["avg_us"], row["p99_us"], row["p999_us"])
        for row in results["rows"]
    ]
    return format_table(
        ["case", "scheme", "op", "avg us", "p99 us", "p99.9 us"],
        table_rows,
        title="Figure 8: latency under mixed read/write (16+16 workers)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
