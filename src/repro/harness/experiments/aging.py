"""Aging study: Gimbal's mechanisms on worn, map-cache-limited devices.

The paper evaluates fresh devices only; this experiment runs the same
multi-tenant stack on devices deep into their service life, where two
fidelity effects the idealized FTL lacks start moving exactly the
signals Gimbal's control loops consume:

* a **DFTL mapping cache** too small for the working set adds
  translation-page reads in front of host reads (tail-latency
  inflation) and writeback programs behind mapping updates (extra
  write cost);
* **wear** -- skewed per-block erase counts, endurance-driven block
  retirement, static wear-levelling migrations -- adds background
  relocation work and erodes the effective overprovisioning the
  write-cost worst case is derived from.

Axes: scheme x device age x mapping-cache size x tenant (writer)
skew.  Rollups per point: read p99 (and, in ``finalize``, its
inflation relative to the full-map row of the same scheme/age/skew),
mapping-cache hit rate, the write-cost estimator's converged cost vs
the cost the device actually charged (estimator error), and Jain
fairness over the writers' achieved bandwidth -- the per-tenant wear
contribution under credit admission.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.write_cost import actual_write_cost
from repro.harness.experiments.common import (
    DEFAULT_MEASURE_US,
    DEFAULT_WARMUP_US,
    Sweep,
    TestbedConfig,
    merge_rows,
    read_spec,
    write_spec,
)
from repro.harness.report import format_table
from repro.harness.testbed import Testbed
from repro.metrics import jain_index
from repro.ssd import SsdGeometry

#: Per-block P/E endurance for the aged profiles.  2000 cycles (a
#: conservative TLC rating) keeps retirement observable: at age 0.8
#: the wear skew pushes a visible fraction of blocks against the
#: clamp, so they retire during the measured run.
ENDURANCE_CYCLES = 2000

#: Static wear-levelling trigger (erase-count spread per channel).
STATIC_WL_THRESHOLD = 200


def _aged_geometry() -> SsdGeometry:
    """Enterprise-style geometry with real spare capacity.

    The default 12%-overprovisioned geometry has no blocks to lose:
    the FTL's viability floor would veto every retirement.  25% OP
    (typical for write-optimised enterprise SKUs) leaves several
    blocks per channel that endurance death can actually consume.
    """
    return SsdGeometry(
        num_channels=8, blocks_per_channel=44, pages_per_block=256, overprovision=0.25
    )


def _point(
    scheme: str,
    age: float,
    cache_pages: Optional[int],
    skew: float,
    readers: int,
    writers: int,
    region_pages: int,
    warmup_us: float,
    measure_us: float,
    seed: int,
) -> dict:
    """One multi-tenant run on one aged device configuration."""
    overrides = {
        "endurance_cycles": ENDURANCE_CYCLES,
        "static_wear_threshold": STATIC_WL_THRESHOLD,
    }
    if cache_pages is not None:
        overrides["map_cache_pages"] = cache_pages
    testbed = Testbed(
        TestbedConfig(
            scheme=scheme,
            condition="aged",
            device_age=age,
            geometry=_aged_geometry(),
            profile_overrides=overrides,
            seed=seed,
        )
    )
    specs = [read_spec(f"reader{index}", io_pages=1) for index in range(readers)]
    for index in range(writers):
        # Geometric queue-depth decay models tenant skew: writer 0 is
        # the heavy hitter, later writers offer progressively less
        # load.  skew=1.0 is a uniform population.
        depth = max(1, int(round(16 * skew**index)))
        specs.append(write_spec(f"writer{index}", io_pages=1, queue_depth=depth))
    for spec in specs:
        testbed.add_worker(spec, region_pages=region_pages)
    results = testbed.run(warmup_us=warmup_us, measure_us=measure_us)

    device = testbed.devices["ssd0"]
    ftl = device.ftl
    cache = ftl.map_cache
    wear = ftl.wear_stats()
    map_reads = cache.misses if cache is not None else 0
    map_writes = cache.writebacks if cache is not None else 0
    cost_actual = actual_write_cost(device.profile, ftl.stats, map_reads, map_writes)
    estimator = getattr(testbed.target.pipelines["ssd0"].scheduler, "write_cost", None)
    cost_estimated = estimator.cost if estimator is not None else None
    cost_error = (
        abs(cost_estimated - cost_actual) / cost_actual
        if cost_estimated is not None and cost_actual > 0
        else None
    )

    reader_rows = [w for w in results["workers"] if w["name"].startswith("reader")]
    writer_rows = [w for w in results["workers"] if w["name"].startswith("writer")]
    writer_bws = [w["bandwidth_mbps"] for w in writer_rows]
    read_count = sum(w["read_latency"]["count"] for w in reader_rows)
    return {
        "scheme": scheme,
        "age": age,
        "cache_pages": cache_pages,
        "skew": skew,
        "total_bandwidth_mbps": results["total_bandwidth_mbps"],
        "read_p99_us": max((w["read_latency"]["p99"] for w in reader_rows), default=0.0),
        "read_count": read_count,
        "map_hit_rate": cache.hit_rate if cache is not None else 1.0,
        "map_misses": map_reads,
        "map_writebacks": map_writes,
        "write_amplification": ftl.stats.write_amplification,
        "wl_migrations": ftl.stats.wl_migrations,
        "retired_blocks": wear.retired_blocks,
        "wear_spread": wear.spread,
        "wear_jain": jain_index(writer_bws) if any(bw > 0 for bw in writer_bws) else 0.0,
        "write_cost_actual": cost_actual,
        "write_cost_estimated": cost_estimated,
        "write_cost_error": cost_error,
    }


def sweep(
    schemes=("gimbal", "vanilla"),
    ages=(0.0, 0.8),
    cache_sizes=(None, 8),
    skews=(0.6,),
    readers: int = 2,
    writers: int = 4,
    region_pages: int = 2048,
    warmup_us: float = DEFAULT_WARMUP_US,
    measure_us: float = DEFAULT_MEASURE_US,
    root_seed: int = 42,
):
    """One point per (scheme, age, cache size, skew) combination."""
    sw = Sweep("aging", root_seed=root_seed)
    for scheme in schemes:
        for age in ages:
            for cache_pages in cache_sizes:
                for skew in skews:
                    label = (
                        f"scheme={scheme},age={age},cache={cache_pages},skew={skew}"
                    )
                    sw.point(
                        _point,
                        label=label,
                        scheme=scheme,
                        age=age,
                        cache_pages=cache_pages,
                        skew=skew,
                        readers=readers,
                        writers=writers,
                        region_pages=region_pages,
                        warmup_us=warmup_us,
                        measure_us=measure_us,
                        seed=sw.seed_for(label),
                    )
    return sw


def finalize(results) -> Dict[str, object]:
    rows = merge_rows(results)
    # p99 inflation: each row relative to the full-map (cache=None)
    # row of the same scheme/age/skew -- the share of tail latency the
    # translation cache is responsible for.
    baseline: Dict[tuple, float] = {}
    for row in rows:
        if row["cache_pages"] is None:
            baseline[(row["scheme"], row["age"], row["skew"])] = row["read_p99_us"]
    for row in rows:
        base = baseline.get((row["scheme"], row["age"], row["skew"]), 0.0)
        row["read_p99_inflation"] = row["read_p99_us"] / base if base > 0 else 1.0
    return {"figure": "aging", "rows": rows}


def run(
    schemes=("gimbal", "vanilla"),
    ages=(0.0, 0.8),
    cache_sizes=(None, 8),
    skews=(0.6,),
    readers: int = 2,
    writers: int = 4,
    region_pages: int = 2048,
    warmup_us: float = DEFAULT_WARMUP_US,
    measure_us: float = DEFAULT_MEASURE_US,
    root_seed: int = 42,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            schemes=schemes,
            ages=ages,
            cache_sizes=cache_sizes,
            skews=skews,
            readers=readers,
            writers=writers,
            region_pages=region_pages,
            warmup_us=warmup_us,
            measure_us=measure_us,
            root_seed=root_seed,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = []
    for row in results["rows"]:
        table_rows.append(
            (
                row["scheme"],
                row["age"],
                "full" if row["cache_pages"] is None else row["cache_pages"],
                row["skew"],
                row["total_bandwidth_mbps"],
                row["read_p99_us"],
                row["read_p99_inflation"],
                row["map_hit_rate"],
                row["wear_jain"],
                row["retired_blocks"],
                "-" if row["write_cost_error"] is None else f"{row['write_cost_error']:.2f}",
            )
        )
    return format_table(
        [
            "scheme",
            "age",
            "map cache",
            "skew",
            "MB/s",
            "read p99 us",
            "p99 infl",
            "map hit",
            "wear Jain",
            "retired",
            "cost err",
        ],
        table_rows,
        title="Aging: schemes on worn devices with a DFTL mapping cache",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
