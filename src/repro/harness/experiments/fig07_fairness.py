"""Figure 7: fairness across mixed workloads (bandwidth and f-Util).

Three sub-experiments per scheme:

* (a/d)  Clean-SSD, mixed IO sizes: 16 workers of 4 KiB random read
  plus 4 workers of 128 KiB random read.
* (b/e)  Clean-SSD, mixed IO types: 16 readers + 16 writers, 128 KiB.
* (c/f)  Fragment-SSD, mixed IO types: 16 readers + 16 writers, 4 KiB.

Paper shape: Gimbal lands every class's f-Util closest to 1 (it pays
128 KiB IOs their real discount and writes their real cost); ReFlex
crushes clean writes; FlashFQ serves reads and writes identically;
Parda starves fragmented reads.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.harness.experiments.common import (
    Sweep,
    f_utils_for,
    merge_rows,
    read_spec,
    run_workers,
    write_spec,
)
from repro.harness.report import format_table
from repro.harness.testbed import SCHEMES, TestbedConfig


def _mixed_size_specs(n_small: int, n_large: int):
    specs = [read_spec(f"small{i}", 1) for i in range(n_small)]
    specs += [read_spec(f"large{i}", 32) for i in range(n_large)]
    groups = ["4KB"] * n_small + ["128KB"] * n_large
    return specs, groups


def _mixed_type_specs(io_pages: int, n_each: int):
    specs = [read_spec(f"rd{i}", io_pages) for i in range(n_each)]
    specs += [write_spec(f"wr{i}", io_pages) for i in range(n_each)]
    groups = ["read"] * n_each + ["write"] * n_each
    return specs, groups


SUBEXPERIMENTS = {
    "a": ("clean", "mixed sizes: 16x4KB + 4x128KB read", lambda s: _mixed_size_specs(16 * s // 16, max(1, 4 * s // 16))),
    "b": ("clean", "mixed types: 128KB read vs write", lambda s: _mixed_type_specs(32, s)),
    "c": ("fragmented", "mixed types: 4KB read vs write", lambda s: _mixed_type_specs(1, s)),
}


def _point(
    sub: str,
    scheme: str,
    workers_per_class: int,
    warmup_us: float,
    measure_us: float,
    seed: int,
    standalone_measure_us: Optional[float] = None,
) -> List[dict]:
    """One (sub-experiment, scheme) cell: per-class bandwidth and f-Util."""
    condition, _description, make_specs = SUBEXPERIMENTS[sub]
    specs, groups = make_specs(workers_per_class)
    results = run_workers(
        TestbedConfig(scheme=scheme, condition=condition, seed=seed),
        specs,
        warmup_us=warmup_us,
        measure_us=measure_us,
        region_pages=1600,
    )
    if standalone_measure_us is None:
        futils = f_utils_for(results, specs, condition)
    else:
        futils = f_utils_for(
            results, specs, condition, standalone_measure_us=standalone_measure_us
        )
    by_group: Dict[str, dict] = {}
    for worker, group, value in zip(results["workers"], groups, futils):
        bucket = by_group.setdefault(group, {"mbps": 0.0, "futil": [], "n": 0})
        bucket["mbps"] += worker["bandwidth_mbps"]
        bucket["futil"].append(value)
        bucket["n"] += 1
    return [
        {
            "sub": sub,
            "condition": condition,
            "scheme": scheme,
            "class": group,
            "aggregate_mbps": bucket["mbps"],
            "per_worker_mbps": bucket["mbps"] / bucket["n"],
            "f_util": sum(bucket["futil"]) / bucket["n"],
        }
        for group, bucket in by_group.items()
    ]


def sweep(
    measure_us: float = 1_500_000.0,
    warmup_us: float = 700_000.0,
    schemes=SCHEMES,
    workers_per_class: int = 16,
    root_seed: int = 42,
    standalone_measure_us: Optional[float] = None,
):
    # Not build_sweep: the scheme axis is a parameter, so the sweep is
    # declared point by point to keep labels seed-stable.
    sw = Sweep("fig07", root_seed=root_seed)
    for sub in SUBEXPERIMENTS:
        for scheme in schemes:
            label = f"sub={sub},scheme={scheme}"
            sw.point(
                _point,
                label=label,
                sub=sub,
                scheme=scheme,
                workers_per_class=workers_per_class,
                warmup_us=warmup_us,
                measure_us=measure_us,
                seed=sw.seed_for(label),
                standalone_measure_us=standalone_measure_us,
            )
    return sw


def finalize(results) -> Dict[str, object]:
    """Merge ordered point results into the figure's result dict."""
    return {"figure": "7", "rows": merge_rows(results)}


def run(
    measure_us: float = 1_500_000.0,
    warmup_us: float = 700_000.0,
    schemes=SCHEMES,
    workers_per_class: int = 16,
    jobs: int = 1,
    root_seed: int = 42,
    standalone_measure_us: Optional[float] = None,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(
            measure_us=measure_us,
            warmup_us=warmup_us,
            schemes=schemes,
            workers_per_class=workers_per_class,
            root_seed=root_seed,
            standalone_measure_us=standalone_measure_us,
        ).run(jobs=jobs, cache=cache, pool=pool)
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (
            row["sub"],
            row["scheme"],
            row["class"],
            row["aggregate_mbps"],
            row["f_util"],
        )
        for row in results["rows"]
    ]
    return format_table(
        ["sub", "scheme", "class", "aggregate MB/s", "f-Util"],
        table_rows,
        title="Figure 7: fairness (a=clean sizes, b=clean R/W 128KB, c=frag R/W 4KB)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
