"""Figure 18 (Appendix B): the dynamic latency threshold at work.

128 KiB random reads through Gimbal while the offered load ramps;
samples the read monitor's EWMA latency and its threshold.  Paper
shape: the threshold decays toward the EWMA between congestion events
and jumps toward Thresh_max whenever the EWMA crosses it, so signals
fire more frequently as the EWMA approaches saturation.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import Sweep
from repro.harness.testbed import Testbed, TestbedConfig
from repro.harness.report import format_series
from repro.metrics.throughput import IntervalSeries
from repro.ssd.commands import IoOp
from repro.workloads import FioSpec


def _point(
    phase_us: float, sample_window_us: float, steps: int
) -> Dict[str, object]:
    """The whole ramp is one simulation, hence one sweep point."""
    testbed = Testbed(TestbedConfig(scheme="gimbal", condition="clean"))
    workers = [
        testbed.add_worker(
            FioSpec(f"w{i}", io_pages=32, queue_depth=4, read_ratio=1.0), region_pages=1600
        )
        for i in range(steps)
    ]
    sim = testbed.sim
    monitor = testbed.target.pipelines["ssd0"].scheduler.monitors[IoOp.READ]
    ewma_series = IntervalSeries(sample_window_us, mode="last")
    threshold_series = IntervalSeries(sample_window_us, mode="last")

    def sampler():
        while True:
            ewma_series.record(sim.now, monitor.ewma_latency_us)
            threshold_series.record(sim.now, monitor.threshold)
            yield sample_window_us / 2

    sim.process(sampler())

    def timeline():
        for worker in workers:
            worker.start()
            yield phase_us

    sim.process(timeline())
    sim.run(until_us=phase_us * (steps + 1))
    return {
        "figure": "18",
        "ewma_latency": ewma_series.series(),
        "threshold": threshold_series.series(),
        "signals": {state.name: count for state, count in monitor.signals.items()},
    }


def sweep(
    phase_us: float = 300_000.0,
    sample_window_us: float = 20_000.0,
    steps: int = 12,
):
    sw = Sweep("fig18")
    sw.point(
        _point,
        label="threshold-trace",
        phase_us=phase_us,
        sample_window_us=sample_window_us,
        steps=steps,
    )
    return sw


def finalize(results) -> Dict[str, object]:
    return results[0]


def run(
    phase_us: float = 300_000.0,
    sample_window_us: float = 20_000.0,
    steps: int = 12,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(phase_us=phase_us, sample_window_us=sample_window_us, steps=steps).run(
            jobs=jobs, cache=cache, pool=pool
        )
    )


def summarize(results: Dict[str, object]) -> str:
    return "\n".join(
        [
            "Figure 18: dynamic latency threshold (128KB random read)",
            format_series("EWMA latency (us)", results["ewma_latency"][:40]),
            format_series("threshold (us)", results["threshold"][:40]),
            f"signal counts: {results['signals']}",
        ]
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
