"""Figure 4: multi-tenant interference on an unmanaged (vanilla) target.

A victim flow (4 KiB random reads, QD32) shares one SSD with one
neighbour of varying shape.  Paper shape: intensity wins regardless of
size or pattern -- the QD128 neighbour takes ~3x the victim's share --
and a write neighbour costs the victim ~59% of its bandwidth.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import build_sweep, merge_rows, run_workers
from repro.harness.report import format_table
from repro.harness.testbed import TestbedConfig
from repro.workloads import FioSpec

#: Neighbour shapes on the figure's x-axis.
NEIGHBOURS = (
    ("4KB-RD-QD32", FioSpec("nbr", io_pages=1, queue_depth=32, read_ratio=1.0)),
    ("4KB-RD-QD128", FioSpec("nbr", io_pages=1, queue_depth=128, read_ratio=1.0)),
    ("128KB-RD-QD1", FioSpec("nbr", io_pages=32, queue_depth=1, read_ratio=1.0)),
    ("128KB-RD-QD8", FioSpec("nbr", io_pages=32, queue_depth=8, read_ratio=1.0)),
    ("4KB-WR-QD32", FioSpec("nbr", io_pages=1, queue_depth=32, read_ratio=0.0)),
    ("4KB-WR-QD128", FioSpec("nbr", io_pages=1, queue_depth=128, read_ratio=0.0)),
)

_NEIGHBOUR_BY_LABEL = dict(NEIGHBOURS)

VICTIM = FioSpec("victim", io_pages=1, queue_depth=32, read_ratio=1.0)


def _point(neighbour: str, condition: str, measure_us: float, seed: int) -> dict:
    """One victim-vs-neighbour run on the vanilla target."""
    results = run_workers(
        TestbedConfig(scheme="vanilla", condition=condition, seed=seed),
        [VICTIM, _NEIGHBOUR_BY_LABEL[neighbour]],
        measure_us=measure_us,
        region_pages=8192,
    )
    victim_bw, neighbour_bw = (w["bandwidth_mbps"] for w in results["workers"])
    return {"neighbour": neighbour, "victim_mbps": victim_bw, "neighbour_mbps": neighbour_bw}


def _explore_point(
    qd: int,
    read_ratio: float,
    io_pages: int,
    condition: str,
    measure_us: float,
    warmup_us: float,
    seed: int,
) -> dict:
    """One point of the interference what-if grid.

    Same victim as the figure, but the neighbour's shape is fully
    parameterized so the adaptive engine can hunt the queue depth at
    which the neighbour starts out-competing the victim (the
    ``victim_mbps - neighbour_mbps`` sign flip).
    """
    pattern = "sequential" if read_ratio == 0.0 and io_pages >= 32 else "random"
    neighbour = FioSpec(
        "nbr",
        io_pages=io_pages,
        queue_depth=qd,
        read_ratio=read_ratio,
        pattern=pattern,
    )
    results = run_workers(
        TestbedConfig(scheme="vanilla", condition=condition, seed=seed),
        [VICTIM, neighbour],
        measure_us=measure_us,
        warmup_us=warmup_us,
        region_pages=8192,
    )
    victim_bw, neighbour_bw = (w["bandwidth_mbps"] for w in results["workers"])
    return {"victim_mbps": victim_bw, "neighbour_mbps": neighbour_bw}


def explore_space(
    qds=(1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28,
         36, 40, 44, 48, 56, 64, 80, 96, 112, 128),
    read_ratios=(1.0, 0.0),
    io_pages=(1, 32),
    condition: str = "clean",
    measure_us: float = 4000.0,
    warmup_us: float = 2000.0,
    root_seed: int = 42,
):
    """Crossover hunt: where does the neighbour overtake the victim?

    The grid crosses neighbour intensity (queue depth), direction
    (read/write) and size (4 KiB/128 KiB); the crossover of interest
    runs along queue depth.  QD32 is deliberately absent from the
    default axis -- there the neighbour is the victim's mirror image
    and the signal is a coin flip.
    """
    from repro.harness.adaptive import CrossoverSpec, ExploreSpace

    return ExploreSpace(
        name="fig04-interference",
        point_fn=_explore_point,
        axes={
            "read_ratio": list(read_ratios),
            "io_pages": list(io_pages),
            "qd": list(qds),
        },
        fixed={
            "condition": condition,
            "measure_us": measure_us,
            "warmup_us": warmup_us,
        },
        crossover=CrossoverSpec(along="qd", metric="victim_mbps", minus="neighbour_mbps"),
        root_seed=root_seed,
    )


def sweep(
    measure_us: float = 600_000.0, condition: str = "clean", root_seed: int = 42
):
    """Declare one point per neighbour shape."""
    return build_sweep(
        "fig04",
        {"neighbour": [label for label, _ in NEIGHBOURS]},
        _point,
        root_seed=root_seed,
        condition=condition,
        measure_us=measure_us,
    )


def finalize(results, condition: str = "clean") -> Dict[str, object]:
    """Merge ordered point results into the figure's result dict."""
    return {"figure": "4", "condition": condition, "rows": merge_rows(results)}


def run(
    measure_us: float = 600_000.0,
    condition: str = "clean",
    jobs: int = 1,
    root_seed: int = 42,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(measure_us=measure_us, condition=condition, root_seed=root_seed).run(
            jobs=jobs, cache=cache, pool=pool
        ),
        condition=condition,
    )


def summarize(results: Dict[str, object]) -> str:
    table_rows = [
        (row["neighbour"], row["victim_mbps"], row["neighbour_mbps"])
        for row in results["rows"]
    ]
    return format_table(
        ["neighbour flow", "victim MB/s", "neighbour MB/s"],
        table_rows,
        title="Figure 4: interference against a 4KB-RD-QD32 victim (vanilla target)",
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
