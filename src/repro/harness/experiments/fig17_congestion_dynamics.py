"""Figure 17 (Appendix B): latency impulse as load crosses capacity.

A 4 KiB + 128 KiB mixed read workload whose intensity steps up over
time on a vanilla target.  Paper shape: bandwidth saturates while
average latency explodes once the offered load exceeds the device's
throughput capacity -- the impulse response that motivates using delay
as the congestion signal.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.experiments.common import Sweep
from repro.harness.report import format_series
from repro.harness.testbed import Testbed, TestbedConfig
from repro.metrics.throughput import IntervalSeries
from repro.workloads import FioSpec


def _point(
    phase_us: float, sample_window_us: float, steps: int
) -> Dict[str, object]:
    """The whole ramp is one simulation, hence one sweep point."""
    testbed = Testbed(TestbedConfig(scheme="vanilla", condition="clean"))
    small_workers = [
        testbed.add_worker(
            FioSpec(f"s{i}", io_pages=1, queue_depth=32, read_ratio=1.0), region_pages=1600
        )
        for i in range(steps)
    ]
    large_workers = [
        testbed.add_worker(
            FioSpec(f"l{i}", io_pages=32, queue_depth=4, read_ratio=1.0), region_pages=1600
        )
        for i in range(steps)
    ]
    sim = testbed.sim
    latency = {
        "4KB": IntervalSeries(sample_window_us, mode="mean"),
        "128KB": IntervalSeries(sample_window_us, mode="mean"),
    }
    bandwidth = IntervalSeries(sample_window_us, mode="sum")

    def tap(worker, key):
        original = worker._on_complete

        def tapped(request):
            latency[key].record(sim.now, request.e2e_latency_us)
            bandwidth.record(sim.now, request.size_bytes)
            original(request)

        worker._on_complete = tapped

    for worker in small_workers:
        tap(worker, "4KB")
    for worker in large_workers:
        tap(worker, "128KB")

    def timeline():
        for index in range(steps):
            small_workers[index].start()
            large_workers[index].start()
            yield phase_us

    sim.process(timeline())
    sim.run(until_us=phase_us * (steps + 1))
    return {
        "figure": "17",
        "latency_4k": latency["4KB"].series(),
        "latency_128k": latency["128KB"].series(),
        "bandwidth_mbps": bandwidth.bandwidth_series_mbps(),
    }


def sweep(
    phase_us: float = 500_000.0,
    sample_window_us: float = 50_000.0,
    steps: int = 6,
):
    sw = Sweep("fig17")
    sw.point(
        _point,
        label="impulse",
        phase_us=phase_us,
        sample_window_us=sample_window_us,
        steps=steps,
    )
    return sw


def finalize(results) -> Dict[str, object]:
    return results[0]


def run(
    phase_us: float = 500_000.0,
    sample_window_us: float = 50_000.0,
    steps: int = 6,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(phase_us=phase_us, sample_window_us=sample_window_us, steps=steps).run(
            jobs=jobs, cache=cache, pool=pool
        )
    )


def summarize(results: Dict[str, object]) -> str:
    return "\n".join(
        [
            "Figure 17: latency impulse under rising mixed read load",
            format_series("4KB avg latency (us)", results["latency_4k"][:40]),
            format_series("128KB avg latency (us)", results["latency_128k"][:40]),
            format_series("aggregate bandwidth (MB/s)", results["bandwidth_mbps"][:40]),
        ]
    )


def main() -> None:  # pragma: no cover
    print(summarize(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
