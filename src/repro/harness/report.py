"""Plain-text table/series formatting for experiment output.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned monospace table."""
    materialised: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Sequence[Tuple[float, float]], unit: str = "") -> str:
    """Render an (x, y) series as one line per point."""
    lines = [f"{name}{f' ({unit})' if unit else ''}:"]
    for x, y in points:
        lines.append(f"  {_cell(x):>12}  {_cell(y)}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
