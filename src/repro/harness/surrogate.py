"""Learned surrogate models over the result-cache journal.

Every sweep point the cache has ever stored is a free training
example: the journal records the point's keyword arguments, the
numeric leaves of its result, and the seconds it took to compute.
"Performance Modeling of Data Storage Systems using Generative Models"
(PAPERS.md) shows that cheap learned models predict storage-system
performance with useful accuracy; this module turns the journal into
exactly that -- a deterministic, dependency-light regressor from point
kwargs to point outputs, with an uncertainty estimate.

Two interchangeable backends sit behind :func:`make_surrogate`:

* ``tree`` -- bagged depth-limited regression trees built on numpy
  (the ``.[fast]`` extra, same dependency story as the batch kernel
  backend).  The ensemble mean is the prediction; ensemble
  disagreement (std across trees) is the uncertainty.
* ``knn`` -- a pure-Python distance-weighted nearest-neighbour
  regressor, always available.  The neighbourhood's weighted spread is
  the uncertainty.

Both are trained *deterministically*: bootstrap resampling draws from
:class:`random.Random` seeded by the caller (never the wall clock),
splits break ties by declaration order, and neighbours sort by
``(distance, index)``.  The same records and seed always produce the
same model and bit-equal predictions -- the adaptive sweep engine
(:mod:`repro.harness.adaptive`) and its byte-identity gates rely on
this.

Feature encoding is derived from the records themselves (equivalently,
from the declarative ``sweep()`` axes that produced them): numeric
kwargs pass through as floats, non-numeric kwargs one-hot encode over
the sorted vocabulary seen at fit time.  The per-point ``seed`` kwarg
is excluded -- it is derived from the label, so it would memorize
points rather than generalize across them.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

try:  # same optional dependency as repro.sim.batch
    import numpy as _np

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None
    _HAVE_NUMPY = False

#: Kwargs never used as features: per-point seeds are label-derived
#: (memorization, not signal) and shard knobs change execution, not
#: results.
DEFAULT_EXCLUDE = ("seed", "shards", "shard_mode")

#: Cap on numeric leaves extracted from one result (deterministic:
#: the lexicographically first paths survive).
FLATTEN_LIMIT = 80

SURROGATE_BACKENDS = ("auto", "tree", "knn")


def have_numpy() -> bool:
    return _HAVE_NUMPY


# ----------------------------------------------------------------------
# Output flattening
# ----------------------------------------------------------------------
def flatten_numeric(
    value: Any, prefix: str = "", limit: int = FLATTEN_LIMIT
) -> Dict[str, float]:
    """Flatten a JSON-shaped result into ``{dotted.path: float}``.

    Only finite ints/floats survive (bools are control flags, not
    metrics).  Paths sort lexicographically and the first ``limit``
    are kept, so the extraction is deterministic regardless of dict
    iteration order or result size.
    """
    flat: Dict[str, float] = {}

    def visit(node: Any, path: str) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            if math.isfinite(node):
                flat[path] = float(node)
            return
        if isinstance(node, dict):
            for key in node:
                if isinstance(key, str):
                    visit(node[key], f"{path}.{key}" if path else key)
            return
        if isinstance(node, (list, tuple)):
            for index, item in enumerate(node):
                visit(item, f"{path}.{index}" if path else str(index))

    visit(value, prefix)
    if len(flat) <= limit:
        return dict(sorted(flat.items()))
    return dict(sorted(flat.items())[:limit])


# ----------------------------------------------------------------------
# Feature encoding
# ----------------------------------------------------------------------
class FeatureCodec:
    """Encode kwargs dicts as fixed-length float vectors.

    The schema is learned from the training records: every key seen in
    any record becomes either a numeric feature (all observed values
    int/float) or a block of one-hot features over the sorted
    vocabulary of observed values.  Unseen categorical values encode
    as all-zeros; missing keys encode as the key's training mean (so
    prediction never raises).
    """

    def __init__(
        self,
        numeric: Sequence[str],
        categorical: Mapping[str, Sequence[str]],
        means: Mapping[str, float],
        scales: Mapping[str, float],
    ):
        self.numeric = list(numeric)
        self.categorical = {key: list(vocab) for key, vocab in categorical.items()}
        self.means = dict(means)
        self.scales = dict(scales)
        self.names: List[str] = list(self.numeric)
        for key in self.categorical:
            self.names.extend(f"{key}={value}" for value in self.categorical[key])

    @classmethod
    def from_records(
        cls,
        kwargs_list: Sequence[Mapping[str, Any]],
        exclude: Sequence[str] = DEFAULT_EXCLUDE,
    ) -> "FeatureCodec":
        excluded = set(exclude)
        keys = sorted({key for kwargs in kwargs_list for key in kwargs} - excluded)
        numeric: List[str] = []
        categorical: Dict[str, List[str]] = {}
        means: Dict[str, float] = {}
        scales: Dict[str, float] = {}
        for key in keys:
            values = [kwargs[key] for kwargs in kwargs_list if key in kwargs]
            if values and all(
                isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
            ):
                numeric.append(key)
                floats = [float(v) for v in values]
                means[key] = sum(floats) / len(floats)
                spread = max(floats) - min(floats)
                scales[key] = spread if spread > 0 else 1.0
            else:
                categorical[key] = sorted({_cat(v) for v in values})
        return cls(numeric, categorical, means, scales)

    def encode(self, kwargs: Mapping[str, Any], scaled: bool = False) -> List[float]:
        row: List[float] = []
        for key in self.numeric:
            value = kwargs.get(key)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                value = self.means[key]
            value = float(value)
            if scaled:
                value = (value - self.means[key]) / self.scales[key]
            row.append(value)
        for key, vocab in self.categorical.items():
            seen = _cat(kwargs.get(key))
            row.extend(1.0 if seen == entry else 0.0 for entry in vocab)
        return row

    def encode_many(
        self, kwargs_list: Sequence[Mapping[str, Any]], scaled: bool = False
    ) -> List[List[float]]:
        return [self.encode(kwargs, scaled=scaled) for kwargs in kwargs_list]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FeatureCodec(numeric={self.numeric}, categorical={sorted(self.categorical)})"


def _cat(value: Any) -> str:
    """Canonical string form of a categorical value."""
    if isinstance(value, bool):
        return f"bool:{value}"
    return f"{type(value).__name__}:{value!r}"


# ----------------------------------------------------------------------
# Tree backend (numpy)
# ----------------------------------------------------------------------
class _Stump:
    """One depth-limited regression tree stored as flat parallel lists."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self):
        # Node arrays: internal nodes carry (feature, threshold, child
        # ids); leaves carry value with feature == -1.
        self.feature: List[int] = []
        self.threshold: List[float] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[float] = []

    def _add(self) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1


class TreeSurrogate:
    """Bagged regression trees (numpy), ensemble std as uncertainty."""

    backend = "tree"

    def __init__(
        self,
        seed: int = 0,
        n_trees: int = 16,
        max_depth: int = 6,
        min_leaf: int = 2,
    ):
        if not _HAVE_NUMPY:
            raise RuntimeError("TreeSurrogate requires numpy (the [fast] extra)")
        self.seed = seed
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._trees: List[_Stump] = []
        self._fallback = 0.0

    def fit(self, X: Sequence[Sequence[float]], y: Sequence[float]) -> "TreeSurrogate":
        xs = _np.asarray(X, dtype=_np.float64)
        ys = _np.asarray(y, dtype=_np.float64)
        n = len(ys)
        self._trees = []
        self._fallback = float(ys.mean()) if n else 0.0
        if n == 0:
            return self
        # Bootstrap indices come from Python's Random: stable across
        # numpy versions, so the model is a pure function of
        # (records, seed).
        rng = random.Random(self.seed)
        for _ in range(self.n_trees):
            indices = [rng.randrange(n) for _ in range(n)]
            tree = _Stump()
            self._grow(tree, xs[indices], ys[indices], depth=0)
            self._trees.append(tree)
        return self

    def _grow(self, tree: _Stump, xs, ys, depth: int) -> int:
        node = tree._add()
        if depth >= self.max_depth or len(ys) < 2 * self.min_leaf or _np.ptp(ys) == 0.0:
            tree.value[node] = float(ys.mean())
            return node
        best = self._best_split(xs, ys)
        if best is None:
            tree.value[node] = float(ys.mean())
            return node
        feature, threshold = best
        mask = xs[:, feature] <= threshold
        tree.feature[node] = feature
        tree.threshold[node] = threshold
        tree.left[node] = self._grow(tree, xs[mask], ys[mask], depth + 1)
        tree.right[node] = self._grow(tree, xs[~mask], ys[~mask], depth + 1)
        return node

    def _best_split(self, xs, ys) -> Optional[Tuple[int, float]]:
        """Best (feature, threshold) by SSE reduction; ties keep the
        first candidate in (feature, threshold) order, so growth is
        deterministic."""
        n = len(ys)
        best_score = None
        best: Optional[Tuple[int, float]] = None
        total = ys.sum()
        for feature in range(xs.shape[1]):
            column = xs[:, feature]
            order = _np.argsort(column, kind="stable")
            sorted_x = column[order]
            sorted_y = ys[order]
            prefix = _np.cumsum(sorted_y)
            # Valid split positions: between distinct x values with at
            # least min_leaf samples on each side.
            distinct = sorted_x[:-1] != sorted_x[1:]
            counts = _np.arange(1, n)
            valid = distinct & (counts >= self.min_leaf) & ((n - counts) >= self.min_leaf)
            if not valid.any():
                continue
            left_sum = prefix[:-1]
            left_n = counts
            right_sum = total - left_sum
            right_n = n - counts
            # Maximizing sum(mean^2 * n) over the two sides minimizes SSE.
            score = left_sum**2 / left_n + right_sum**2 / right_n
            score = _np.where(valid, score, -_np.inf)
            pos = int(score.argmax())
            if score[pos] == -_np.inf:
                continue
            if best_score is None or float(score[pos]) > best_score + 1e-12:
                best_score = float(score[pos])
                best = (feature, float((sorted_x[pos] + sorted_x[pos + 1]) / 2.0))
        return best

    def _predict_one(self, tree: _Stump, row: Sequence[float]) -> float:
        node = 0
        while tree.feature[node] >= 0:
            node = tree.left[node] if row[tree.feature[node]] <= tree.threshold[node] else tree.right[node]
        return tree.value[node]

    def predict(self, X: Sequence[Sequence[float]]) -> Tuple[List[float], List[float]]:
        if not self._trees:
            return [self._fallback] * len(X), [0.0] * len(X)
        means: List[float] = []
        stds: List[float] = []
        for row in X:
            votes = [self._predict_one(tree, row) for tree in self._trees]
            mean = sum(votes) / len(votes)
            var = sum((v - mean) ** 2 for v in votes) / len(votes)
            means.append(mean)
            stds.append(math.sqrt(var))
        return means, stds


# ----------------------------------------------------------------------
# Nearest-neighbour backend (pure Python)
# ----------------------------------------------------------------------
class KnnSurrogate:
    """Distance-weighted k-NN regressor; always available."""

    backend = "knn"

    def __init__(self, seed: int = 0, k: int = 5):
        self.seed = seed  # accepted for interface symmetry; k-NN has no RNG
        self.k = k
        self._X: List[List[float]] = []
        self._y: List[float] = []
        self._scales: List[float] = []

    def fit(self, X: Sequence[Sequence[float]], y: Sequence[float]) -> "KnnSurrogate":
        self._X = [list(row) for row in X]
        self._y = list(map(float, y))
        if self._X:
            dims = len(self._X[0])
            self._scales = []
            for d in range(dims):
                column = [row[d] for row in self._X]
                spread = max(column) - min(column)
                self._scales.append(spread if spread > 0 else 1.0)
        return self

    def _distance(self, a: Sequence[float], b: Sequence[float]) -> float:
        return math.sqrt(
            sum(((x - z) / s) ** 2 for x, z, s in zip(a, b, self._scales))
        )

    def predict(self, X: Sequence[Sequence[float]]) -> Tuple[List[float], List[float]]:
        means: List[float] = []
        stds: List[float] = []
        if not self._X:
            return [0.0] * len(X), [0.0] * len(X)
        for row in X:
            ranked = sorted(
                (self._distance(row, kept), index) for index, kept in enumerate(self._X)
            )
            nearest = ranked[: self.k]
            if nearest[0][0] == 0.0:
                exact = [self._y[i] for d, i in nearest if d == 0.0]
                mean = sum(exact) / len(exact)
                means.append(mean)
                stds.append(0.0)
                continue
            weights = [1.0 / (d * d) for d, _ in nearest]
            total = sum(weights)
            mean = sum(w * self._y[i] for w, (_, i) in zip(weights, nearest)) / total
            var = (
                sum(w * (self._y[i] - mean) ** 2 for w, (_, i) in zip(weights, nearest))
                / total
            )
            means.append(mean)
            stds.append(math.sqrt(var))
        return means, stds


def make_surrogate(seed: int = 0, backend: str = "auto", **kwargs: Any):
    """Construct a surrogate model: numpy trees when available, else k-NN.

    ``backend`` forces a choice (``tree`` raises without numpy, which
    is what ``auto`` exists to avoid).
    """
    if backend not in SURROGATE_BACKENDS:
        raise ValueError(f"unknown surrogate backend {backend!r}; pick from {SURROGATE_BACKENDS}")
    if backend == "tree" or (backend == "auto" and _HAVE_NUMPY):
        return TreeSurrogate(seed=seed, **kwargs)
    return KnnSurrogate(seed=seed)


# ----------------------------------------------------------------------
# Per-target model sets
# ----------------------------------------------------------------------
class SurrogateSet:
    """One codec plus one fitted model per target output path."""

    def __init__(self, codec: FeatureCodec, models: Dict[str, Any], backend: str):
        self.codec = codec
        self.models = models
        self.backend = backend

    @classmethod
    def fit(
        cls,
        records: Sequence[Tuple[Mapping[str, Any], Mapping[str, float]]],
        targets: Sequence[str],
        seed: int = 0,
        backend: str = "auto",
        exclude: Sequence[str] = DEFAULT_EXCLUDE,
    ) -> "SurrogateSet":
        """Train on ``(kwargs, outputs)`` pairs, one model per target.

        Records missing a target are skipped for that target's model
        only; a target with no usable records predicts ``(0, 0)``.
        """
        codec = FeatureCodec.from_records([kwargs for kwargs, _ in records], exclude=exclude)
        models: Dict[str, Any] = {}
        resolved = None
        for target in targets:
            usable = [
                (kwargs, outputs[target])
                for kwargs, outputs in records
                if isinstance(outputs.get(target), (int, float))
            ]
            model = make_surrogate(seed=seed, backend=backend)
            scaled = model.backend == "knn"
            model.fit(
                codec.encode_many([kwargs for kwargs, _ in usable], scaled=scaled),
                [y for _, y in usable],
            )
            models[target] = model
            resolved = model.backend
        return cls(codec, models, resolved or ("tree" if _HAVE_NUMPY else "knn"))

    def predict(
        self, kwargs_list: Sequence[Mapping[str, Any]]
    ) -> Dict[str, Tuple[List[float], List[float]]]:
        out: Dict[str, Tuple[List[float], List[float]]] = {}
        for target, model in self.models.items():
            rows = self.codec.encode_many(kwargs_list, scaled=model.backend == "knn")
            out[target] = model.predict(rows)
        return out


# ----------------------------------------------------------------------
# Training data from the cache journal
# ----------------------------------------------------------------------
def journal_records(
    store,
    fn: Optional[str] = None,
    code_fingerprint: Optional[str] = None,
    max_records: Optional[int] = None,
) -> List[dict]:
    """Per-point training records from a cache's journal.

    Filters to one point function (``fn`` as ``module:qualname``) and,
    when given, to records produced under the current code fingerprint
    (stale-code measurements would otherwise poison output targets --
    ``elapsed_s`` consumers typically skip this filter, old timings
    still being better than no timings).  Newest records win the
    ``max_records`` cap.  Never raises: a missing or corrupt journal
    is an empty training set.
    """
    try:
        records = store.read_journal()
    except Exception:
        return []
    out = []
    for record in records:
        if record.get("type") != "point":
            continue
        if fn is not None and record.get("fn") != fn:
            continue
        if code_fingerprint is not None and record.get("code_fingerprint") != code_fingerprint:
            continue
        if not isinstance(record.get("kwargs"), dict):
            continue
        out.append(record)
    if max_records is not None and len(out) > max_records:
        out = out[-max_records:]
    return out
