"""Content-addressed on-disk cache for sweep-point results.

Reproducing the paper means re-running the same figure sweeps over and
over while only a few points change: a scheduler tweak re-runs fig07,
not fig02.  Every :class:`~repro.harness.parallel.SweepPoint` is a pure
function of ``(fn, kwargs, seed)`` by the determinism contract, so its
result is cacheable by construction.  This module stores those results
on disk, keyed by a fingerprint of

* the point function's fully qualified name,
* its canonicalised keyword arguments (the derived per-point seed is
  one of them),
* a *code fingerprint* -- a hash over the sources of every module the
  point function transitively imports from the instrumented packages
  (``repro.*`` plus the function's own top-level package), and
* the result-schema version.

Editing ``src/repro/core/scheduler.py`` therefore invalidates exactly
the points whose drivers transitively import it; sweeps that never
touch the scheduler stay warm.  Imports are discovered statically (via
``ast``) so the fingerprint never depends on import order or runtime
state, and per-module source hashes are memoised on ``(path, mtime,
size)`` so a warm lookup costs stat calls, not file reads.

Entries are JSON files named ``<fingerprint>.json`` under the cache
root (default ``.repro-cache/``).  Writes go to a unique temporary file
in the same directory followed by :func:`os.replace`, so concurrent
runs sharing a cache directory can race on the same entry and readers
still never observe a torn file.  Hits refresh the entry's mtime, which
is what ``prune()``'s LRU ordering evicts on.

The cache is off unless asked for: pass ``cache=...`` to
:func:`repro.harness.parallel.run_sweep` / ``Sweep.run``, use the CLI's
``--cache`` / ``--cache-dir`` flags, or set ``REPRO_CACHE=1`` (and
optionally ``REPRO_CACHE_DIR``) in the environment.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple, Union

#: Bump when the stored entry layout (or the meaning of results)
#: changes; old entries simply stop matching.
SCHEMA_VERSION = 1

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment toggles for ambient (no-code-change) caching.
ENV_ENABLE = "REPRO_CACHE"
ENV_DIR = "REPRO_CACHE_DIR"

#: Name of the per-cache-directory run journal (one JSON line per
#: cached sweep execution).
JOURNAL_NAME = "journal.jsonl"


class Uncacheable(TypeError):
    """Raised when a point's kwargs or result cannot be canonicalised."""


# ----------------------------------------------------------------------
# Canonicalisation
# ----------------------------------------------------------------------
def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to a canonical JSON-representable form.

    Tuples become lists, dict keys must be strings and are emitted in
    sorted order; anything outside the JSON-primitive universe raises
    :class:`Uncacheable` (such points simply bypass the cache).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise Uncacheable(f"non-string dict key {key!r}")
            out[key] = canonical_value(value[key])
        return out
    raise Uncacheable(f"value of type {type(value).__name__} is not cacheable")


# ----------------------------------------------------------------------
# Code fingerprinting
# ----------------------------------------------------------------------
# (path, mtime_ns, size) -> sha256 hexdigest of the file's bytes.
_source_hash_memo: Dict[Tuple[str, int, int], str] = {}
# (path, mtime_ns, size) -> frozenset of absolute module names the
# file's import statements mention (unfiltered).
_import_memo: Dict[Tuple[str, int, int], FrozenSet[str]] = {}
# module name -> (source path or None, is_package); resolution is
# stable for the life of the process.
_module_file_memo: Dict[str, Tuple[Optional[str], bool]] = {}


def clear_fingerprint_caches() -> None:
    """Drop the per-process memo tables (used by tests)."""
    _source_hash_memo.clear()
    _import_memo.clear()
    _module_file_memo.clear()


def _file_state(path: str) -> Optional[Tuple[str, int, int]]:
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (path, stat.st_mtime_ns, stat.st_size)


def _source_hash(path: str) -> Optional[str]:
    state = _file_state(path)
    if state is None:
        return None
    cached = _source_hash_memo.get(state)
    if cached is None:
        try:
            with open(path, "rb") as handle:
                cached = hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            return None
        _source_hash_memo[state] = cached
    return cached


def _module_file(name: str) -> Tuple[Optional[str], bool]:
    """Resolve a module name to ``(source path, is_package)``.

    Returns ``(None, False)`` for names that are not importable modules
    with Python source (attributes, extension modules, builtins).
    """
    cached = _module_file_memo.get(name)
    if cached is not None:
        return cached
    import importlib.util

    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, AttributeError, ValueError):
        spec = None
    if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
        result: Tuple[Optional[str], bool] = (None, False)
    else:
        result = (spec.origin, bool(spec.submodule_search_locations))
    _module_file_memo[name] = result
    return result


def _imports_of(path: str, package: str) -> FrozenSet[str]:
    """Absolute module names mentioned by ``path``'s import statements.

    ``from X import y`` contributes both ``X`` and ``X.y`` (``y`` may be
    a submodule or a mere attribute; non-modules are filtered out later
    by :func:`_module_file`).  Relative imports are resolved against
    ``package``.
    """
    state = _file_state(path)
    if state is None:
        return frozenset()
    cached = _import_memo.get(state)
    if cached is not None:
        return cached
    names: Set[str] = set()
    try:
        with open(path, "rb") as handle:
            tree = ast.parse(handle.read())
    except (OSError, SyntaxError):
        _import_memo[state] = frozenset()
        return frozenset()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = package.split(".") if package else []
                if node.level - 1 > len(parts):
                    continue
                kept = parts[: len(parts) - (node.level - 1)]
                base = ".".join(kept)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            if not base:
                continue
            names.add(base)
            for alias in node.names:
                if alias.name != "*":
                    names.add(f"{base}.{alias.name}")
    frozen = frozenset(names)
    _import_memo[state] = frozen
    return frozen


def _parents_of(name: str) -> List[str]:
    parts = name.split(".")
    return [".".join(parts[:i]) for i in range(1, len(parts))]


def transitive_sources(
    module_name: str, roots: FrozenSet[str]
) -> Dict[str, Optional[str]]:
    """Map every ``roots``-rooted module transitively imported by
    ``module_name`` (including itself and parent packages) to the
    sha256 of its source file."""
    seen: Dict[str, Optional[str]] = {}
    queue: List[str] = [module_name] + _parents_of(module_name)
    while queue:
        name = queue.pop()
        if name in seen or name.partition(".")[0] not in roots:
            continue
        path, is_package = _module_file(name)
        if path is None:
            continue
        seen[name] = _source_hash(path)
        package = name if is_package else name.rpartition(".")[0]
        for imported in _imports_of(path, package):
            if imported.partition(".")[0] not in roots:
                continue
            if imported not in seen:
                queue.append(imported)
                for parent in _parents_of(imported):
                    if parent not in seen:
                        queue.append(parent)
    return seen


def code_fingerprint(fn: Callable[..., Any], roots: Optional[Set[str]] = None) -> str:
    """Hash the transitive module sources ``fn`` depends on.

    ``roots`` limits which top-level packages are followed; by default
    the instrumented ``repro`` package plus ``fn``'s own top-level
    package (so test-local point functions fingerprint correctly too).
    """
    module = getattr(fn, "__module__", "") or ""
    if roots is None:
        roots = {"repro"}
        if module:
            roots.add(module.partition(".")[0])
    sources = transitive_sources(module, frozenset(roots))
    digest = hashlib.sha256()
    for name in sorted(sources):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update((sources[name] or "missing").encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def point_fingerprint(
    fn: Callable[..., Any],
    kwargs: Dict[str, Any],
    schema_version: int = SCHEMA_VERSION,
    roots: Optional[Set[str]] = None,
) -> Tuple[str, Dict[str, Any], str]:
    """Content address of one sweep point.

    Returns ``(fingerprint, canonical_kwargs, code_fingerprint)``;
    raises :class:`Uncacheable` when the kwargs cannot be canonicalised
    or the function has no resolvable module source.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise Uncacheable(f"{fn!r} is not a module-level function")
    canonical = canonical_value(kwargs)
    code_fp = code_fingerprint(fn, roots=roots)
    key_material = json.dumps(
        {
            "schema": schema_version,
            "fn": f"{module}:{qualname}",
            "kwargs": canonical,
            "code": code_fp,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    fingerprint = hashlib.sha256(key_material.encode("utf-8")).hexdigest()
    return fingerprint, canonical, code_fp


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss/byte/seconds-saved counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    uncacheable: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seconds_saved: float = 0.0

    def snapshot(self) -> Dict[str, Union[int, float]]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta_since(self, before: Dict[str, Union[int, float]]) -> Dict[str, Union[int, float]]:
        now = self.snapshot()
        return {
            key: round(now[key] - before[key], 6)
            if isinstance(now[key], float)
            else now[key] - before[key]
            for key in now
        }


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed JSON store for sweep-point results."""

    def __init__(
        self,
        root: Union[str, Path] = DEFAULT_CACHE_DIR,
        schema_version: int = SCHEMA_VERSION,
        roots: Optional[Set[str]] = None,
    ):
        self.root = Path(root)
        self.schema_version = schema_version
        self.roots = roots
        self.stats = CacheStats()
        self._tmp_serial = 0

    # -- keying --------------------------------------------------------
    def _fingerprint(self, point) -> Optional[Tuple[str, Dict[str, Any], str]]:
        try:
            return point_fingerprint(
                point.fn, point.kwargs, self.schema_version, roots=self.roots
            )
        except Uncacheable:
            return None

    def _entry_path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    # -- lookup / store ------------------------------------------------
    def lookup(self, point) -> Tuple[bool, Any]:
        """Return ``(hit, result)``; a miss returns ``(False, None)``."""
        keyed = self._fingerprint(point)
        if keyed is None:
            self.stats.uncacheable += 1
            return False, None
        fingerprint, _, _ = keyed
        path = self._entry_path(fingerprint)
        try:
            data = path.read_bytes()
            entry = json.loads(data)
        except (OSError, ValueError):
            self.stats.misses += 1
            return False, None
        if (
            entry.get("schema") != self.schema_version
            or entry.get("fingerprint") != fingerprint
        ):
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        self.stats.bytes_read += len(data)
        self.stats.seconds_saved += float(entry.get("elapsed_s", 0.0))
        try:
            os.utime(path)  # refresh the mtime-LRU position
        except OSError:
            pass
        return True, entry["result"]

    def store(self, point, result: Any, elapsed_s: float) -> Any:
        """Persist one computed result; returns the value the sweep
        should merge.

        The returned value is the stored result round-tripped through
        JSON, so a run that writes the cache merges exactly what a
        later warm run will read back -- warm and cold outputs are
        byte-identical.  Unserialisable results are passed through
        untouched (and simply never cached).
        """
        keyed = self._fingerprint(point)
        if keyed is None:
            self.stats.uncacheable += 1
            return result
        fingerprint, canonical_kwargs, code_fp = keyed
        try:
            result_json = json.dumps(result, sort_keys=False)
        except (TypeError, ValueError):
            self.stats.uncacheable += 1
            return result
        entry = {
            "schema": self.schema_version,
            "fingerprint": fingerprint,
            "fn": f"{point.fn.__module__}:{point.fn.__qualname__}",
            "label": getattr(point, "label", ""),
            "kwargs": canonical_kwargs,
            "code_fingerprint": code_fp,
            "elapsed_s": round(float(elapsed_s), 6),
            "saved_at": time.time(),
            "result": json.loads(result_json),
        }
        data = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        path = self._entry_path(fingerprint)
        self._atomic_write(path, data)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        self._journal_point(entry)
        return entry["result"]

    def _journal_point(self, entry: Dict[str, Any]) -> None:
        """Append one per-point training record to the run journal.

        Unlike the entry files -- which LRU-prune and invalidate on
        code changes -- the journal accumulates every point ever
        computed, which is exactly the training set the surrogate
        models (:mod:`repro.harness.surrogate`) and the cost model's
        surrogate tier learn from.  Only the numeric leaves of the
        result are kept (capped and sorted), so records stay small and
        deterministic.  Best-effort like every journal write.
        """
        from repro.harness.surrogate import flatten_numeric

        record = {
            "type": "point",
            "at": round(float(entry["saved_at"]), 3),
            "fingerprint": entry["fingerprint"],
            "code_fingerprint": entry["code_fingerprint"],
            "fn": entry["fn"],
            "label": entry["label"],
            "kwargs": entry["kwargs"],
            "outputs": flatten_numeric(entry["result"]),
            "elapsed_s": entry["elapsed_s"],
        }
        try:
            line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        except (TypeError, ValueError):
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.root / JOURNAL_NAME, "ab") as handle:
                handle.write(line)
        except OSError:
            pass

    def _atomic_write(self, path: Path, data: bytes) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._tmp_serial += 1
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{self._tmp_serial}")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- journal -------------------------------------------------------
    def record_run(self, name: Optional[str], delta: Dict[str, Union[int, float]]) -> None:
        """Append one line to the cache-dir run journal and mirror the
        counters into the active observability session (if any)."""
        record = {"sweep": name or "", "at": round(time.time(), 3)}
        record.update(delta)
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.root / JOURNAL_NAME, "ab") as handle:
                handle.write(line)
        except OSError:
            pass
        from repro.obs import bump
        from repro.obs.session import current_session

        session = current_session()
        if session is None:
            return
        for key in ("hits", "misses", "writes", "uncacheable", "bytes_read", "bytes_written"):
            bump(f"cache.{key}", delta.get(key, 0))
        bump("cache.seconds_saved", delta.get("seconds_saved", 0.0))
        if session.tracer is not None:
            from repro.obs.trace import TraceType

            session.tracer.emit(
                TraceType.CACHE, 0.0, "harness.cache", sweep=name or "", **delta
            )

    def read_journal(self) -> List[dict]:
        """The run journal as a list of dicts (empty when absent).

        Two record shapes share the file: per-sweep aggregate lines
        (:meth:`record_run`) and per-point training lines
        (``"type": "point"``, written by :meth:`store`).  Torn or
        corrupt lines (a crashed writer, a truncated disk) are skipped
        rather than raised: journal consumers -- stats output, the
        suite cost model, the surrogate trainers -- must degrade to
        "no data", never fail a run.
        """
        path = self.root / JOURNAL_NAME
        records = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        records.append(record)
        except OSError:
            pass
        return records

    def point_records(self) -> List[dict]:
        """Only the per-point training records, journal order."""
        return [
            record
            for record in self.read_journal()
            if record.get("type") == "point" and isinstance(record.get("kwargs"), dict)
        ]

    def compact_journal(self, max_records: Optional[int] = None) -> Dict[str, int]:
        """Rewrite the journal, dropping superseded point records.

        A point record is superseded when a *newer* record exists for
        the same ``(fn, kwargs)`` -- the usual causes being an entry
        recomputed after LRU pruning (duplicate fingerprint) or after
        a code change (new ``code_fingerprint`` for the same point).
        Only the newest survives, so the surrogate training set never
        mixes measurements of different code versions of one point.

        ``max_records`` then caps the total journal length, oldest
        lines first -- the journal's equivalent of :meth:`prune`'s
        mtime-LRU entry eviction.  The rewrite is atomic (same
        temp-file + ``os.replace`` dance as entry writes), so a reader
        racing the compaction sees either the old or the new journal,
        never a torn one.
        """
        records = self.read_journal()
        newest_by_key: Dict[str, int] = {}
        for index, record in enumerate(records):
            if record.get("type") != "point":
                continue
            key = json.dumps(
                [record.get("fn"), record.get("kwargs")], sort_keys=True
            )
            newest_by_key[key] = index
        keep_point_indices = set(newest_by_key.values())
        kept: List[dict] = []
        superseded = 0
        for index, record in enumerate(records):
            if record.get("type") == "point" and index not in keep_point_indices:
                superseded += 1
                continue
            kept.append(record)
        over_cap = 0
        if max_records is not None and len(kept) > max_records:
            over_cap = len(kept) - max_records
            kept = kept[-max_records:]
        stats = {
            "records_before": len(records),
            "records_kept": len(kept),
            "dropped_superseded": superseded,
            "dropped_over_cap": over_cap,
        }
        if not records and not (self.root / JOURNAL_NAME).exists():
            return stats
        data = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in kept
        ).encode("utf-8")
        try:
            self._atomic_write(self.root / JOURNAL_NAME, data)
        except OSError:
            pass
        return stats

    # -- maintenance ---------------------------------------------------
    def entries(self) -> List[dict]:
        """Metadata for every entry: path, size, mtime, fn, elapsed."""
        out = []
        try:
            paths = sorted(self.root.glob("*.json"))
        except OSError:
            return out
        for path in paths:
            try:
                stat = path.stat()
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                continue
            out.append(
                {
                    "path": str(path),
                    "fingerprint": entry["fingerprint"],
                    "fn": entry.get("fn", "?"),
                    "label": entry.get("label", ""),
                    "elapsed_s": float(entry.get("elapsed_s", 0.0)),
                    "size_bytes": stat.st_size,
                    "mtime": stat.st_mtime,
                }
            )
        return out

    def total_bytes(self) -> int:
        return sum(entry["size_bytes"] for entry in self.entries())

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
    ) -> int:
        """Evict least-recently-used entries (by mtime; hits refresh it)
        until the cache fits both limits.  Returns the eviction count."""
        entries = sorted(self.entries(), key=lambda entry: entry["mtime"])
        total = sum(entry["size_bytes"] for entry in entries)
        count = len(entries)
        removed = 0
        for entry in entries:
            over_bytes = max_bytes is not None and total > max_bytes
            over_count = max_entries is not None and count > max_entries
            if not over_bytes and not over_count:
                break
            try:
                os.unlink(entry["path"])
            except OSError:
                continue
            total -= entry["size_bytes"]
            count -= 1
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry (and the journal). Returns entries removed."""
        removed = 0
        for entry in self.entries():
            try:
                os.unlink(entry["path"])
                removed += 1
            except OSError:
                pass
        try:
            os.unlink(self.root / JOURNAL_NAME)
        except OSError:
            pass
        return removed

    # -- observability -------------------------------------------------
    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        prefix = prefix or "cache"
        registry.gauge(f"{prefix}.hits", lambda: self.stats.hits)
        registry.gauge(f"{prefix}.misses", lambda: self.stats.misses)
        registry.gauge(f"{prefix}.writes", lambda: self.stats.writes)
        registry.gauge(f"{prefix}.uncacheable", lambda: self.stats.uncacheable)
        registry.gauge(f"{prefix}.bytes_read", lambda: self.stats.bytes_read)
        registry.gauge(f"{prefix}.bytes_written", lambda: self.stats.bytes_written)
        registry.gauge(f"{prefix}.seconds_saved", lambda: self.stats.seconds_saved)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r}, stats={self.stats})"


# ----------------------------------------------------------------------
# Ambient configuration
# ----------------------------------------------------------------------
_configured: Optional[ResultCache] = None
_env_cache: Optional[ResultCache] = None

#: Accepted by ``run_sweep(cache=...)`` / ``Sweep.run(cache=...)``.
CacheSpec = Union[None, bool, str, Path, ResultCache]


def configure(cache: CacheSpec = None) -> Optional[ResultCache]:
    """Install (or clear, with ``False``) the process-wide default cache."""
    global _configured
    if cache is False or cache is None:
        _configured = None
    else:
        _configured = resolve_cache(cache)
    return _configured


def active_cache() -> Optional[ResultCache]:
    """The ambient cache: explicit :func:`configure` wins, then the
    ``REPRO_CACHE`` environment toggle, else None (caching off)."""
    global _env_cache
    if _configured is not None:
        return _configured
    if os.environ.get(ENV_ENABLE, "") in ("", "0"):
        return None
    directory = os.environ.get(ENV_DIR, "") or DEFAULT_CACHE_DIR
    if _env_cache is None or str(_env_cache.root) != directory:
        _env_cache = ResultCache(directory)
    return _env_cache


def resolve_cache(cache: CacheSpec) -> Optional[ResultCache]:
    """Normalise a user-facing cache argument to a store (or None)."""
    if cache is None:
        return active_cache()
    if cache is False:
        return None
    if cache is True:
        return ResultCache(os.environ.get(ENV_DIR, "") or DEFAULT_CACHE_DIR)
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    if isinstance(cache, ResultCache):
        return cache
    raise TypeError(f"cannot interpret cache specification {cache!r}")
