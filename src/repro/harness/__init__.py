"""Experiment harness: testbed construction and per-figure drivers.

:mod:`repro.harness.testbed` builds the paper's rack -- client hosts,
a 100 Gbps network, and SmartNIC JBOF targets -- for any of the five
configurations (gimbal, reflex, parda, flashfq, vanilla).  The modules
under :mod:`repro.harness.experiments` each regenerate one table or
figure of the paper and are what the benchmark suite calls.
"""

from repro.harness.adaptive import CrossoverSpec, ExploreSpace, explore, find_crossovers
from repro.harness.cache import ResultCache, resolve_cache
from repro.harness.parallel import (
    Sweep,
    SweepPoint,
    merge_histograms,
    merge_interval_series,
    merge_rows,
    merge_timelines,
    point_seed,
    run_sweep,
    sweep_axes,
)
from repro.harness.report import format_series, format_table
from repro.harness.surrogate import SurrogateSet, have_numpy, make_surrogate
from repro.harness.testbed import SCHEMES, Testbed, TestbedConfig

__all__ = [
    "CrossoverSpec",
    "ExploreSpace",
    "explore",
    "find_crossovers",
    "SurrogateSet",
    "make_surrogate",
    "have_numpy",
    "Testbed",
    "TestbedConfig",
    "SCHEMES",
    "ResultCache",
    "resolve_cache",
    "format_table",
    "format_series",
    "Sweep",
    "SweepPoint",
    "run_sweep",
    "sweep_axes",
    "point_seed",
    "merge_rows",
    "merge_histograms",
    "merge_interval_series",
    "merge_timelines",
]
