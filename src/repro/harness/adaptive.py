"""Surrogate-guided adaptive sweeps: screen huge grids, simulate few.

Brute-force sweeps -- even cached, parallel, and sharded -- cannot
touch the 10^4..10^6-point what-if grids the datacenter-offload sizing
questions ask (tenants x credits x offload capacity x skew).  This
module turns the result cache from a memoizer into a grid-screening
accelerator:

1. expand the full parameter grid declaratively (same axes protocol as
   :func:`repro.harness.parallel.sweep_axes`);
2. score every grid point with a surrogate model
   (:mod:`repro.harness.surrogate`) trained on the points simulated so
   far -- optionally warm-started from the cache journal's records of
   *previous* runs -- plus an ensemble-disagreement uncertainty;
3. simulate only the points near predicted crossovers/cliffs and in
   high-uncertainty regions, dispatching through the ordinary
   :func:`~repro.harness.parallel.run_sweep` path so per-point seeds,
   cache write-back and byte-identity semantics are reused unchanged;
4. retrain and repeat until a held-out error bound is met or the
   simulation budget is spent.

The held-out error is honest by construction: every batch is predicted
*before* it is simulated, so the reported RMSE is always out-of-sample.
Every point the engine does simulate is built with the same label
convention and :func:`~repro.harness.parallel.point_seed` derivation as
a declarative sweep, so its result is byte-identical to a direct
``run_sweep`` of that point (a property test and the explore perf gate
both enforce this).

``python -m repro explore <experiment>`` is the CLI entry point;
drivers participate by exposing ``explore_space() -> ExploreSpace``.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.harness.cache import CacheSpec, Uncacheable, point_fingerprint, resolve_cache
from repro.harness.parallel import SweepPoint, WorkerPool, point_seed, run_sweep, sweep_axes
from repro.harness.surrogate import (
    DEFAULT_EXCLUDE,
    SurrogateSet,
    flatten_numeric,
    journal_records,
)
from repro.obs import bump
from repro.sim.rng import derive_seed

#: Acquisition weights: proximity to a predicted crossover/cliff vs
#: ensemble disagreement.  Both terms are normalized, so the exact
#: split matters less than having both.
CROSSOVER_WEIGHT = 0.6
UNCERTAINTY_WEIGHT = 0.4

#: Weight of the bisection term: an unsimulated point inside an
#: *observed* sign-flip bracket.  Deliberately above the other two
#: terms combined -- a confirmed bracket is ground truth, a prediction
#: is an opinion, so brackets refine first.
BISECTION_WEIGHT = 2.0


# ----------------------------------------------------------------------
# Declarative exploration space
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrossoverSpec:
    """Where the hunt is: a signal whose sign flips along one axis.

    ``metric - minus`` (two curves crossing) when ``minus`` is given,
    else ``metric - level`` (a curve crossing a threshold/cliff).
    Crossovers are reported per combination of the other axes.
    """

    along: str
    metric: str
    minus: Optional[str] = None
    level: float = 0.0

    def signal(self, outputs: Mapping[str, float]) -> Optional[float]:
        value = outputs.get(self.metric)
        if value is None:
            return None
        if self.minus is not None:
            other = outputs.get(self.minus)
            if other is None:
                return None
            return float(value) - float(other)
        return float(value) - self.level

    @property
    def metrics(self) -> Tuple[str, ...]:
        return (self.metric,) if self.minus is None else (self.metric, self.minus)


@dataclass
class ExploreSpace:
    """A parameter grid plus what to learn about it.

    ``axes`` expand exactly like a declarative sweep (last axis
    fastest); ``fixed`` kwargs ride along on every point; ``targets``
    are dotted output paths (as produced by
    :func:`~repro.harness.surrogate.flatten_numeric`) the surrogate
    must predict; ``crossover`` names the structure to locate.
    """

    name: str
    point_fn: Callable[..., Any]
    axes: Dict[str, List[Any]]
    fixed: Dict[str, Any] = field(default_factory=dict)
    targets: Tuple[str, ...] = ()
    crossover: Optional[CrossoverSpec] = None
    root_seed: int = 42

    def __post_init__(self) -> None:
        self.axes = {name: list(values) for name, values in self.axes.items()}
        if self.crossover is not None and self.crossover.along not in self.axes:
            raise ValueError(
                f"crossover axis {self.crossover.along!r} is not one of the "
                f"grid axes {list(self.axes)}"
            )
        targets = list(self.targets)
        if self.crossover is not None:
            for metric in self.crossover.metrics:
                if metric not in targets:
                    targets.append(metric)
        self.targets = tuple(targets)

    def combos(self) -> List[Dict[str, Any]]:
        return sweep_axes(self.axes)

    def label(self, combo: Mapping[str, Any]) -> str:
        """Same label convention as ``build_sweep``: axis order, k=v."""
        return ",".join(f"{key}={combo[key]}" for key in combo)

    def point(self, index: int, combo: Mapping[str, Any]) -> SweepPoint:
        """Build the grid point exactly as a declarative sweep would.

        The per-point seed derives from ``(root_seed, label)`` through
        :func:`~repro.harness.parallel.point_seed`, so simulating this
        point here, via ``run_sweep``, or from a driver's ``sweep()``
        with the same label produces byte-identical results.
        """
        label = self.label(combo)
        return SweepPoint(
            index=index,
            label=label,
            fn=self.point_fn,
            kwargs={
                "seed": point_seed(self.root_seed, label),
                **self.fixed,
                **combo,
            },
        )


# ----------------------------------------------------------------------
# Crossover extraction
# ----------------------------------------------------------------------
def _group_along(
    space: ExploreSpace, combos: Sequence[Mapping[str, Any]]
) -> Dict[Tuple, List[int]]:
    """Grid indices per combination of the non-``along`` axes.

    Within each group the indices follow the ``along`` axis's declared
    order (grid expansion order).  Insertion order of the groups is
    itself deterministic, so iterating the dict is reproducible.
    """
    spec = space.crossover
    groups: Dict[Tuple, List[int]] = {}
    for index, combo in enumerate(combos):
        key = tuple((axis, combo[axis]) for axis in space.axes if axis != spec.along)
        groups.setdefault(key, []).append(index)
    return groups


def find_crossovers(
    space: ExploreSpace, signals: Mapping[int, Optional[float]]
) -> List[Dict[str, Any]]:
    """Locate sign flips of the crossover signal along its axis.

    ``signals`` maps grid-combo index to the signal value (predicted or
    actual); indices absent or mapped to ``None`` are skipped, so a
    sparse (observed-points-only) mapping still locates flips across
    the gaps between simulated points.  For every combination of the
    non-``along`` axes, the ``along`` axis is scanned in declared
    order; each sign change between consecutive *known* signals is
    reported with its bracketing grid values and a linear-interpolation
    estimate.  Shared by the engine and the frozen-ground-truth
    regeneration, so "what counts as a crossover" can never drift
    between the two.
    """
    spec = space.crossover
    if spec is None:
        return []
    combos = space.combos()
    groups = _group_along(space, combos)
    out: List[Dict[str, Any]] = []
    for key in groups:
        # Grid expansion order == axis declared order; unknown-signal
        # points drop out so flips are found across sampling gaps.
        indices = [index for index in groups[key] if signals.get(index) is not None]
        for left, right in zip(indices, indices[1:]):
            s_left, s_right = signals[left], signals[right]
            if s_left == 0.0:
                flip = True
                estimate = float(combos[left][spec.along])
            elif s_left * s_right < 0.0:
                flip = True
                lo = float(combos[left][spec.along])
                hi = float(combos[right][spec.along])
                estimate = lo + (hi - lo) * (s_left / (s_left - s_right))
            else:
                flip = False
            if flip:
                out.append(
                    {
                        "group": {axis: value for axis, value in key},
                        "along": spec.along,
                        "lo": combos[left][spec.along],
                        "hi": combos[right][spec.along],
                        "estimate": round(estimate, 6),
                        "signal_lo": round(s_left, 6),
                        "signal_hi": round(s_right, 6),
                    }
                )
    return out


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class ExploreResult:
    """Everything one adaptive exploration produced."""

    space_name: str
    grid_points: int
    simulated_labels: List[str]
    rounds: int
    backend: str
    budget_points: int
    heldout: Dict[str, Dict[str, float]]
    crossovers: List[Dict[str, Any]]
    results: Dict[str, Any]
    predicted: Dict[str, List[float]]
    wall_s: float
    stopped_on: str

    @property
    def simulated_count(self) -> int:
        return len(self.simulated_labels)

    @property
    def fraction_simulated(self) -> float:
        return self.simulated_count / max(1, self.grid_points)

    def report(self) -> Dict[str, Any]:
        """JSON-safe summary (results themselves stay out of it)."""
        return {
            "space": self.space_name,
            "grid_points": self.grid_points,
            "simulated": self.simulated_count,
            "fraction_simulated": round(self.fraction_simulated, 4),
            "budget_points": self.budget_points,
            "rounds": self.rounds,
            "backend": self.backend,
            "stopped_on": self.stopped_on,
            "heldout": self.heldout,
            "crossovers": self.crossovers,
            "wall_s": round(self.wall_s, 3),
        }


def _resolve_budget(budget: float, grid: int) -> int:
    """``budget`` <= 1 is a grid fraction; > 1 is an absolute count."""
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    points = int(budget) if budget > 1.0 else int(math.floor(budget * grid))
    return max(1, min(points, grid))


def explore(
    space: ExploreSpace,
    budget: float = 0.2,
    target_error: float = 0.05,
    batch_size: Optional[int] = None,
    jobs: int = 1,
    cache: CacheSpec = None,
    pool: Optional[WorkerPool] = None,
    backend: str = "auto",
    bootstrap: bool = True,
    max_rounds: int = 12,
    progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> ExploreResult:
    """Adaptively explore ``space``, simulating at most ``budget`` points.

    ``budget`` is a grid fraction (<= 1.0) or an absolute point count;
    ``target_error`` stops the loop early once every target's held-out
    relative RMSE (RMSE over the observed value range) is under it.
    ``jobs``/``cache``/``pool`` pass straight through to
    :func:`~repro.harness.parallel.run_sweep`, so cached points replay
    from disk and computed points write back -- an exploration warms
    the same cache a sweep would.  ``backend`` picks the surrogate
    (``auto``/``tree``/``knn``); ``bootstrap`` seeds training with the
    cache journal's records of this point function under the current
    code fingerprint.

    The loop is a pure function of (space, arguments, journal
    contents): initial design and batch selection use seeded RNG and
    deterministic tie-breaking, never the wall clock.
    """
    started = time.perf_counter()
    combos = space.combos()
    grid = len(combos)
    budget_points = _resolve_budget(budget, grid)
    batch = batch_size if batch_size else max(1, budget_points // 4)
    init_n = min(budget_points, max(3, budget_points // 3))
    spec = space.crossover

    def emit(event: str, payload: Dict[str, Any]) -> None:
        if progress is not None:
            progress(event, payload)

    # -- journal warm start -------------------------------------------
    store = resolve_cache(cache)
    extra_training: List[Tuple[Dict[str, Any], Dict[str, float]]] = []
    if bootstrap and store is not None:
        probe = space.point(0, combos[0])
        try:
            _, _, code_fp = point_fingerprint(
                probe.fn, probe.kwargs, store.schema_version, roots=store.roots
            )
        except Uncacheable:
            code_fp = None
        if code_fp is not None:
            fn_name = f"{probe.fn.__module__}:{probe.fn.__qualname__}"
            for record in journal_records(store, fn=fn_name, code_fingerprint=code_fp):
                outputs = record.get("outputs")
                if isinstance(outputs, dict):
                    extra_training.append((record["kwargs"], outputs))

    # -- state ---------------------------------------------------------
    observed: Dict[int, Dict[str, float]] = {}  # combo index -> flat outputs
    results_by_label: Dict[str, Any] = {}
    heldout_pairs: Dict[str, List[Tuple[float, float]]] = {t: [] for t in space.targets}
    pending_preds: List[Tuple[str, float, int]] = []  # (target, prediction, combo index)
    surrogate: Optional[SurrogateSet] = None
    resolved_backend = backend
    rounds = 0
    stopped_on = "budget"

    def train() -> SurrogateSet:
        records = extra_training + [
            (combos[index], observed[index]) for index in sorted(observed)
        ]
        return SurrogateSet.fit(
            records, space.targets, seed=derive_seed(space.root_seed, "explore:model"),
            backend=backend, exclude=DEFAULT_EXCLUDE,
        )

    def simulate(indices: List[int]) -> None:
        nonlocal surrogate, resolved_backend
        points = [space.point(pos, combos[index]) for pos, index in enumerate(indices)]
        # Held-out bookkeeping: predictions are recorded before the
        # batch runs, so the error is always out-of-sample.
        if surrogate is not None:
            predictions = surrogate.predict([combos[index] for index in indices])
            for target, (means, _) in predictions.items():
                for offset, index in enumerate(indices):
                    pending_preds.append((target, means[offset], index))
        values = run_sweep(
            points, jobs=jobs, cache=cache, name=f"explore:{space.name}", pool=pool
        )
        for point, index, value in zip(points, indices, values):
            flat = flatten_numeric(value)
            observed[index] = flat
            results_by_label[point.label] = value
        # Resolve the recorded predictions to (predicted, actual) pairs.
        still_pending: List[Tuple[str, float, int]] = []
        for target, pred, index in pending_preds:
            if index in observed and target in observed[index]:
                heldout_pairs[target].append((pred, observed[index][target]))
            else:
                still_pending.append((target, pred, index))
        pending_preds[:] = still_pending
        bump("explore.simulated", len(indices))
        emit("batch", {"simulated": len(observed), "budget": budget_points})

    # -- initial design ------------------------------------------------
    # Stratified when hunting crossovers: every group of the non-along
    # axes gets its along-axis endpoints, so a sign flip anywhere in a
    # group is bracketed from round one and bisection (the strongest
    # acquisition term) engages immediately.  Random fill tops up to
    # the target size; everything is seeded, so the design is a pure
    # function of (space, budget).
    rng = random.Random(derive_seed(space.root_seed, f"explore:{space.name}:init"))
    initial = {0, grid - 1}
    if spec is not None:
        for indices in _group_along(space, combos).values():
            if len(initial) + 2 > budget_points:
                break
            initial.add(indices[0])
            initial.add(indices[-1])
    while len(initial) < min(budget_points, max(init_n, len(initial))):
        initial.add(rng.randrange(grid))
    simulate(sorted(initial))
    rounds += 1

    # -- adaptive refinement -------------------------------------------
    while len(observed) < budget_points and rounds < max_rounds:
        surrogate = train()
        resolved_backend = surrogate.backend
        predictions = surrogate.predict(combos)
        scores = _acquisition(space, combos, predictions, observed)
        remaining = budget_points - len(observed)
        chosen = [index for index, _ in scores[: min(batch, remaining)]]
        if not chosen:
            stopped_on = "exhausted"
            break
        simulate(chosen)
        rounds += 1
        errors = _heldout_errors(heldout_pairs, observed, space.targets)
        if errors and all(
            stats["rel_rmse"] <= target_error for stats in errors.values()
        ):
            stopped_on = "target_error"
            break
    else:
        stopped_on = "budget" if len(observed) >= budget_points else "max_rounds"

    # -- final model + crossovers --------------------------------------
    surrogate = train()
    resolved_backend = surrogate.backend
    predictions = surrogate.predict(combos)
    predicted_means = {
        target: list(means) for target, (means, _) in predictions.items()
    }
    crossovers: List[Dict[str, Any]] = []
    if spec is not None:
        # Primary pass on actual signals only: a flip between two
        # simulated points is ground truth, and interpolating their
        # real signal values across the (possibly multi-step) bracket
        # beats trusting the surrogate inside it.
        signals_obs: Dict[int, Optional[float]] = {
            index: spec.signal(observed[index]) for index in observed
        }
        crossovers = find_crossovers(space, signals_obs)
        for crossover in crossovers:
            crossover["observed"] = True
        flipped = {
            tuple(sorted(crossover["group"].items())) for crossover in crossovers
        }
        # Secondary pass: groups with no observed flip fall back to the
        # surrogate's opinion (actual signals overriding predictions at
        # simulated points), flagged as unconfirmed.
        signals_all: Dict[int, Optional[float]] = {
            index: spec.signal(
                {t: predicted_means[t][index] for t in predicted_means}
            )
            for index in range(grid)
        }
        signals_all.update(signals_obs)
        for crossover in find_crossovers(space, signals_all):
            if tuple(sorted(crossover["group"].items())) not in flipped:
                crossover["observed"] = False
                crossovers.append(crossover)
    errors = _heldout_errors(heldout_pairs, observed, space.targets)

    result = ExploreResult(
        space_name=space.name,
        grid_points=grid,
        simulated_labels=[
            space.label(combos[index]) for index in sorted(observed)
        ],
        rounds=rounds,
        backend=resolved_backend,
        budget_points=budget_points,
        heldout=errors,
        crossovers=crossovers,
        results=results_by_label,
        predicted=predicted_means,
        wall_s=time.perf_counter() - started,
        stopped_on=stopped_on,
    )
    bump("explore.rounds", rounds)
    emit("done", result.report())
    return result


def _acquisition(
    space: ExploreSpace,
    combos: List[Dict[str, Any]],
    predictions: Dict[str, Tuple[List[float], List[float]]],
    observed: Mapping[int, Mapping[str, float]],
) -> List[Tuple[int, float]]:
    """Rank unsimulated combos for the next batch.

    Three terms, strongest first: **bisection** (the candidate sits
    between two simulated points whose *actual* signals disagree in
    sign -- the crossover is provably in there; midpoints of wide
    brackets score highest), **crossover proximity** (the surrogate
    predicts a small signal magnitude nearby), and **ensemble
    disagreement** (the models can't agree, so the region is
    under-sampled).  Deterministic: pure arithmetic over predictions
    and observations, ties break on grid index.
    """
    spec = space.crossover
    candidates = [index for index in range(len(combos)) if index not in observed]
    # Per-target uncertainty, normalized by that target's prediction spread.
    scales: Dict[str, float] = {}
    for target, (means, _) in predictions.items():
        spread = (max(means) - min(means)) if means else 0.0
        scales[target] = spread if spread > 0 else 1.0
    bisection: Dict[int, float] = {}
    if spec is not None:
        for indices in _group_along(space, combos).values():
            done = [
                (position, index)
                for position, index in enumerate(indices)
                if index in observed
            ]
            for (pos_a, idx_a), (pos_b, idx_b) in zip(done, done[1:]):
                if pos_b - pos_a < 2:
                    continue  # bracket already tight: adjacent grid points
                s_a = spec.signal(observed[idx_a])
                s_b = spec.signal(observed[idx_b])
                if s_a is None or s_b is None or s_a * s_b >= 0.0:
                    continue
                gap = pos_b - pos_a
                mid = pos_a + gap // 2
                for position in range(pos_a + 1, pos_b):
                    index = indices[position]
                    if index in observed:
                        continue
                    # The constant 1.0 keeps any refinable bracket above
                    # every exploration term; the midpoint halves the
                    # bracket fastest and wider brackets outrank narrow.
                    closeness = 1.0 - abs(position - mid) / gap
                    score = 1.0 + gap / len(indices) + 0.5 * closeness
                    bisection[index] = max(bisection.get(index, 0.0), score)
    proximity: Dict[int, float] = {}
    if spec is not None:
        signal_pred = {
            index: spec.signal({t: predictions[t][0][index] for t in predictions})
            for index in range(len(combos))
        }
        magnitudes = sorted(
            abs(s) for s in signal_pred.values() if s is not None
        )
        scale = magnitudes[len(magnitudes) // 2] if magnitudes else 1.0
        scale = scale if scale > 0 else 1.0
        for index in candidates:
            signal = signal_pred.get(index)
            proximity[index] = (
                0.0 if signal is None else 1.0 / (1.0 + abs(signal) / scale)
            )
    scored: List[Tuple[int, float]] = []
    for index in candidates:
        disagreement = sum(
            predictions[target][1][index] / scales[target] for target in predictions
        ) / max(1, len(predictions))
        score = UNCERTAINTY_WEIGHT * disagreement
        if spec is not None:
            score += CROSSOVER_WEIGHT * proximity[index]
            score += BISECTION_WEIGHT * bisection.get(index, 0.0)
        scored.append((index, score))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored


def _heldout_errors(
    heldout_pairs: Mapping[str, List[Tuple[float, float]]],
    observed: Mapping[int, Mapping[str, float]],
    targets: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Per-target RMSE of the pre-simulation predictions.

    ``rel_rmse`` normalizes by the observed value range so the bound
    is unit-free (a 5% error on MB/s and on Jain mean the same thing).
    """
    out: Dict[str, Dict[str, float]] = {}
    for target in targets:
        pairs = [
            (pred, actual)
            for pred, actual in heldout_pairs.get(target, [])
            if isinstance(actual, (int, float))
        ]
        if not pairs:
            continue
        rmse = math.sqrt(
            sum((pred - actual) ** 2 for pred, actual in pairs) / len(pairs)
        )
        values = [flat[target] for flat in observed.values() if target in flat]
        span = (max(values) - min(values)) if values else 0.0
        out[target] = {
            "rmse": round(rmse, 6),
            "rel_rmse": round(rmse / span, 6) if span > 0 else (0.0 if rmse == 0 else 1.0),
            "count": len(pairs),
            "range": round(span, 6),
        }
    return out
