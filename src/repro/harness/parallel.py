"""Deterministic parallel sweep runner.

Every paper figure is a *sweep*: a list of independent simulation
points (one testbed stood up per combination of scheme, condition,
IO shape, ...), each fully determined by its inputs and its RNG seed.
That independence is what this module exploits: points fan out across
a :class:`concurrent.futures.ProcessPoolExecutor` and the results are
merged back **in declared point order**, so a parallel run produces
output byte-identical to the serial run.

Determinism contract
--------------------

* A point function must be a module-level callable (picklable by
  reference) whose result depends only on its keyword arguments.
  Global state it touches (RNG streams, per-process caches) must be
  derived from those arguments, never from execution order.
* Per-point seeds are derived with :func:`repro.sim.rng.derive_seed`
  from the sweep's root seed and the point's label, so they are stable
  across processes, Python versions and point orderings.
* Merging happens in point-declaration order using order-free
  reducers: list results concatenate, and metric objects fold with
  :meth:`LatencyHistogram.merge() <repro.metrics.histogram.LatencyHistogram.merge>`,
  :meth:`IntervalSeries.merge() <repro.metrics.throughput.IntervalSeries.merge>` and
  :meth:`PercentileTimeline.merge() <repro.metrics.timeline.PercentileTimeline.merge>`.

``jobs <= 1`` runs the points serially in-process (no executor, no
pickling), which is also the fallback the experiment drivers default
to, so single-threaded behaviour is unchanged.
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.harness.cache import CacheSpec, ResultCache, resolve_cache
from repro.metrics import IntervalSeries, LatencyHistogram, PercentileTimeline
from repro.obs import bump
from repro.sim.rng import derive_seed
from repro.sim.shard import EFFECTIVE_JOBS_ENV


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation point of a sweep."""

    index: int
    label: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.fn(**self.kwargs)


def point_seed(root_seed: int, label: str) -> int:
    """The child seed for one sweep point.

    Stable across processes and independent of sibling points, so a
    point computes the same result whether it runs first, last, or in
    a worker process of its own.
    """
    return derive_seed(root_seed, f"sweep-point:{label}")


def _execute_point(point: SweepPoint):
    """Module-level trampoline so points pickle by reference."""
    return point.index, point.execute()


def _execute_point_timed(point: SweepPoint) -> Tuple[int, float, Any]:
    """Like :func:`_execute_point`, but also reports wall time so the
    cache can record how many seconds a future hit will save."""
    start = time.perf_counter()
    value = point.execute()
    return point.index, time.perf_counter() - start, value


def _consume(futures: List) -> List[Tuple[int, float, Any]]:
    """Drain futures in *completion* order, failing fast.

    The merge is index-keyed, so completion order is fine -- and a
    point that crashes (or a worker that dies) surfaces as soon as its
    future settles instead of queueing behind every earlier-submitted
    future.  Unstarted siblings are cancelled on the way out so the
    caller is not left feeding a doomed sweep.
    """
    results: List[Tuple[int, float, Any]] = []
    try:
        for future in as_completed(futures):
            results.append(future.result())
    except BaseException:
        for future in futures:
            future.cancel()
        raise
    return results


def _execute_pending(
    pending: Sequence[SweepPoint],
    jobs: int,
    executor: Optional[ProcessPoolExecutor],
) -> List[Tuple[int, float, Any]]:
    if jobs <= 1 and executor is None:
        return [_execute_point_timed(point) for point in pending]
    if executor is not None:
        return _consume(
            [executor.submit(_execute_point_timed, point) for point in pending]
        )
    with ProcessPoolExecutor(
        max_workers=min(jobs, max(1, len(pending))),
        initializer=_warm_worker,
        initargs=(jobs,),
    ) as pool:
        # Consume inside the with-block so worker crashes surface here
        # rather than as a BrokenProcessPool on exit.
        return _consume([pool.submit(_execute_point_timed, point) for point in pending])


def _clamp_jobs(jobs: int) -> int:
    """Clamp a requested worker count to the machine's CPU count.

    Oversubscribing a sweep with more worker processes than cores only
    adds scheduler churn and memory pressure; results are unchanged
    either way (the merge is order-independent), so the clamp is safe.
    A clamp is surfaced through the active observability session (when
    one is capturing) rather than stdout, so drivers stay quiet.
    """
    cpu_count = os.cpu_count() or 1
    if jobs <= cpu_count:
        return jobs
    bump("sweep.jobs_clamped")
    return cpu_count


def _warm_worker(
    effective_jobs: Optional[int] = None,
) -> None:  # pragma: no cover - runs in worker processes
    """Pool initializer: pre-import the heavy ``repro`` surface.

    With the ``spawn`` start method a fresh worker pays the full
    interpreter boot plus ``repro.*`` import cost on its first task;
    importing here moves that cost to pool construction, where it is
    paid once per suite instead of once per sweep.  Under ``fork`` the
    modules are already inherited and these imports are no-ops.

    ``effective_jobs`` advertises the pool's job budget to the worker
    (via ``REPRO_EFFECTIVE_JOBS``), so a sharded point running inside
    it clamps its own shard-process fan-out instead of multiplying the
    pool's parallelism (see :func:`repro.sim.shard.plan_shards`).
    """
    if effective_jobs is not None:
        os.environ[EFFECTIVE_JOBS_ENV] = str(effective_jobs)
    import repro.harness.experiments  # noqa: F401
    import repro.harness.kvcluster  # noqa: F401
    import repro.harness.testbed  # noqa: F401


class WorkerPool:
    """A persistent process pool shared across sweeps.

    ``run_sweep`` creates (and tears down) a fresh
    :class:`~concurrent.futures.ProcessPoolExecutor` per sweep when
    given only ``jobs``; a :class:`WorkerPool` is the suite-scale
    alternative -- workers are created once, warmed with the
    experiment imports, and reused by every sweep handed the pool::

        with WorkerPool(jobs=8) as pool:
            rows_a = sweep_a.run(pool=pool)
            rows_b = sweep_b.run(pool=pool)

    The executor is created lazily on first use, so building a pool is
    free until something actually dispatches to it.  ``jobs`` defaults
    to (and is clamped at) ``os.cpu_count()``.
    """

    def __init__(self, jobs: Optional[int] = None):
        requested = jobs if jobs is not None and jobs > 0 else (os.cpu_count() or 1)
        self.jobs = _clamp_jobs(requested)
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_warm_worker,
                initargs=(self.jobs,),
            )
        return self._executor

    def submit(self, fn: Callable[..., Any], *args: Any):
        return self.executor.submit(fn, *args)

    def close(self, cancel_pending: bool = False) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=cancel_pending)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.close(cancel_pending=exc_type is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._executor is not None else "lazy"
        return f"WorkerPool(jobs={self.jobs}, {state})"


def run_sweep(
    points: Sequence[SweepPoint],
    jobs: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
    cache: CacheSpec = None,
    name: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
) -> List[Any]:
    """Execute ``points`` and return their results in point order.

    ``jobs`` is the worker-process count; values <= 1 run serially
    in-process, and values above ``os.cpu_count()`` are clamped to it
    (see :func:`_clamp_jobs`).  The returned list always lines up with
    ``points`` by index, regardless of completion order.

    ``pool`` hands the sweep a persistent :class:`WorkerPool` whose
    executor is reused instead of standing up (and tearing down) a
    fresh per-sweep executor -- the suite orchestrator's path.  When
    neither ``pool`` nor ``executor`` is given and ``jobs > 1``, the
    per-sweep executor remains the fallback.

    ``cache`` selects the result cache: ``None`` uses the ambient
    configuration (:func:`repro.harness.cache.active_cache`, off unless
    configured or ``REPRO_CACHE`` is set), ``False`` disables caching,
    ``True``/a path/a :class:`~repro.harness.cache.ResultCache` enable
    it.  Cached points are looked up before dispatch and computed
    points are written back afterwards; the merge happens in declared
    point order either way, so warm, cold and mixed runs produce
    byte-identical results.
    """
    points = list(points)
    indices = [p.index for p in points]
    if len(set(indices)) != len(indices):
        raise ValueError("sweep points must have unique indices")
    if pool is not None and executor is None:
        if pool.jobs <= 1:
            # Degenerate one-worker pool: a worker round-trip buys no
            # parallelism, only pickling and IPC.  Run in-process (the
            # pool's lazy executor is never even spawned).
            jobs = 1
        else:
            executor = pool.executor
            jobs = pool.jobs
    jobs_requested = jobs
    jobs = _clamp_jobs(jobs)
    store: Optional[ResultCache] = resolve_cache(cache)
    results: Dict[int, Any] = {}
    if store is None:
        pending = points
        before = None
    else:
        before = store.stats.snapshot()
        pending = []
        for point in points:
            hit, value = store.lookup(point)
            if hit:
                results[point.index] = value
            else:
                pending.append(point)
    if pending:
        by_index = {point.index: point for point in pending}
        for index, elapsed, value in _execute_pending(pending, jobs, executor):
            if store is not None:
                value = store.store(by_index[index], value, elapsed)
            results[index] = value
    if store is not None and before is not None:
        delta = store.stats.delta_since(before)
        delta["jobs_requested"] = jobs_requested
        delta["jobs_effective"] = jobs
        store.record_run(name, delta)
    return [results[point.index] for point in points]


class Sweep:
    """Declarative builder: add points, run them, merge the results.

    >>> sweep = Sweep("fig0")
    >>> for size in (4, 128):
    ...     sweep.point(_one_size, label=f"size-{size}", size_kb=size)
    >>> rows = sweep.run(jobs=4)      # == sweep.run(jobs=1), point order
    """

    def __init__(self, name: str, root_seed: int = 42):
        self.name = name
        self.root_seed = root_seed
        self._points: List[SweepPoint] = []
        self._labels: set = set()

    def point(self, fn: Callable[..., Any], label: Optional[str] = None, **kwargs: Any) -> None:
        """Declare the next point; ``label`` defaults to the kwargs.

        Labels must be unique within the sweep: :func:`point_seed`
        derives each point's RNG seed from its label, so two points
        sharing a label would silently share a random stream (and the
        cost model could not tell their timings apart).
        """
        index = len(self._points)
        if label is None:
            label = ",".join(f"{k}={kwargs[k]}" for k in sorted(kwargs)) or str(index)
        if label in self._labels:
            raise ValueError(
                f"duplicate sweep point label {label!r} in sweep {self.name!r}: "
                "labels derive per-point seeds, so they must be unique"
            )
        self._labels.add(label)
        self._points.append(SweepPoint(index=index, label=label, fn=fn, kwargs=kwargs))

    def seed_for(self, label: str) -> int:
        return point_seed(self.root_seed, label)

    @property
    def points(self) -> List[SweepPoint]:
        return list(self._points)

    def run(
        self,
        jobs: int = 1,
        cache: CacheSpec = None,
        pool: Optional[WorkerPool] = None,
    ) -> List[Any]:
        return run_sweep(
            self._points, jobs=jobs, cache=cache, name=self.name, pool=pool
        )

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sweep({self.name!r}, points={len(self._points)})"


def sweep_axes(axes: Mapping[str, Iterable[Any]]) -> List[Dict[str, Any]]:
    """Expand named axes into the cartesian product of point kwargs.

    The product iterates in the axes' declared order with the last
    axis varying fastest -- exactly the nested-loop order the serial
    drivers used, so porting a driver to a sweep preserves its row
    order.
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


# ----------------------------------------------------------------------
# Reducers
# ----------------------------------------------------------------------
def merge_rows(results: Iterable[Any]) -> List[Any]:
    """Concatenate per-point row lists in point order.

    A point may return one row (a dict) or a list of rows; the merge
    flattens one level so sweeps over multi-row points stay ordered.
    """
    rows: List[Any] = []
    for result in results:
        if isinstance(result, list):
            rows.extend(result)
        else:
            rows.append(result)
    return rows


def merge_histograms(shards: Iterable[LatencyHistogram]) -> LatencyHistogram:
    """Fold per-shard latency histograms into one (first shard's config)."""
    merged: Optional[LatencyHistogram] = None
    for shard in shards:
        if merged is None:
            merged = LatencyHistogram(shard.min_value, shard.max_value, shard.growth)
        merged.merge(shard)
    if merged is None:
        raise ValueError("no histograms to merge")
    return merged


def merge_interval_series(shards: Iterable[IntervalSeries]) -> IntervalSeries:
    """Fold per-shard interval series into one (sum/mean modes)."""
    merged: Optional[IntervalSeries] = None
    for shard in shards:
        if merged is None:
            merged = IntervalSeries(shard.window_us, shard.mode)
        merged.merge(shard)
    if merged is None:
        raise ValueError("no series to merge")
    return merged


def merge_timelines(shards: Iterable[PercentileTimeline]) -> PercentileTimeline:
    """Fold per-shard percentile timelines into one."""
    merged: Optional[PercentileTimeline] = None
    for shard in shards:
        if merged is None:
            merged = PercentileTimeline(
                shard.window_us, shard.min_value, shard.max_value
            )
        merged.merge(shard)
    if merged is None:
        raise ValueError("no timelines to merge")
    return merged
