"""Deterministic parallel sweep runner.

Every paper figure is a *sweep*: a list of independent simulation
points (one testbed stood up per combination of scheme, condition,
IO shape, ...), each fully determined by its inputs and its RNG seed.
That independence is what this module exploits: points fan out across
a :class:`concurrent.futures.ProcessPoolExecutor` and the results are
merged back **in declared point order**, so a parallel run produces
output byte-identical to the serial run.

Determinism contract
--------------------

* A point function must be a module-level callable (picklable by
  reference) whose result depends only on its keyword arguments.
  Global state it touches (RNG streams, per-process caches) must be
  derived from those arguments, never from execution order.
* Per-point seeds are derived with :func:`repro.sim.rng.derive_seed`
  from the sweep's root seed and the point's label, so they are stable
  across processes, Python versions and point orderings.
* Merging happens in point-declaration order using order-free
  reducers: list results concatenate, and metric objects fold with
  :meth:`LatencyHistogram.merge() <repro.metrics.histogram.LatencyHistogram.merge>`,
  :meth:`IntervalSeries.merge() <repro.metrics.throughput.IntervalSeries.merge>` and
  :meth:`PercentileTimeline.merge() <repro.metrics.timeline.PercentileTimeline.merge>`.

``jobs <= 1`` runs the points serially in-process (no executor, no
pickling), which is also the fallback the experiment drivers default
to, so single-threaded behaviour is unchanged.
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.harness.cache import CacheSpec, ResultCache, resolve_cache
from repro.metrics import IntervalSeries, LatencyHistogram, PercentileTimeline
from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation point of a sweep."""

    index: int
    label: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.fn(**self.kwargs)


def point_seed(root_seed: int, label: str) -> int:
    """The child seed for one sweep point.

    Stable across processes and independent of sibling points, so a
    point computes the same result whether it runs first, last, or in
    a worker process of its own.
    """
    return derive_seed(root_seed, f"sweep-point:{label}")


def _execute_point(point: SweepPoint):
    """Module-level trampoline so points pickle by reference."""
    return point.index, point.execute()


def _execute_point_timed(point: SweepPoint) -> Tuple[int, float, Any]:
    """Like :func:`_execute_point`, but also reports wall time so the
    cache can record how many seconds a future hit will save."""
    start = time.perf_counter()
    value = point.execute()
    return point.index, time.perf_counter() - start, value


def _execute_pending(
    pending: Sequence[SweepPoint],
    jobs: int,
    executor: Optional[ProcessPoolExecutor],
) -> List[Tuple[int, float, Any]]:
    if jobs <= 1 and executor is None:
        return [_execute_point_timed(point) for point in pending]
    if executor is not None:
        futures = [executor.submit(_execute_point_timed, point) for point in pending]
        return [future.result() for future in futures]
    with ProcessPoolExecutor(max_workers=min(jobs, max(1, len(pending)))) as pool:
        futures = [pool.submit(_execute_point_timed, point) for point in pending]
        # Consume inside the with-block so worker crashes surface here
        # rather than as a BrokenProcessPool on exit.
        return [future.result() for future in futures]


def _clamp_jobs(jobs: int) -> int:
    """Clamp a requested worker count to the machine's CPU count.

    Oversubscribing a sweep with more worker processes than cores only
    adds scheduler churn and memory pressure; results are unchanged
    either way (the merge is order-independent), so the clamp is safe.
    A clamp is surfaced through the active observability session (when
    one is capturing) rather than stdout, so drivers stay quiet.
    """
    cpu_count = os.cpu_count() or 1
    if jobs <= cpu_count:
        return jobs
    from repro.obs.session import current_session

    session = current_session()
    if session is not None:
        session.registry.counter("sweep.jobs_clamped").inc()
    return cpu_count


def run_sweep(
    points: Sequence[SweepPoint],
    jobs: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
    cache: CacheSpec = None,
    name: Optional[str] = None,
) -> List[Any]:
    """Execute ``points`` and return their results in point order.

    ``jobs`` is the worker-process count; values <= 1 run serially
    in-process, and values above ``os.cpu_count()`` are clamped to it
    (see :func:`_clamp_jobs`).  The returned list always lines up with
    ``points`` by index, regardless of completion order.

    ``cache`` selects the result cache: ``None`` uses the ambient
    configuration (:func:`repro.harness.cache.active_cache`, off unless
    configured or ``REPRO_CACHE`` is set), ``False`` disables caching,
    ``True``/a path/a :class:`~repro.harness.cache.ResultCache` enable
    it.  Cached points are looked up before dispatch and computed
    points are written back afterwards; the merge happens in declared
    point order either way, so warm, cold and mixed runs produce
    byte-identical results.
    """
    points = list(points)
    indices = [p.index for p in points]
    if len(set(indices)) != len(indices):
        raise ValueError("sweep points must have unique indices")
    jobs_requested = jobs
    jobs = _clamp_jobs(jobs)
    store: Optional[ResultCache] = resolve_cache(cache)
    results: Dict[int, Any] = {}
    if store is None:
        pending = points
        before = None
    else:
        before = store.stats.snapshot()
        pending = []
        for point in points:
            hit, value = store.lookup(point)
            if hit:
                results[point.index] = value
            else:
                pending.append(point)
    if pending:
        by_index = {point.index: point for point in pending}
        for index, elapsed, value in _execute_pending(pending, jobs, executor):
            if store is not None:
                value = store.store(by_index[index], value, elapsed)
            results[index] = value
    if store is not None and before is not None:
        delta = store.stats.delta_since(before)
        delta["jobs_requested"] = jobs_requested
        delta["jobs_effective"] = jobs
        store.record_run(name, delta)
    return [results[point.index] for point in points]


class Sweep:
    """Declarative builder: add points, run them, merge the results.

    >>> sweep = Sweep("fig0")
    >>> for size in (4, 128):
    ...     sweep.point(_one_size, label=f"size-{size}", size_kb=size)
    >>> rows = sweep.run(jobs=4)      # == sweep.run(jobs=1), point order
    """

    def __init__(self, name: str, root_seed: int = 42):
        self.name = name
        self.root_seed = root_seed
        self._points: List[SweepPoint] = []

    def point(self, fn: Callable[..., Any], label: Optional[str] = None, **kwargs: Any) -> None:
        """Declare the next point; ``label`` defaults to the kwargs."""
        index = len(self._points)
        if label is None:
            label = ",".join(f"{k}={kwargs[k]}" for k in sorted(kwargs)) or str(index)
        self._points.append(SweepPoint(index=index, label=label, fn=fn, kwargs=kwargs))

    def seed_for(self, label: str) -> int:
        return point_seed(self.root_seed, label)

    @property
    def points(self) -> List[SweepPoint]:
        return list(self._points)

    def run(self, jobs: int = 1, cache: CacheSpec = None) -> List[Any]:
        return run_sweep(self._points, jobs=jobs, cache=cache, name=self.name)

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sweep({self.name!r}, points={len(self._points)})"


def sweep_axes(axes: Mapping[str, Iterable[Any]]) -> List[Dict[str, Any]]:
    """Expand named axes into the cartesian product of point kwargs.

    The product iterates in the axes' declared order with the last
    axis varying fastest -- exactly the nested-loop order the serial
    drivers used, so porting a driver to a sweep preserves its row
    order.
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


# ----------------------------------------------------------------------
# Reducers
# ----------------------------------------------------------------------
def merge_rows(results: Iterable[Any]) -> List[Any]:
    """Concatenate per-point row lists in point order.

    A point may return one row (a dict) or a list of rows; the merge
    flattens one level so sweeps over multi-row points stay ordered.
    """
    rows: List[Any] = []
    for result in results:
        if isinstance(result, list):
            rows.extend(result)
        else:
            rows.append(result)
    return rows


def merge_histograms(shards: Iterable[LatencyHistogram]) -> LatencyHistogram:
    """Fold per-shard latency histograms into one (first shard's config)."""
    merged: Optional[LatencyHistogram] = None
    for shard in shards:
        if merged is None:
            merged = LatencyHistogram(shard.min_value, shard.max_value, shard._growth)
        merged.merge(shard)
    if merged is None:
        raise ValueError("no histograms to merge")
    return merged


def merge_interval_series(shards: Iterable[IntervalSeries]) -> IntervalSeries:
    """Fold per-shard interval series into one (sum/mean modes)."""
    merged: Optional[IntervalSeries] = None
    for shard in shards:
        if merged is None:
            merged = IntervalSeries(shard.window_us, shard.mode)
        merged.merge(shard)
    if merged is None:
        raise ValueError("no series to merge")
    return merged


def merge_timelines(shards: Iterable[PercentileTimeline]) -> PercentileTimeline:
    """Fold per-shard percentile timelines into one."""
    merged: Optional[PercentileTimeline] = None
    for shard in shards:
        if merged is None:
            merged = PercentileTimeline(
                shard.window_us, shard._min_value, shard._max_value
            )
        merged.merge(shard)
    if merged is None:
        raise ValueError("no timelines to merge")
    return merged
