"""Testbed builder: one call from scheme name to a runnable rack.

The paper's testbed (Section 5.1) is a rack of x86 clients and
Stingray JBOFs behind a 100 Gbps switch.  :class:`Testbed` assembles
the simulated equivalent for a chosen multi-tenancy scheme:

=========  =========================  ================================
scheme     target-side scheduler      client-side policy
=========  =========================  ================================
gimbal     GimbalScheduler            CreditClientPolicy (Alg 3)
reflex     ReflexScheduler            queue depth only
flashfq    FlashFqScheduler           queue depth only
parda      FifoScheduler (vanilla)    PardaClientPolicy
vanilla    FifoScheduler              queue depth only
=========  =========================  ================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines import FifoScheduler, FlashFqScheduler, ReflexScheduler
from repro.core import GimbalParams, GimbalScheduler
from repro.fabric import (
    CreditClientPolicy,
    Network,
    NvmeOfInitiator,
    NvmeOfTarget,
    PardaClientPolicy,
    SMARTNIC_CPU,
    UnlimitedClientPolicy,
)
from repro.fabric.smartnic import CpuCostModel
from repro.nvme import Namespace
from repro.obs import current_session
from repro.sim import RngRegistry, make_simulator
from repro.core.write_cost import worst_case_write_cost
from repro.ssd import (
    NullDevice,
    SsdDevice,
    SsdGeometry,
    age_device,
    precondition_clean,
    precondition_fragmented,
    profile_by_name,
)
from repro.workloads import AddressRegion, FioSpec, FioWorker

#: The multi-tenancy schemes the evaluation compares.
SCHEMES = ("gimbal", "reflex", "parda", "flashfq", "vanilla")


@dataclass
class TestbedConfig:
    """Everything needed to stand up one storage node plus clients."""

    # Not a pytest class despite the name.
    __test__ = False

    scheme: str = "gimbal"
    condition: str = "clean"
    num_ssds: int = 1
    num_cores: Optional[int] = None
    device_profile: str = "dct983"
    geometry: SsdGeometry = field(default_factory=SsdGeometry)
    cpu_model: CpuCostModel = SMARTNIC_CPU
    gimbal_params: Optional[GimbalParams] = None
    added_io_cost_us: float = 0.0
    #: Device age for ``condition="aged"``: fraction of useful life
    #: consumed, in [0, 1).
    device_age: float = 0.5
    #: Field overrides applied on top of the named device profile
    #: (used by the aging study to switch on fidelity knobs such as
    #: ``map_cache_pages`` or ``endurance_cycles`` per sweep point).
    profile_overrides: Optional[dict] = None
    seed: int = 42
    #: Override the target-side scheduler construction (used by the
    #: ablation studies); the scheme still selects the client policy.
    scheduler_factory: Optional[Callable[[], object]] = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; pick one of {SCHEMES}")
        if self.condition not in ("clean", "fragmented", "aged", "none"):
            raise ValueError("condition must be 'clean', 'fragmented', 'aged' or 'none'")
        if not 0.0 <= self.device_age < 1.0:
            raise ValueError("device_age must be in [0, 1)")
        if self.num_ssds <= 0:
            raise ValueError("need at least one SSD")


class Testbed:
    """One storage node, its network, and the client workers."""

    __test__ = False  # not a pytest class despite the name

    def __init__(self, config: TestbedConfig):
        self.config = config
        self.sim = make_simulator()
        # Experiment drivers build testbeds internally, so observability
        # arrives ambiently: the Simulator constructor already hooked
        # itself to the active ``repro.obs.capture()`` session (if any);
        # the testbed's part is registering component metrics below.
        session = current_session()
        self.rngs = RngRegistry(config.seed)
        self.network = Network(self.sim)
        self.devices: Dict[str, object] = {}
        profile = profile_by_name(config.device_profile)
        if config.profile_overrides:
            profile = profile.with_overrides(**config.profile_overrides)
        self._resolved_profile = profile
        for index in range(config.num_ssds):
            name = f"ssd{index}"
            if config.device_profile == "null":
                device = NullDevice(self.sim, name=name)
            else:
                device = SsdDevice(
                    self.sim, profile=profile, geometry=config.geometry, name=name
                )
                if config.condition == "clean":
                    precondition_clean(device)
                elif config.condition == "fragmented":
                    precondition_fragmented(device)
                elif config.condition == "aged":
                    age_device(device, age=config.device_age, seed=config.seed)
            self.devices[name] = device
        self.target = NvmeOfTarget(
            sim=self.sim,
            network=self.network,
            name="jbof0",
            devices=self.devices,
            scheduler_factory=self._scheduler_factory(),
            num_cores=config.num_cores,
            cpu_model=config.cpu_model,
            added_io_cost_us=config.added_io_cost_us,
        )
        self.initiators: Dict[str, NvmeOfInitiator] = {}
        self.workers: List[FioWorker] = []
        self._region_cursor: Dict[str, int] = {name: 0 for name in self.devices}
        self._namespace_count = 0
        if session is not None:
            for device in self.devices.values():
                session.register(device)
            for core in self.target.cores:
                session.register(core)
            for pipeline in self.target.pipelines.values():
                session.register(pipeline)
            session.register(self.network)

    # ------------------------------------------------------------------
    # Scheme wiring
    # ------------------------------------------------------------------
    def _scheduler_factory(self) -> Callable[[], object]:
        if self.config.scheduler_factory is not None:
            return self.config.scheduler_factory
        scheme = self.config.scheme
        if scheme == "gimbal":
            params = self.config.gimbal_params
            if params is None and self.config.condition == "aged":
                # Aged devices have a worse worst case than the static
                # config's fresh-device 9: derive it from the timing
                # profile and aged geometry (Section 3.4's
                # pre-calibration, re-run for the device's age).
                worst = worst_case_write_cost(
                    self._resolved_profile,
                    self.config.geometry,
                    age=self.config.device_age,
                )
                params = GimbalParams().with_overrides(write_cost_worst=worst)
            return lambda: GimbalScheduler(params)
        if scheme == "reflex":
            return ReflexScheduler
        if scheme == "flashfq":
            return FlashFqScheduler
        # parda and vanilla both run the pass-through target.
        return FifoScheduler

    def _client_policy(self):
        scheme = self.config.scheme
        if scheme == "gimbal":
            return CreditClientPolicy()
        if scheme == "parda":
            return PardaClientPolicy()
        return UnlimitedClientPolicy()

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def initiator(self, host: str) -> NvmeOfInitiator:
        existing = self.initiators.get(host)
        if existing is None:
            existing = NvmeOfInitiator(self.sim, self.network, host)
            self.initiators[host] = existing
        return existing

    def allocate_region(self, ssd: str, npages: int) -> AddressRegion:
        """Carve the next ``npages`` slice of the SSD's LBA space."""
        device = self.devices[ssd]
        start = self._region_cursor[ssd]
        if start + npages > device.exported_pages:
            raise ValueError(
                f"{ssd} exhausted: {start + npages} > {device.exported_pages} pages"
            )
        self._region_cursor[ssd] = start + npages
        return AddressRegion(start, npages)

    def add_worker(
        self,
        spec: FioSpec,
        ssd: str = "ssd0",
        host: Optional[str] = None,
        region_pages: Optional[int] = None,
        queue_depth: Optional[int] = None,
    ) -> FioWorker:
        """Create a tenant session plus a closed-loop worker on it."""
        host_name = host or f"client-{spec.name}"
        region_size = region_pages if region_pages is not None else 2048
        region = self.allocate_region(ssd, region_size)
        # Each tenant addresses its own NVMe namespace; LBAs on the wire
        # are namespace-relative and translated/bounds-checked at the
        # target (paper Section 2.3's addressing model).
        self._namespace_count += 1
        namespace = Namespace(
            nsid=self._namespace_count,
            ssd_name=ssd,
            base_lpn=region.start,
            npages=region.npages,
        )
        session = self.initiator(host_name).connect(
            tenant_id=spec.name,
            target=self.target,
            ssd_name=ssd,
            policy=self._client_policy(),
            queue_depth=queue_depth or max(spec.queue_depth, 4),
            namespace=namespace,
        )
        worker = FioWorker(
            session=session,
            spec=spec,
            region=AddressRegion(0, region.npages),
            rng=self.rngs.stream(f"worker:{spec.name}"),
        )
        self.workers.append(worker)
        return worker

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, warmup_us: float, measure_us: float) -> Dict[str, object]:
        """Start all workers, warm up, measure, and summarise."""
        for worker in self.workers:
            worker.start()
        self.sim.run(until_us=warmup_us)
        for worker in self.workers:
            worker.begin_measurement()
        self.sim.run(until_us=warmup_us + measure_us)
        return self.results()

    def results(self) -> Dict[str, object]:
        per_worker = [worker.results() for worker in self.workers]
        total_bw = sum(w["bandwidth_mbps"] for w in per_worker)
        return {
            "scheme": self.config.scheme,
            "condition": self.config.condition,
            "workers": per_worker,
            "total_bandwidth_mbps": total_bw,
            "write_amplification": {
                name: device.write_amplification for name, device in self.devices.items()
            },
            "core_busy_us": {
                core.name: core.busy_us_total for core in self.target.cores
            },
        }
