"""Delay-based SSD congestion control (paper Section 3.2, Algorithm 1).

Gimbal treats the SSD as a networked black box and uses IO *latency*
(not derived bandwidth -- the device's opaque internal parallelism
makes bandwidth misleading) as the congestion signal.  Each IO type
has its own :class:`LatencyMonitor` because reads and writes sit at
very different latency operating points.

The dynamic threshold works like Reno applied to the threshold itself:

* while the EWMA latency sits below the threshold, the threshold decays
  toward the EWMA (``thresh -= alpha_T * (thresh - ewma)``), arming the
  detector close to the current operating point;
* when the EWMA crosses the threshold, a *congested* signal fires and
  the threshold jumps to the midpoint of itself and ``thresh_max``;
* EWMA above ``thresh_max`` means *overloaded*; below ``thresh_min``
  means *under-utilised* (the device has headroom to probe for).
"""

from __future__ import annotations

import enum

from repro.core.config import GimbalParams
from repro.metrics.ewma import Ewma


class CongestionState(enum.Enum):
    """The four states of Section 3.3, ordered by increasing load."""

    UNDERUTILIZED = 0
    CONGESTION_AVOIDANCE = 1
    CONGESTED = 2
    OVERLOADED = 3


class LatencyMonitor:
    """EWMA latency tracking plus dynamic threshold for one IO type."""

    def __init__(self, params: GimbalParams):
        self.params = params
        self.ewma = Ewma(alpha=params.alpha_d)
        # Start mid-range: low enough to detect early congestion, high
        # enough not to cry wolf on the first samples.
        self.threshold = (params.thresh_min_us + params.thresh_max_us) / 2.0
        self.state = CongestionState.UNDERUTILIZED
        self.signals = {state: 0 for state in CongestionState}
        #: State changes observed (observability; transitions are also
        #: journalled by the switch when tracing is enabled).
        self.transitions = 0

    @property
    def ewma_latency_us(self) -> float:
        return self.ewma.value

    def observe(self, latency_us: float) -> CongestionState:
        """Fold in one completion latency; return the congestion state.

        This is Algorithm 1's ``update_latency`` verbatim, with the
        threshold clamped to [thresh_min, thresh_max] so prolonged idle
        periods cannot push it below the congestion-free floor.
        """
        params = self.params
        ewma = self.ewma.update(latency_us)
        if ewma > params.thresh_max_us:
            self.threshold = params.thresh_max_us
            state = CongestionState.OVERLOADED
        elif ewma > self.threshold:
            self.threshold = (self.threshold + params.thresh_max_us) / 2.0
            state = CongestionState.CONGESTED
        elif ewma > params.thresh_min_us:
            self.threshold -= params.alpha_t * (self.threshold - ewma)
            state = CongestionState.CONGESTION_AVOIDANCE
        else:
            self.threshold -= params.alpha_t * (self.threshold - ewma)
            state = CongestionState.UNDERUTILIZED
        self.threshold = min(max(self.threshold, params.thresh_min_us), params.thresh_max_us)
        if state is not self.state:
            self.transitions += 1
        self.state = state
        self.signals[state] += 1
        return state

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose this monitor's live state as pull gauges."""
        registry.gauge(f"{prefix}.ewma_us", lambda: self.ewma.value)
        registry.gauge(f"{prefix}.threshold_us", lambda: self.threshold)
        registry.gauge(f"{prefix}.state", lambda: self.state.name)
        registry.gauge(f"{prefix}.transitions", lambda: self.transitions)
        for state in CongestionState:
            registry.gauge(
                f"{prefix}.signals.{state.name.lower()}",
                lambda state=state: self.signals[state],
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyMonitor(ewma={self.ewma.value:.0f}us, "
            f"thresh={self.threshold:.0f}us, state={self.state.name})"
        )
