"""Gimbal: the software storage switch (the paper's contribution).

The switch is assembled from four mechanisms, one module each:

* :mod:`repro.core.congestion` -- delay-based SSD congestion control
  with dynamic latency-threshold scaling (Section 3.2, Algorithm 1's
  ``update_latency``).
* :mod:`repro.core.rate_control` -- the rate pacing engine and the
  dual token bucket that splits tokens between reads and writes by the
  current write cost (Section 3.3, Algorithm 4).
* :mod:`repro.core.write_cost` -- the ADMI (additive-decrease,
  multiplicative-increase) write-cost estimator (Section 3.4).
* :mod:`repro.core.scheduler` -- the two-level hierarchical DRR
  scheduler over virtual slots with per-tenant priority queues
  (Section 3.5, Algorithm 2), built on
  :mod:`repro.core.virtual_slot`.

:class:`~repro.core.switch.GimbalScheduler` wires them together behind
the generic :class:`~repro.baselines.base.StorageScheduler` interface
and adds the credit computation for the end-to-end flow control
(Section 3.6) plus the per-SSD virtual view (Section 3.7).
"""

from repro.core.config import GimbalParams
from repro.core.congestion import CongestionState, LatencyMonitor
from repro.core.rate_control import CompletionRateMeter, DualTokenBucket, RateController
from repro.core.scheduler import DrrSlotScheduler, GimbalTenant
from repro.core.switch import GimbalScheduler
from repro.core.virtual_slot import SlotManager, VirtualSlot
from repro.core.write_cost import WriteCostEstimator

__all__ = [
    "GimbalParams",
    "CongestionState",
    "LatencyMonitor",
    "RateController",
    "DualTokenBucket",
    "CompletionRateMeter",
    "WriteCostEstimator",
    "VirtualSlot",
    "SlotManager",
    "GimbalTenant",
    "DrrSlotScheduler",
    "GimbalScheduler",
]
