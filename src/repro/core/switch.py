"""The assembled Gimbal storage switch for one SSD.

:class:`GimbalScheduler` implements the generic
:class:`~repro.baselines.base.StorageScheduler` interface by wiring
together the four mechanisms:

====================  ============================================
latency monitors      one per IO type (Section 3.2)
rate controller       dual-token-bucket pacing (Section 3.3)
write-cost estimator  ADMI calibration (Section 3.4)
DRR + virtual slots   inter-tenant fairness (Section 3.5)
====================  ============================================

plus the credit grants the end-to-end flow control piggybacks on
completions (Section 3.6) and the per-SSD virtual view (Section 3.7).
The whole switch is self-clocked: work is pumped on request arrival
and on IO completion; a timer fires only when the pump blocked on
token-bucket refill.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import StorageScheduler
from repro.core.config import GimbalParams
from repro.core.congestion import CongestionState, LatencyMonitor
from repro.core.rate_control import RateController
from repro.core.scheduler import DrrSlotScheduler, GimbalTenant
from repro.core.virtual_slot import VirtualSlot
from repro.core.write_cost import WriteCostEstimator
from repro.fabric.request import FabricRequest
from repro.obs.trace import TraceType
from repro.sim.units import MBPS
from repro.ssd.commands import IoOp


class GimbalScheduler(StorageScheduler):
    """Gimbal's per-SSD pipeline policy."""

    name = "gimbal"
    # Table 1: the switch adds ~40-60% over vanilla SPDK's per-IO
    # scheduler cycles (vanilla submit/complete is 32/16 "cycles" at
    # the paper's 125 cycles/us).
    submit_overhead_us = 0.16
    complete_overhead_us = 0.06

    def __init__(self, params: Optional[GimbalParams] = None):
        super().__init__()
        self.params = params or GimbalParams()
        self.monitors: Dict[IoOp, LatencyMonitor] = {
            IoOp.READ: LatencyMonitor(self.params),
            IoOp.WRITE: LatencyMonitor(self.params),
        }
        self.rate = RateController(self.params)
        self.write_cost = WriteCostEstimator(self.params)
        self.drr = DrrSlotScheduler(self.params)
        self._inflight_slots: Dict[int, tuple] = {}
        self._refill_wakeup = None
        # Tracing state: last observed congestion state and (rounded)
        # threshold per monitor, so the journal records transitions and
        # moves rather than one event per completion.
        self._traced_state: Dict[IoOp, CongestionState] = {
            op: monitor.state for op, monitor in self.monitors.items()
        }
        self._traced_thresh: Dict[IoOp, int] = {
            op: int(monitor.threshold) for op, monitor in self.monitors.items()
        }

    # ------------------------------------------------------------------
    # StorageScheduler interface
    # ------------------------------------------------------------------
    def register_tenant(self, tenant_id: str, weight: float = 1.0) -> None:
        super().register_tenant(tenant_id, weight)
        self.drr.add_tenant(tenant_id, weight)

    def unregister_tenant(self, tenant_id: str) -> None:
        """Detach an idle tenant and redistribute its virtual slots."""
        tenant = self.drr.tenants.get(tenant_id)
        if tenant is None:
            return
        # A partially filled open slot with every IO completed is fine
        # to drop; only genuinely outstanding IO blocks the detach.
        if tenant.pending or tenant.slots.outstanding_ios:
            raise RuntimeError(f"tenant {tenant_id!r} still has IO in flight")
        super().unregister_tenant(tenant_id)
        self.drr.remove_tenant(tenant_id)

    def enqueue(self, request: FabricRequest) -> None:
        tenant = self.drr.tenants.get(request.tenant_id)
        if tenant is None:
            tenant = self.drr.add_tenant(request.tenant_id)
        self.drr.enqueue(tenant, request)
        self._pump()

    def notify_completion(self, request: FabricRequest) -> None:
        now = self.sim.now
        if not request.op.is_trim:
            # Trims are metadata-only: they carry no congestion signal.
            latency = request.device_latency_us
            state = self.monitors[request.op].observe(latency)
            tracer = self.sim.tracer
            if tracer is not None:
                self._trace_monitor(tracer, now, request.op, state)
            self.rate.on_completion(
                now, request.op, request.size_bytes, state, self.congestion_state
            )
        if request.op.is_write:
            self.write_cost.observe_write_latency(
                now, self.monitors[IoOp.WRITE].ewma_latency_us
            )
        tenant, slot = self._inflight_slots.pop(request.request_id)
        if tenant.slots.on_completion(slot):
            self.drr.on_slot_freed(tenant)
        self._pump()

    def credit_for(self, tenant_id: str) -> int:
        """Total credit = allotted slots x IO count of the latest
        completed slot (Section 3.6)."""
        tenant = self.drr.tenants.get(tenant_id)
        if tenant is None:
            return 0
        per_slot = tenant.slots.last_drained_io_count or self.params.initial_slot_io_count
        return max(1, self.drr.slot_limit * per_slot)

    def virtual_view(self) -> dict:
        """Section 3.7's managed view: current headroom and cost."""
        write_cost = self.write_cost.cost
        rate_mbps = self.rate.target_rate / MBPS
        return {
            "target_rate_mbps": rate_mbps,
            "read_headroom_mbps": rate_mbps * write_cost / (1.0 + write_cost),
            "write_headroom_mbps": rate_mbps / (1.0 + write_cost),
            "write_cost": write_cost,
            "read_state": self.monitors[IoOp.READ].state.name,
            "write_state": self.monitors[IoOp.WRITE].state.name,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _weighted_size(self, request: FabricRequest) -> float:
        """Cost-weighted IO size: writes pay the current write cost;
        trims are metadata-only and charged one page regardless of
        range length."""
        if request.op.is_write:
            return self.write_cost.cost * request.size_bytes
        if request.op.is_trim:
            return 4096.0
        return float(request.size_bytes)

    def _submit(self, request: FabricRequest, tenant: GimbalTenant, slot: VirtualSlot) -> None:
        self._inflight_slots[request.request_id] = (tenant, slot)
        self.submit_to_device(request)

    def _pump(self) -> None:
        self.rate.refresh_bucket(self.sim.now, self.write_cost.cost)
        outcome, op, token_deficit = self.drr.pump(
            self._weighted_size, self.rate.bucket, self._submit
        )
        if outcome == "tokens":
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    TraceType.BUCKET_DENY,
                    self.sim.now,
                    self._component_name,
                    io=op.name,
                    deficit_bytes=token_deficit,
                )
            self._schedule_refill_wakeup(op, token_deficit)

    def _schedule_refill_wakeup(self, op: IoOp, token_deficit: float) -> None:
        """Wake the pump when the blocking bucket will have refilled."""
        write_cost = self.write_cost.cost
        if op.is_read:
            share = self.rate.target_rate * write_cost / (1.0 + write_cost)
        else:
            share = self.rate.target_rate / (1.0 + write_cost)
        share = max(share, self.params.min_rate_bytes_per_us / (1.0 + write_cost))
        delay = min(max(token_deficit / share, 1.0), 50_000.0)
        if self._refill_wakeup is not None:
            self._refill_wakeup.cancel()
        self._refill_wakeup = self.sim.schedule(delay, self._on_refill_wakeup)

    def _on_refill_wakeup(self) -> None:
        self._refill_wakeup = None
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.BUCKET_REFILL,
                self.sim.now,
                self._component_name,
                read_tokens=self.rate.bucket.read_tokens,
                write_tokens=self.rate.bucket.write_tokens,
            )
        self._pump()

    @property
    def congestion_state(self) -> CongestionState:
        """The more loaded of the two monitors (for dashboards/tests)."""
        return max(
            (monitor.state for monitor in self.monitors.values()),
            key=lambda state: state.value,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def _component_name(self) -> str:
        pipeline = self.pipeline
        return f"switch.{pipeline.name}" if pipeline is not None else "switch"

    def _trace_monitor(self, tracer, now: float, op: IoOp, state: CongestionState) -> None:
        """Journal state transitions and threshold moves for one monitor."""
        monitor = self.monitors[op]
        previous = self._traced_state[op]
        if state is not previous:
            self._traced_state[op] = state
            tracer.emit(
                TraceType.CONGESTION,
                now,
                self._component_name,
                io=op.name,
                **{"from": previous.name},
                to=state.name,
                ewma_us=monitor.ewma_latency_us,
                threshold_us=monitor.threshold,
            )
        threshold = int(monitor.threshold)
        if threshold != self._traced_thresh[op]:
            self._traced_thresh[op] = threshold
            tracer.emit(
                TraceType.THRESHOLD,
                now,
                self._component_name,
                io=op.name,
                threshold_us=monitor.threshold,
                ewma_us=monitor.ewma_latency_us,
            )

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Expose the switch's live state as pull gauges."""
        prefix = prefix or self._component_name
        registry.gauge(f"{prefix}.target_rate_mbps", lambda: self.rate.target_rate / MBPS)
        registry.gauge(f"{prefix}.write_cost", lambda: self.write_cost.cost)
        registry.gauge(f"{prefix}.inflight", lambda: len(self._inflight_slots))
        registry.gauge(f"{prefix}.active_tenants", lambda: len(self.drr.active))
        registry.gauge(f"{prefix}.slot_limit", lambda: self.drr.slot_limit)
        registry.gauge(f"{prefix}.slot_deferrals", lambda: self.drr.deferrals)
        registry.gauge(
            f"{prefix}.pending",
            lambda: sum(tenant.pending for tenant in self.drr.tenants.values()),
        )
        for op, monitor in self.monitors.items():
            monitor.register_metrics(registry, f"{prefix}.{op.name.lower()}")
        self.rate.register_metrics(registry, f"{prefix}.rate")
