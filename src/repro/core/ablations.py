"""Ablation variants of the Gimbal switch.

DESIGN.md calls out four load-bearing design choices; each variant
here disables exactly one so the benchmark suite can show why the
paper's choice matters:

* :class:`FixedThresholdGimbal` -- replaces the dynamic latency
  threshold with the paper's first attempt, a fixed 2 ms threshold
  (Section 3.2 reports it "cannot capture the congestion for small
  IOs promptly").
* :class:`SingleBucketGimbal` -- one shared token bucket instead of
  the read/write dual bucket (Appendix C.1: the single bucket submits
  writes at the aggregate rate and causes severe latency increments).
* :class:`NoSlotGimbal` -- plain byte-quantum DRR without virtual
  slots (Section 3.5: outstanding-byte accounting misses the internal
  queue occupancy difference between 1x128 KiB and 32x4 KiB).
* :class:`StaticWriteCostGimbal` -- the write cost frozen at the
  worst case (the ReFlex failure mode on clean devices).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import GimbalParams
from repro.core.congestion import CongestionState, LatencyMonitor
from repro.core.rate_control import DualTokenBucket
from repro.core.switch import GimbalScheduler
from repro.ssd.commands import IoOp


class FixedThresholdMonitor(LatencyMonitor):
    """Latency monitor with a fixed congestion threshold."""

    def __init__(self, params: GimbalParams, fixed_threshold_us: float = 2000.0):
        super().__init__(params)
        self.threshold = fixed_threshold_us
        self._fixed = fixed_threshold_us

    def observe(self, latency_us: float) -> CongestionState:
        params = self.params
        ewma = self.ewma.update(latency_us)
        if ewma > params.thresh_max_us and params.thresh_max_us > self._fixed:
            state = CongestionState.OVERLOADED
        elif ewma > self._fixed:
            state = CongestionState.CONGESTED
        elif ewma > params.thresh_min_us:
            state = CongestionState.CONGESTION_AVOIDANCE
        else:
            state = CongestionState.UNDERUTILIZED
        self.state = state
        self.signals[state] += 1
        return state


class FixedThresholdGimbal(GimbalScheduler):
    """Gimbal minus the dynamic threshold scaling."""

    name = "gimbal-fixed-threshold"

    def __init__(
        self, params: Optional[GimbalParams] = None, fixed_threshold_us: float = 2000.0
    ):
        super().__init__(params)
        self.monitors = {
            IoOp.READ: FixedThresholdMonitor(self.params, fixed_threshold_us),
            IoOp.WRITE: FixedThresholdMonitor(self.params, fixed_threshold_us),
        }


class SingleTokenBucket(DualTokenBucket):
    """One shared pool behind the dual-bucket interface."""

    def update(self, now_us: float, target_rate: float, write_cost: float) -> None:
        elapsed = now_us - self._last_update_us
        self._last_update_us = now_us
        if elapsed <= 0:
            return
        pool = min(
            self.read_tokens + target_rate * elapsed, 2 * self.max_tokens
        )
        # Mirror the pool through both "buckets" so consumers see one
        # shared allowance regardless of IO type.
        self.read_tokens = pool
        self.write_tokens = pool

    def consume(self, op: IoOp, nbytes: int) -> None:
        if not self.can_consume(op, nbytes):
            raise ValueError("insufficient tokens")
        self.read_tokens -= nbytes
        self.write_tokens = self.read_tokens

    def discard(self) -> None:
        self.read_tokens = 0.0
        self.write_tokens = 0.0


class SingleBucketGimbal(GimbalScheduler):
    """Gimbal minus the dual token bucket."""

    name = "gimbal-single-bucket"

    def __init__(self, params: Optional[GimbalParams] = None):
        super().__init__(params)
        self.rate.bucket = SingleTokenBucket(self.params)


class NoSlotGimbal(GimbalScheduler):
    """Gimbal minus virtual slots (plain byte-quantum DRR)."""

    name = "gimbal-no-slots"

    def __init__(self, params: Optional[GimbalParams] = None):
        super().__init__(params)
        # A limit no tenant can reach: slots never defer anyone.
        self.drr.slot_limit = 1 << 30
        self.drr._recompute_slot_limit = lambda: None  # type: ignore[method-assign]


class StaticWriteCostGimbal(GimbalScheduler):
    """Gimbal minus dynamic write-cost calibration (frozen worst case)."""

    name = "gimbal-static-cost"

    def __init__(self, params: Optional[GimbalParams] = None):
        super().__init__(params)
        self.write_cost.observe_write_latency = (  # type: ignore[method-assign]
            lambda now_us, latency_us: self.write_cost.cost
        )


ABLATIONS = {
    "full": GimbalScheduler,
    "fixed-threshold": FixedThresholdGimbal,
    "single-bucket": SingleBucketGimbal,
    "no-slots": NoSlotGimbal,
    "static-cost": StaticWriteCostGimbal,
}
