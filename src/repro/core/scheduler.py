"""Two-level hierarchical IO scheduler (paper Section 3.5, Algorithm 2).

Level 1 is deficit round-robin *across tenants*, with two twists over
textbook DRR:

* the serviceable unit is the cost-weighted IO size (writes count
  ``write_cost x size``), so a 128 KiB write at cost 3 waits three
  quantum rounds, exactly the paper's example;
* a tenant must hold a free *virtual slot* to submit.  Out of slots,
  it moves to the deferred list with its deficit zeroed and rejoins
  the tail of the active list when a slot drains -- deficits never
  accrue while deferred.

Level 2 is per-tenant priority queues: within a tenant, queues are
served weighted-round-robin with weight ``priority + 1``, which lets
clients prioritise latency-sensitive IOs over bulk traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.config import GimbalParams
from repro.core.rate_control import DualTokenBucket
from repro.core.virtual_slot import SlotManager
from repro.fabric.request import FabricRequest


class GimbalTenant:
    """Per-tenant scheduler state: priority queues, deficit, slots."""

    def __init__(self, tenant_id: str, weight: float, slot_bytes: int):
        self.tenant_id = tenant_id
        self.weight = weight
        self.slots = SlotManager(slot_bytes)
        self.deficit = 0.0
        self.in_active = False
        self.deferred = False
        self._queues: Dict[int, Deque[FabricRequest]] = {}
        # Weighted-round-robin state across priority queues:
        # [priority, remaining_serves], rebuilt when the set of
        # non-empty priorities changes.
        self._wrr: List[List[int]] = []
        self._wrr_index = 0
        self.pending = 0

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def push(self, request: FabricRequest) -> None:
        queue = self._queues.get(request.priority)
        if queue is None:
            queue = deque()
            self._queues[request.priority] = queue
            self._rebuild_wrr()
        queue.append(request)
        self.pending += 1

    def peek(self) -> Optional[FabricRequest]:
        """The request :meth:`pop` would return, without removing it."""
        priority = self._select_priority()
        if priority is None:
            return None
        return self._queues[priority][0]

    def pop(self) -> FabricRequest:
        priority = self._select_priority()
        if priority is None:
            raise IndexError("tenant has no pending requests")
        queue = self._queues[priority]
        request = queue.popleft()
        self.pending -= 1
        self._advance_wrr(priority)
        if not queue:
            del self._queues[priority]
            self._rebuild_wrr()
        return request

    # ------------------------------------------------------------------
    # Weighted round-robin across priority queues
    # ------------------------------------------------------------------
    def _rebuild_wrr(self) -> None:
        self._wrr = [
            [priority, priority + 1] for priority in sorted(self._queues, reverse=True)
        ]
        self._wrr_index = 0

    def _select_priority(self) -> Optional[int]:
        if not self._wrr:
            return None
        for _ in range(2 * len(self._wrr)):
            if self._wrr_index >= len(self._wrr):
                self._wrr_index = 0
                for entry in self._wrr:
                    entry[1] = entry[0] + 1
            entry = self._wrr[self._wrr_index]
            if entry[1] > 0 and self._queues.get(entry[0]):
                return entry[0]
            self._wrr_index += 1
        return None

    def _advance_wrr(self, priority: int) -> None:
        if self._wrr_index < len(self._wrr) and self._wrr[self._wrr_index][0] == priority:
            self._wrr[self._wrr_index][1] -= 1
            if self._wrr[self._wrr_index][1] <= 0:
                self._wrr_index += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GimbalTenant({self.tenant_id}, pending={self.pending}, "
            f"deficit={self.deficit:.0f}, slots={self.slots.slots_in_use})"
        )


#: Pump outcome: ("idle", ...) all work drained/deferred, or
#: ("tokens", op, deficit_bytes) blocked on the token bucket.
PumpResult = Tuple[str, Optional[object], Optional[float]]


class DrrSlotScheduler:
    """Deficit round-robin over tenants with virtual-slot gating."""

    def __init__(self, params: GimbalParams):
        self.params = params
        self.tenants: Dict[str, GimbalTenant] = {}
        self.active: Deque[GimbalTenant] = deque()
        self.slot_limit = params.slot_threshold
        #: Times a tenant was parked for running out of virtual slots
        #: (observability: how often slots, not tokens, are the limiter).
        self.deferrals = 0

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def add_tenant(self, tenant_id: str, weight: float = 1.0) -> GimbalTenant:
        if tenant_id in self.tenants:
            return self.tenants[tenant_id]
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        tenant = GimbalTenant(tenant_id, weight, self.params.slot_bytes)
        self.tenants[tenant_id] = tenant
        self._recompute_slot_limit()
        return tenant

    def remove_tenant(self, tenant_id: str) -> None:
        """Drop an idle tenant; remaining tenants' slot shares grow."""
        tenant = self.tenants.pop(tenant_id, None)
        if tenant is None:
            return
        if tenant.in_active:
            self.active.remove(tenant)
        self._recompute_slot_limit()

    def _recompute_slot_limit(self) -> None:
        """Distribute the slot threshold across tenants, at least 1 each."""
        count = max(1, len(self.tenants))
        self.slot_limit = max(1, self.params.slot_threshold // count)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def enqueue(self, tenant: GimbalTenant, request: FabricRequest) -> None:
        tenant.push(request)
        if not tenant.in_active and not tenant.deferred:
            self._activate(tenant)

    def _activate(self, tenant: GimbalTenant) -> None:
        tenant.in_active = True
        tenant.deferred = False
        self.active.append(tenant)

    def on_slot_freed(self, tenant: GimbalTenant) -> None:
        """A virtual slot drained; a deferred tenant may rejoin."""
        if tenant.deferred and tenant.slots.can_open(self.slot_limit):
            self._activate(tenant)

    def pump(
        self,
        weighted_size: Callable[[FabricRequest], float],
        bucket: DualTokenBucket,
        submit: Callable[..., None],
    ) -> PumpResult:
        """Run Algorithm 2 until out of work, slots everywhere, or tokens.

        Termination: every full rotation of the active list adds one
        quantum to each tenant's deficit, so a head-of-queue IO whose
        weighted size is W waits at most ceil(W / quantum) rotations;
        tenants without slots leave the list.
        """
        active = self.active
        while active:
            tenant = active[0]
            request = tenant.peek()
            if request is None:
                active.popleft()
                tenant.in_active = False
                continue
            weighted = weighted_size(request)
            token_bytes = 4096 if request.op.is_trim else request.size_bytes
            if tenant.deficit < weighted:
                # Weighted DRR: a tenant's quantum scales with its
                # share weight, so weight-2 tenants accumulate service
                # twice as fast.
                tenant.deficit += self.params.quantum_bytes * tenant.weight
                active.rotate(-1)
                continue
            if not bucket.can_consume(request.op, token_bytes):
                deficit = token_bytes - bucket.tokens_for(request.op)
                return ("tokens", request.op, deficit)
            slot = tenant.slots.try_place(weighted, self.slot_limit)
            if slot is None:
                # Out of virtual slots: defer with deficit zeroed
                # (Algorithm 2 / Section 3.5).
                tenant.deficit = 0.0
                active.popleft()
                tenant.in_active = False
                tenant.deferred = True
                self.deferrals += 1
                continue
            tenant.pop()
            bucket.consume(request.op, token_bytes)
            tenant.deficit -= weighted
            submit(request, tenant, slot)
        return ("idle", None, None)
