"""Rate pacing engine with a dual token bucket (Section 3.3, Alg 1 & 4).

Window-based control does not fit SSDs: the same outstanding-byte
window yields wildly different bandwidths across IO mixes, and the
device's internal write buffer absorbs bursts in a way that inflates a
window.  Gimbal instead paces *submission rate* with a token bucket,
adjusting the target rate on every completion:

* congestion avoidance  -> probe up by the completed IO's size,
* congested             -> back off by the completed IO's size,
* under-utilised        -> probe aggressively (beta x size) so the rate
  recovers within a second after a workload shift (CUBIC/TIMELY-style),
* overloaded            -> snap the target to the measured completion
  rate, shed a little more, and discard buffered tokens to kill the
  burst.

The bucket is *dual*: tokens split between a read and a write bucket in
the ratio ``write_cost : 1`` so a write-heavy phase cannot burst at the
(much higher) aggregate rate; overflow spills to the other bucket
(Appendix C.1, Algorithm 4).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.core.config import GimbalParams
from repro.core.congestion import CongestionState
from repro.ssd.commands import IoOp


class CompletionRateMeter:
    """Sliding-window measurement of the device's completion rate."""

    def __init__(self, window_us: float):
        if window_us <= 0:
            raise ValueError("window must be positive")
        self.window_us = window_us
        self._events: Deque[Tuple[float, int]] = deque()
        self._bytes_in_window = 0

    def record(self, now_us: float, nbytes: int) -> None:
        self._events.append((now_us, nbytes))
        self._bytes_in_window += nbytes
        self._evict(now_us)

    def rate_bytes_per_us(self, now_us: float) -> float:
        self._evict(now_us)
        return self._bytes_in_window / self.window_us

    def _evict(self, now_us: float) -> None:
        horizon = now_us - self.window_us
        events = self._events
        while events and events[0][0] < horizon:
            _, nbytes = events.popleft()
            self._bytes_in_window -= nbytes


class DualTokenBucket:
    """Separate read/write buckets fed from one target rate (Algorithm 4)."""

    def __init__(self, params: GimbalParams):
        self.max_tokens = params.bucket_max_tokens
        self.read_tokens = self.max_tokens
        self.write_tokens = self.max_tokens
        self._last_update_us = 0.0
        # Observability counters: how often the bucket gated admission
        # and how often the overload path discarded buffered tokens.
        self.denials = 0
        self.discards = 0

    def update(self, now_us: float, target_rate: float, write_cost: float) -> None:
        """Generate tokens since the last update and split them by cost."""
        elapsed = now_us - self._last_update_us
        self._last_update_us = now_us
        if elapsed <= 0:
            return
        available = target_rate * elapsed
        self.read_tokens += available * (write_cost / (1.0 + write_cost))
        self.write_tokens += available * (1.0 / (1.0 + write_cost))
        # Overflow spills to the sibling bucket, then truncates.
        if self.read_tokens > self.max_tokens:
            self.write_tokens += self.read_tokens - self.max_tokens
            self.read_tokens = self.max_tokens
        if self.write_tokens > self.max_tokens:
            self.read_tokens += self.write_tokens - self.max_tokens
            self.read_tokens = min(self.read_tokens, self.max_tokens)
            self.write_tokens = self.max_tokens

    def tokens_for(self, op: IoOp) -> float:
        # Trims ride the write path (dataset management); reads have
        # their own bucket.
        return self.read_tokens if op.is_read else self.write_tokens

    def can_consume(self, op: IoOp, nbytes: int) -> bool:
        if self.tokens_for(op) >= nbytes:
            return True
        self.denials += 1
        return False

    def consume(self, op: IoOp, nbytes: int) -> None:
        if not self.can_consume(op, nbytes):
            raise ValueError("insufficient tokens")
        if op.is_read:
            self.read_tokens -= nbytes
        else:
            self.write_tokens -= nbytes

    def discard(self) -> None:
        """Drop buffered tokens (overloaded state: avoid a burst)."""
        self.read_tokens = 0.0
        self.write_tokens = 0.0
        self.discards += 1


class RateController:
    """Owns the target submission rate (Algorithm 1's ``Completion``)."""

    def __init__(self, params: GimbalParams):
        self.params = params
        self.target_rate = params.initial_rate_bytes_per_us
        self.meter = CompletionRateMeter(params.completion_rate_window_us)
        # The headroom clamp needs a steadier estimate than the snap
        # meter: a 10 ms window holds only 2-3 completions of 128 KiB
        # at low rates, and clamping multiplicatively against that much
        # sampling noise random-walks the rate into the floor.
        self.clamp_meter = CompletionRateMeter(4.0 * params.completion_rate_window_us)
        self.bucket = DualTokenBucket(params)

    def on_completion(
        self,
        now_us: float,
        op: IoOp,
        nbytes: int,
        state: CongestionState,
        overall_state: CongestionState = None,
    ) -> None:
        """Adjust the target rate for one completed IO in ``state``.

        ``overall_state`` is the more-loaded of the two IO-type
        monitors; the headroom clamp only engages once *some* IO type
        shows congestion pressure -- while everything is under-utilised
        the paper's aggressive probing must run unconstrained.
        """
        params = self.params
        if overall_state is None:
            overall_state = state
        self.meter.record(now_us, nbytes)
        self.clamp_meter.record(now_us, nbytes)
        if state is CongestionState.OVERLOADED:
            # Snap below the device's measured service rate and kill
            # any buffered burst; incremental steps cannot converge
            # when the workload mix shifted under us.
            self.target_rate = self.meter.rate_bytes_per_us(now_us)
            self.bucket.discard()
            self.target_rate -= self._step(nbytes)
        elif state is CongestionState.CONGESTED:
            self.target_rate -= self._step(nbytes)
        elif state is CongestionState.CONGESTION_AVOIDANCE:
            self.target_rate += self._step(nbytes)
        else:  # UNDERUTILIZED: probe aggressively.
            self.target_rate += params.beta * self._step(nbytes)
        # Keep the target tethered to reality: at most ``headroom`` x
        # the measured completion rate (see GimbalParams for rationale).
        if overall_state.value >= CongestionState.CONGESTION_AVOIDANCE.value:
            measured = self.clamp_meter.rate_bytes_per_us(now_us)
            if measured > 0:
                self.target_rate = min(
                    self.target_rate, measured * params.completion_headroom
                )
        self.target_rate = min(
            max(self.target_rate, params.min_rate_bytes_per_us), params.max_rate_bytes_per_us
        )

    def _step(self, nbytes: int) -> float:
        """Per-completion rate increment.

        The paper adjusts the rate "by the IO completion size"; rates
        here are bytes/us, so the size is normalised by the completion
        window to give a rate delta of the same flavour (one window's
        worth of that IO).
        """
        return nbytes / self.params.completion_rate_window_us

    def refresh_bucket(self, now_us: float, write_cost: float) -> None:
        self.bucket.update(now_us, self.target_rate, write_cost)

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose the pacing engine's live state as pull gauges."""
        registry.gauge(f"{prefix}.target_bytes_per_us", lambda: self.target_rate)
        registry.gauge(f"{prefix}.read_tokens", lambda: self.bucket.read_tokens)
        registry.gauge(f"{prefix}.write_tokens", lambda: self.bucket.write_tokens)
        registry.gauge(f"{prefix}.bucket_denials", lambda: self.bucket.denials)
        registry.gauge(f"{prefix}.bucket_discards", lambda: self.bucket.discards)
