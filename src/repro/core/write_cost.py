"""Dynamic write-cost estimation (paper Section 3.4).

The *write cost* is the ratio between achieved read and write
bandwidth -- how many read-equivalents one written byte consumes.  It
cannot be read from the device, so Gimbal calibrates it online in an
ADMI (additive-decrease / multiplicative-increase) fashion keyed off
write latency:

* while the write EWMA latency stays below ``thresh_min`` the device is
  absorbing writes in its DRAM buffer, so the cost steps *down* by
  ``delta`` (all the way to 1.0 -- writes are then as cheap as reads);
* the moment write latency rises, the cost jumps to the midpoint of
  the current value and the worst case, converging quickly to the
  pre-calibrated worst case under sustained pressure.
"""

from __future__ import annotations

from repro.core.config import GimbalParams

#: Floor on effective overprovisioning when deriving aged write
#: amplification: a device whose slack has fully eroded would have an
#: unbounded analytic WA, which no estimator should start from.
_MIN_EFFECTIVE_OVERPROVISION = 0.02


def steady_state_write_amplification(overprovision: float) -> float:
    """Worst-case steady-state WA of a page-mapped FTL.

    The classic uniform-random bound ``(1 + u) / (2 (1 - u))`` with
    ``u = 1 - overprovision`` the steady-state utilisation.  Greedy
    victim selection does better in expectation (the simulator settles
    around 4-6 at 12% OP), but the *worst case* is what Section 3.4's
    pre-calibrated ``write_cost_worst`` wants.
    """
    if not 0.0 < overprovision < 1.0:
        raise ValueError("overprovision must be in (0, 1)")
    u = 1.0 - overprovision
    return (1.0 + u) / (2.0 * (1.0 - u))


def aged_write_amplification(overprovision: float, age: float) -> float:
    """Worst-case WA of a device ``age`` of the way through its life.

    Wear-out consumes overprovisioning: retired blocks shrink the
    spare pool GC plays with, so an aged device behaves like a fresh
    one with less slack.  The model charges up to half the slack by
    end of life (retirement clamps keep devices bootable, so the pool
    never fully vanishes), floored at 2% effective OP.
    """
    if not 0.0 <= age < 1.0:
        raise ValueError("age must be in [0, 1)")
    effective = max(_MIN_EFFECTIVE_OVERPROVISION, overprovision * (1.0 - 0.5 * age))
    return steady_state_write_amplification(effective)


def worst_case_write_cost(profile, geometry, age: float = 0.0) -> float:
    """Derive ``write_cost_worst`` from device timing + aged geometry.

    Write cost is the paper's read-bandwidth / write-bandwidth ratio
    at 4 KiB.  Reads are the cheaper of the controller and channel
    bounds; worst-case writes pay the full amplified program +
    relocation-read + amortised-erase channel time per host page.
    """
    wa = aged_write_amplification(geometry.overprovision, age)
    per_page_busy_us = (
        wa * profile.t_prog_us
        + (wa - 1.0) * profile.t_read_xfer_us
        + wa * profile.t_erase_us / geometry.pages_per_block
    )
    if per_page_busy_us <= 0.0:
        return 1.0
    write_pages_per_us = geometry.num_channels / per_page_busy_us
    channel_read_rate = geometry.num_channels / profile.t_read_xfer_us
    if profile.t_ctrl_cmd_us > 0.0:
        read_pages_per_us = min(1.0 / profile.t_ctrl_cmd_us, channel_read_rate)
    else:
        read_pages_per_us = channel_read_rate
    return max(1.0, read_pages_per_us / write_pages_per_us)


def actual_write_cost(profile, ftl_stats, map_reads: int = 0, map_writes: int = 0) -> float:
    """Measured write cost from FTL accounting (the estimator's oracle).

    Converts the programs/relocation-reads/erases (plus any DFTL
    translation-page traffic) a run actually performed into channel
    time per host page, normalised by the read transfer time -- the
    same read-equivalents unit :func:`worst_case_write_cost` predicts.
    """
    host = ftl_stats.host_programs
    if host == 0:
        return 1.0
    programs = host + ftl_stats.gc_programs + ftl_stats.wl_programs + map_writes
    relocation_reads = ftl_stats.gc_programs + ftl_stats.wl_programs + map_reads
    busy_us = (
        programs * profile.t_prog_us
        + relocation_reads * profile.t_read_xfer_us
        + ftl_stats.erases * profile.t_erase_us
    )
    if profile.t_read_xfer_us <= 0.0:
        return 1.0
    return max(1.0, busy_us / host / profile.t_read_xfer_us)


class WriteCostEstimator:
    """Tracks the current write cost in [1.0, write_cost_worst]."""

    def __init__(self, params: GimbalParams):
        self.params = params
        self.worst = params.write_cost_worst
        self.cost = params.write_cost_worst
        self._last_update_us = float("-inf")
        self.updates = 0

    def recalibrate_worst(self, worst: float) -> None:
        """Install a device-derived worst case (pre-run calibration).

        Used when the testbed knows more about the device than the
        static config does -- e.g. an aged device whose worst case
        comes from :func:`worst_case_write_cost` on its conditioned
        geometry.  The current cost restarts at the new worst, exactly
        like construction.
        """
        if worst < 1.0:
            raise ValueError("worst-case write cost cannot be below 1.0")
        self.worst = float(worst)
        self.cost = self.worst

    def observe_write_latency(self, now_us: float, write_ewma_latency_us: float) -> float:
        """Periodic ADMI update; returns the (possibly unchanged) cost."""
        if now_us - self._last_update_us < self.params.write_cost_period_us:
            return self.cost
        self._last_update_us = now_us
        self.updates += 1
        if write_ewma_latency_us < self.params.thresh_min_us:
            self.cost = max(1.0, self.cost - self.params.write_cost_delta)
        else:
            self.cost = (self.cost + self.worst) / 2.0
        return self.cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteCostEstimator(cost={self.cost:.2f}, worst={self.worst})"
