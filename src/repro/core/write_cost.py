"""Dynamic write-cost estimation (paper Section 3.4).

The *write cost* is the ratio between achieved read and write
bandwidth -- how many read-equivalents one written byte consumes.  It
cannot be read from the device, so Gimbal calibrates it online in an
ADMI (additive-decrease / multiplicative-increase) fashion keyed off
write latency:

* while the write EWMA latency stays below ``thresh_min`` the device is
  absorbing writes in its DRAM buffer, so the cost steps *down* by
  ``delta`` (all the way to 1.0 -- writes are then as cheap as reads);
* the moment write latency rises, the cost jumps to the midpoint of
  the current value and the worst case, converging quickly to the
  pre-calibrated worst case under sustained pressure.
"""

from __future__ import annotations

from repro.core.config import GimbalParams


class WriteCostEstimator:
    """Tracks the current write cost in [1.0, write_cost_worst]."""

    def __init__(self, params: GimbalParams):
        self.params = params
        self.worst = params.write_cost_worst
        self.cost = params.write_cost_worst
        self._last_update_us = float("-inf")
        self.updates = 0

    def observe_write_latency(self, now_us: float, write_ewma_latency_us: float) -> float:
        """Periodic ADMI update; returns the (possibly unchanged) cost."""
        if now_us - self._last_update_us < self.params.write_cost_period_us:
            return self.cost
        self._last_update_us = now_us
        self.updates += 1
        if write_ewma_latency_us < self.params.thresh_min_us:
            self.cost = max(1.0, self.cost - self.params.write_cost_delta)
        else:
            self.cost = (self.cost + self.worst) / 2.0
        return self.cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteCostEstimator(cost={self.cost:.2f}, worst={self.worst})"
