"""Virtual slots: Gimbal's normalised IO unit (paper Section 3.5).

Per-IO cost inside an SSD cannot be observed, and raw outstanding
bytes are misleading (a pipelined stream of 32 x 4 KiB IOs occupies
more internal queue slots than one 128 KiB IO).  A *virtual slot*
therefore groups submitted IOs up to 128 KiB of cost-weighted size and
is the granularity at which completion is managed: the slot frees only
when every IO inside it has completed.  Because an allocated slot
cannot be stolen, slots also fix the deceptive-idleness problem of
work-conserving fair queueing.
"""

from __future__ import annotations

from typing import List, Optional


class VirtualSlot:
    """One group of in-flight IOs, at most ``slot_bytes`` weighted bytes."""

    __slots__ = ("slot_bytes", "submits", "completions", "weighted_bytes", "is_full")

    def __init__(self, slot_bytes: int):
        self.slot_bytes = slot_bytes
        self.submits = 0
        self.completions = 0
        self.weighted_bytes = 0.0
        self.is_full = False

    def add(self, weighted_size: float) -> None:
        """Account one submitted IO; closes the slot when it fills."""
        if self.is_full:
            raise RuntimeError("cannot add to a closed slot")
        self.submits += 1
        self.weighted_bytes += weighted_size
        if self.weighted_bytes >= self.slot_bytes:
            self.is_full = True

    def complete_one(self) -> bool:
        """Account one completion; True when the whole slot just freed."""
        self.completions += 1
        if self.completions > self.submits:
            raise RuntimeError("more completions than submissions in slot")
        return self.is_full and self.completions == self.submits

    @property
    def drained(self) -> bool:
        return self.is_full and self.completions == self.submits


class SlotManager:
    """Per-tenant slot accounting (Algorithm 2's bookkeeping).

    A tenant may hold at most ``limit`` slots that are *in use* (the
    open slot plus closed-but-incomplete ones).  ``try_place`` either
    returns the slot an IO was placed into or None, meaning the tenant
    must defer until a slot drains.
    """

    def __init__(self, slot_bytes: int):
        if slot_bytes <= 0:
            raise ValueError("slot size must be positive")
        self.slot_bytes = slot_bytes
        self.current: Optional[VirtualSlot] = None
        self._in_use: List[VirtualSlot] = []
        #: IO count of the most recently drained slot; feeds the credit
        #: computation (Section 3.6).
        self.last_drained_io_count = 0

    @property
    def slots_in_use(self) -> int:
        return len(self._in_use)

    def can_open(self, limit: int) -> bool:
        return self.slots_in_use < limit

    def try_place(self, weighted_size: float, limit: int) -> Optional[VirtualSlot]:
        """Place one IO of ``weighted_size`` into a slot, or defer."""
        if weighted_size <= 0:
            raise ValueError("weighted size must be positive")
        if self.current is None or self.current.is_full:
            if not self.can_open(limit):
                return None
            self.current = VirtualSlot(self.slot_bytes)
            self._in_use.append(self.current)
        slot = self.current
        slot.add(weighted_size)
        return slot

    @property
    def outstanding_ios(self) -> int:
        """Submitted-but-uncompleted IOs across all in-use slots."""
        return sum(slot.submits - slot.completions for slot in self._in_use)

    def on_completion(self, slot: VirtualSlot) -> bool:
        """Register a completion; True when ``slot`` drained and freed."""
        if slot.complete_one():
            self._in_use.remove(slot)
            if slot is self.current:
                self.current = None
            self.last_drained_io_count = slot.submits
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotManager(in_use={self.slots_in_use}, last_drained={self.last_drained_io_count})"
