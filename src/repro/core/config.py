"""Gimbal's tunable parameters (paper Section 4.2).

Defaults follow the paper's published values for the Samsung DCT983:
Thresh_min 250 us, Thresh_max 1500 us, alpha_T = alpha_D = 2^-1,
beta = 8, 128 KiB virtual slots with a threshold of 8 slots per
single tenant, worst-case write cost 9.  Section 5.8 retunes
Thresh_max to 3 ms for the Intel P3600.

One deviation: the additive write-cost decrement defaults to 0.25
(paper: 0.5) because our estimator updates every 10 ms; the paper's
update period is unspecified, and the published decrement at this
cadence lets write floods recur faster than their latency damage
drains on the simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.units import KB, mbps


@dataclass(frozen=True)
class GimbalParams:
    """Every knob of the storage switch in one place."""

    # -- delay-based congestion control (Section 3.2) --
    thresh_min_us: float = 250.0
    thresh_max_us: float = 1500.0
    #: EWMA weight for observed latency (paper alpha_D = 2^-1).
    alpha_d: float = 0.5
    #: Threshold decay toward the EWMA (paper alpha_T = 2^-1).
    alpha_t: float = 0.5

    # -- rate control engine (Section 3.3) --
    #: Probe acceleration in the under-utilised state (paper beta = 8).
    beta: float = 8.0
    initial_rate_bytes_per_us: float = mbps(400.0)
    min_rate_bytes_per_us: float = mbps(4.0)
    max_rate_bytes_per_us: float = mbps(7000.0)
    #: Window for the completion-rate measurement used by the
    #: overloaded-state reset.
    completion_rate_window_us: float = 10_000.0
    #: Cap on how far the target rate may run ahead of the measured
    #: completion rate.  The paper resets the rate to the completion
    #: rate only in the overloaded state; this continuous guard keeps
    #: the token buckets binding when virtual slots (not tokens) are
    #: the active limiter, otherwise the rate random-walks upward and
    #: bucket overflow hands the surplus to the cheaper IO type.
    completion_headroom: float = 1.5
    #: Dual-token-bucket capacity (Appendix C.1: 256 KiB empirically).
    bucket_max_tokens: float = 256.0 * KB

    # -- write cost estimation (Section 3.4) --
    write_cost_worst: float = 9.0
    #: Additive decrement delta.
    write_cost_delta: float = 0.25
    #: Minimum spacing between cost updates.
    write_cost_period_us: float = 10_000.0

    # -- virtual slots and DRR (Section 3.5) --
    #: A slot groups IOs up to this many bytes (the de facto max IO size).
    slot_bytes: int = 128 * KB
    #: Slots granted to a single tenant running alone (8 x 128 KiB
    #: sequential reads reach full bandwidth on the DCT983).
    slot_threshold: int = 8
    #: DRR quantum added per round-robin visit.
    quantum_bytes: int = 128 * KB

    # -- end-to-end credit flow control (Section 3.6) --
    #: Credits granted before the first slot completes.
    initial_slot_io_count: int = 8

    def __post_init__(self) -> None:
        if not 0 < self.thresh_min_us < self.thresh_max_us:
            raise ValueError("need 0 < thresh_min < thresh_max")
        for name in ("alpha_d", "alpha_t"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.beta < 1.0:
            raise ValueError("beta must be >= 1")
        if self.write_cost_worst < 1.0:
            raise ValueError("worst-case write cost must be >= 1")
        if self.slot_bytes <= 0 or self.slot_threshold <= 0 or self.quantum_bytes <= 0:
            raise ValueError("slot/quantum sizes must be positive")
        if not 0 < self.min_rate_bytes_per_us <= self.initial_rate_bytes_per_us <= self.max_rate_bytes_per_us:
            raise ValueError("need min_rate <= initial_rate <= max_rate")

    def with_overrides(self, **kwargs) -> "GimbalParams":
        """A copy with some parameters replaced (e.g. P3600 retuning)."""
        return replace(self, **kwargs)


#: Section 5.8: the Intel P3600 shows higher (and more variable) read
#: tail latency, so two knobs are retuned the way Section 4.2
#: prescribes per device: Thresh_max to 3 ms, and the single-tenant
#: virtual-slot threshold to 32 -- a slot only frees when its slowest
#: IO completes, so a device with fatter read tails needs more slots
#: outstanding to ride out stragglers.
P3600_PARAMS = GimbalParams(thresh_max_us=3000.0, slot_threshold=32)
