"""Client-side NVMe-oF initiator.

A :class:`TenantSession` is the paper's notion of a tenant: one RDMA
qpair plus one NVMe qpair bound to a single remote SSD.  Applications
(the fio-like workers, the KV store's blobstore) submit IOs against a
session; the session applies its client policy (credits, PARDA window,
plain queue depth) and puts command capsules on the wire.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from repro.fabric.network import Network
from repro.fabric.policies import ClientPolicy, UnlimitedClientPolicy
from repro.fabric.request import (
    COMMAND_CAPSULE_BYTES,
    FabricRequest,
    acquire_request,
    release_request,
)
from repro.sim.engine import Simulator
from repro.ssd.commands import IoOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.target import NvmeOfTarget

CompletionCallback = Callable[[FabricRequest], None]


class NvmeOfInitiator:
    """One client host: a network port plus its tenant sessions."""

    def __init__(self, sim: Simulator, network: Network, name: str):
        self.sim = sim
        self.network = network
        self.name = name
        self.port = network.port(name)
        self.sessions: list["TenantSession"] = []

    def connect(
        self,
        tenant_id: str,
        target: "NvmeOfTarget",
        ssd_name: str,
        policy: Optional[ClientPolicy] = None,
        queue_depth: int = 256,
        weight: float = 1.0,
        namespace=None,
    ) -> "TenantSession":
        """Attach to ``ssd_name`` on ``target`` as tenant ``tenant_id``.

        With ``namespace`` set, the session's LBAs are
        namespace-relative and bounds-checked at the target.
        """
        session = TenantSession(
            initiator=self,
            tenant_id=tenant_id,
            target=target,
            ssd_name=ssd_name,
            policy=policy or UnlimitedClientPolicy(),
            queue_depth=queue_depth,
        )
        session.namespace = namespace
        target.accept_connection(session, weight)
        self.sessions.append(session)
        return session


class TenantSession:
    """One tenant's qpair to one remote SSD."""

    def __init__(
        self,
        initiator: NvmeOfInitiator,
        tenant_id: str,
        target: "NvmeOfTarget",
        ssd_name: str,
        policy: ClientPolicy,
        queue_depth: int,
    ):
        if queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        self.initiator = initiator
        self.sim = initiator.sim
        self.tenant_id = tenant_id
        self.target = target
        self.ssd_name = ssd_name
        self.policy = policy
        self.queue_depth = queue_depth
        # Wire-path shortcut: command capsules are delivered straight
        # into the owning pipeline's ``handle_arrival`` with this
        # session's bound ``deliver_completion`` as the reply route --
        # the per-IO work of :meth:`NvmeOfTarget.receive_command`
        # (pipeline lookup, bound-method creation) is paid once here.
        # ``receive_command`` remains the entry point for external
        # callers that are not sessions.
        self._arrive = target.pipeline(ssd_name).handle_arrival
        self._deliver = self.deliver_completion
        # Closed-loop resubmits all land on the same arrival callback:
        # a kernel population lets the batch backend advance them in
        # bulk (the reference backend serves it from the heap).
        self._arrive_pop = self.sim.population(
            self._arrive, label=f"{tenant_id}.arrive"
        )
        # The serialisation arithmetic of ``Network.send`` is inlined
        # into the issue paths below; every network parameter is fixed
        # after construction, so the scalars are hoisted here.  The
        # capsule's bandwidth quotient is precomputed (the division
        # result is exact either way); the additions keep ``send``'s
        # association order so timings stay bit-identical.
        network = initiator.network
        self._port = initiator.port
        self._per_message_us = network.per_message_us
        self._propagation_us = network.propagation_us
        self._capsule_wire_us = COMMAND_CAPSULE_BYTES / network.bandwidth
        #: Optional NVMe namespace; installed by connect() before the
        #: target registers the tenant.
        self.namespace = None
        self.inflight = 0
        self.submitted = 0
        self.completed = 0
        #: Opt-in request recycling: a workload that never retains a
        #: request past its completion callback (the fio workers) sets
        #: this so steady-state IO draws from the free-list pool in
        #: :mod:`repro.fabric.request` instead of allocating.
        self.recycle_requests = False
        # Pending IOs grouped by priority: when the policy gates
        # submission, tagged latency-sensitive IOs (higher priority)
        # go on the wire before queued bulk traffic -- the client-side
        # half of the paper's priority tagging.  The application
        # callback travels on the request itself (``_on_complete``).
        self._pending_by_priority: Dict[int, Deque[FabricRequest]] = {}
        self._pending_count = 0
        # Policies inheriting the base no-op observers (and the
        # never-gating unlimited policy) cost nothing per IO.
        policy_type = type(policy)
        self._policy_gates = policy_type.allow is not UnlimitedClientPolicy.allow
        self._policy_observes_submit = policy_type.on_submit is not ClientPolicy.on_submit
        self._policy_observes_complete = (
            policy_type.on_complete is not ClientPolicy.on_complete
        )
        policy.bind(self)

    @property
    def client_port(self):
        return self.initiator.port

    @property
    def queued(self) -> int:
        """IOs accepted from the application but not yet on the wire."""
        return self._pending_count

    def submit(
        self,
        op: IoOp,
        lba: int,
        npages: int,
        priority: int = 0,
        on_complete: Optional[CompletionCallback] = None,
        context=None,
    ) -> FabricRequest:
        """Queue one IO; it goes on the wire when the policy allows."""
        if self.recycle_requests:
            request = acquire_request(
                self.tenant_id, op, lba, npages, priority, context
            )
        else:
            request = FabricRequest(
                tenant_id=self.tenant_id,
                op=op,
                lba=lba,
                npages=npages,
                priority=priority,
                context=context,
            )
        now = self.sim.now
        request.t_client_submit = now
        request._on_complete = on_complete
        # Closed-loop steady state: nothing queued and the window open.
        # The request goes straight on the wire without the queue
        # round-trip (append + pop), which _try_issue would perform
        # with an identical outcome.
        if (
            not self._pending_count
            and self.inflight < self.queue_depth
            and (not self._policy_gates or self.policy.allow())
        ):
            request.t_wire_submit = now
            self.inflight += 1
            self.submitted += 1
            if self._policy_observes_submit:
                self.policy.on_submit(request)
            port = self._port
            busy = port.tx_busy_until
            start = now if now > busy else busy
            tx_done = start + self._per_message_us + self._capsule_wire_us
            port.tx_busy_until = tx_done
            port.bytes_sent += COMMAND_CAPSULE_BYTES
            port.messages_sent += 1
            self._arrive_pop.add(
                tx_done + self._propagation_us, request, self._deliver
            )
            return request
        queue = self._pending_by_priority.get(priority)
        if queue is None:
            queue = deque()
            self._pending_by_priority[priority] = queue
        queue.append(request)
        self._pending_count += 1
        self._try_issue()
        return request

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------
    def _pop_pending(self) -> FabricRequest:
        # Empty queues are deleted eagerly, so every present queue has
        # an IO; the overwhelmingly common single-priority case needs
        # no sort.
        by_priority = self._pending_by_priority
        if len(by_priority) == 1:
            priority, queue = next(iter(by_priority.items()))
        else:
            for priority in sorted(by_priority, reverse=True):
                queue = by_priority[priority]
                break
            else:
                raise IndexError("no pending IO")
        self._pending_count -= 1
        request = queue.popleft()
        if not queue:
            del by_priority[priority]
        return request

    def _try_issue(self) -> None:
        sim = self.sim
        port = self._port
        policy = self.policy
        gated = self._policy_gates
        observes = self._policy_observes_submit
        # The additions below mirror Network.send term-for-term (start +
        # per_message + bytes/bandwidth, then + propagation) so the two
        # issue paths and the generic send produce identical floats.
        per_message_us = self._per_message_us
        capsule_wire_us = self._capsule_wire_us
        propagation_us = self._propagation_us
        while (
            self._pending_count
            and self.inflight < self.queue_depth
            and (not gated or policy.allow())
        ):
            request = self._pop_pending()
            now = sim.now
            request.t_wire_submit = now
            self.inflight += 1
            self.submitted += 1
            if observes:
                policy.on_submit(request)
            busy = port.tx_busy_until
            start = now if now > busy else busy
            tx_done = start + per_message_us + capsule_wire_us
            port.tx_busy_until = tx_done
            port.bytes_sent += COMMAND_CAPSULE_BYTES
            port.messages_sent += 1
            self._arrive_pop.add(tx_done + propagation_us, request, self._deliver)

    def disconnect(self) -> None:
        """Detach from the target.  All IO must have drained first."""
        if self.inflight or self.queued:
            raise RuntimeError(
                f"cannot disconnect {self.tenant_id!r}: "
                f"{self.inflight} inflight, {self.queued} queued"
            )
        self.target.pipeline(self.ssd_name).unregister_tenant(self.tenant_id)
        if self in self.initiator.sessions:
            self.initiator.sessions.remove(self)

    def deliver_completion(self, request: FabricRequest) -> None:
        """Called (via the network) when the response capsule lands."""
        request.t_client_complete = self.sim.now
        self.inflight -= 1
        self.completed += 1
        if self._policy_observes_complete:
            self.policy.on_complete(request)
        on_complete = request._on_complete
        if on_complete is not None:
            on_complete(request)
        # A closed-loop resubmission inside ``on_complete`` takes the
        # fast path in :meth:`submit`, so the queue is normally empty
        # here and the issue loop has nothing to do.
        if self._pending_count:
            self._try_issue()
        if self.recycle_requests:
            release_request(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenantSession({self.tenant_id} -> {self.target.name}/{self.ssd_name}, "
            f"inflight={self.inflight}, queued={self.queued})"
        )
