"""Client-side NVMe-oF initiator.

A :class:`TenantSession` is the paper's notion of a tenant: one RDMA
qpair plus one NVMe qpair bound to a single remote SSD.  Applications
(the fio-like workers, the KV store's blobstore) submit IOs against a
session; the session applies its client policy (credits, PARDA window,
plain queue depth) and puts command capsules on the wire.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional, Tuple

from repro.fabric.network import Network
from repro.fabric.policies import ClientPolicy, UnlimitedClientPolicy
from repro.fabric.request import COMMAND_CAPSULE_BYTES, FabricRequest
from repro.sim.engine import Simulator
from repro.ssd.commands import IoOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.target import NvmeOfTarget

CompletionCallback = Callable[[FabricRequest], None]


class NvmeOfInitiator:
    """One client host: a network port plus its tenant sessions."""

    def __init__(self, sim: Simulator, network: Network, name: str):
        self.sim = sim
        self.network = network
        self.name = name
        self.port = network.port(name)
        self.sessions: list["TenantSession"] = []

    def connect(
        self,
        tenant_id: str,
        target: "NvmeOfTarget",
        ssd_name: str,
        policy: Optional[ClientPolicy] = None,
        queue_depth: int = 256,
        weight: float = 1.0,
        namespace=None,
    ) -> "TenantSession":
        """Attach to ``ssd_name`` on ``target`` as tenant ``tenant_id``.

        With ``namespace`` set, the session's LBAs are
        namespace-relative and bounds-checked at the target.
        """
        session = TenantSession(
            initiator=self,
            tenant_id=tenant_id,
            target=target,
            ssd_name=ssd_name,
            policy=policy or UnlimitedClientPolicy(),
            queue_depth=queue_depth,
        )
        session.namespace = namespace
        target.accept_connection(session, weight)
        self.sessions.append(session)
        return session


class TenantSession:
    """One tenant's qpair to one remote SSD."""

    def __init__(
        self,
        initiator: NvmeOfInitiator,
        tenant_id: str,
        target: "NvmeOfTarget",
        ssd_name: str,
        policy: ClientPolicy,
        queue_depth: int,
    ):
        if queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        self.initiator = initiator
        self.sim = initiator.sim
        self.tenant_id = tenant_id
        self.target = target
        self.ssd_name = ssd_name
        self.policy = policy
        self.queue_depth = queue_depth
        #: Optional NVMe namespace; installed by connect() before the
        #: target registers the tenant.
        self.namespace = None
        self.inflight = 0
        self.submitted = 0
        self.completed = 0
        # Pending IOs grouped by priority: when the policy gates
        # submission, tagged latency-sensitive IOs (higher priority)
        # go on the wire before queued bulk traffic -- the client-side
        # half of the paper's priority tagging.
        self._pending_by_priority: Dict[int, Deque[Tuple[FabricRequest, Optional[CompletionCallback]]]] = {}
        self._pending_count = 0
        policy.bind(self)

    @property
    def client_port(self):
        return self.initiator.port

    @property
    def queued(self) -> int:
        """IOs accepted from the application but not yet on the wire."""
        return self._pending_count

    def submit(
        self,
        op: IoOp,
        lba: int,
        npages: int,
        priority: int = 0,
        on_complete: Optional[CompletionCallback] = None,
        context=None,
    ) -> FabricRequest:
        """Queue one IO; it goes on the wire when the policy allows."""
        request = FabricRequest(
            tenant_id=self.tenant_id,
            op=op,
            lba=lba,
            npages=npages,
            priority=priority,
            context=context,
        )
        request.t_client_submit = self.sim.now
        queue = self._pending_by_priority.get(priority)
        if queue is None:
            queue = deque()
            self._pending_by_priority[priority] = queue
        queue.append((request, on_complete))
        self._pending_count += 1
        self._try_issue()
        return request

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------
    def _pop_pending(self) -> Tuple[FabricRequest, Optional[CompletionCallback]]:
        for priority in sorted(self._pending_by_priority, reverse=True):
            queue = self._pending_by_priority[priority]
            if queue:
                self._pending_count -= 1
                item = queue.popleft()
                if not queue:
                    del self._pending_by_priority[priority]
                return item
        raise IndexError("no pending IO")

    def _try_issue(self) -> None:
        while (
            self._pending_count
            and self.inflight < self.queue_depth
            and self.policy.allow()
        ):
            request, on_complete = self._pop_pending()
            request.t_wire_submit = self.sim.now
            self.inflight += 1
            self.submitted += 1
            self.policy.on_submit(request)
            self.initiator.network.send(
                self.client_port,
                COMMAND_CAPSULE_BYTES,
                self.target.receive_command,
                request,
                self,
                on_complete,
            )

    def disconnect(self) -> None:
        """Detach from the target.  All IO must have drained first."""
        if self.inflight or self.queued:
            raise RuntimeError(
                f"cannot disconnect {self.tenant_id!r}: "
                f"{self.inflight} inflight, {self.queued} queued"
            )
        self.target.pipeline(self.ssd_name).unregister_tenant(self.tenant_id)
        if self in self.initiator.sessions:
            self.initiator.sessions.remove(self)

    def deliver_completion(
        self, request: FabricRequest, on_complete: Optional[CompletionCallback]
    ) -> None:
        """Called (via the network) when the response capsule lands."""
        request.t_client_complete = self.sim.now
        self.inflight -= 1
        self.completed += 1
        self.policy.on_complete(request)
        if on_complete is not None:
            on_complete(request)
        self._try_issue()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenantSession({self.tenant_id} -> {self.target.name}/{self.ssd_name}, "
            f"inflight={self.inflight}, queued={self.queued})"
        )
