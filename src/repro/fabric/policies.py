"""Client-side flow-control policies.

A :class:`ClientPolicy` gates when a tenant session may put another IO
on the wire.  Three of the paper's mechanisms live here:

* :class:`CreditClientPolicy` -- Gimbal's end-to-end credit protocol
  (Section 3.6, Algorithm 3): submit while the target-granted credit
  exceeds the in-flight count; credits arrive piggybacked on
  completions.
* :class:`PardaClientPolicy` -- PARDA's latency-driven window control
  (the comparison scheme): a FAST-TCP-style window update from the
  observed average end-to-end IO latency.
* :class:`WindowClientPolicy` / :class:`UnlimitedClientPolicy` -- the
  fixed queue-depth and uncontrolled cases.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.metrics.ewma import Ewma
from repro.fabric.request import FabricRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.initiator import TenantSession


class ClientPolicy(abc.ABC):
    """Per-tenant-session admission gate at the initiator."""

    def __init__(self) -> None:
        self.session: Optional["TenantSession"] = None

    def bind(self, session: "TenantSession") -> None:
        if self.session is not None:
            raise RuntimeError("policy already bound to a session")
        self.session = session

    @abc.abstractmethod
    def allow(self) -> bool:
        """May the session issue one more IO right now?"""

    def on_submit(self, request: FabricRequest) -> None:
        """Observe an IO going onto the wire."""

    def on_complete(self, request: FabricRequest) -> None:
        """Observe a completion (credit grants, latency samples)."""


class UnlimitedClientPolicy(ClientPolicy):
    """No client-side limit beyond the session queue depth."""

    def allow(self) -> bool:
        return True


class WindowClientPolicy(ClientPolicy):
    """A fixed window of outstanding IOs."""

    def __init__(self, window: int):
        super().__init__()
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def allow(self) -> bool:
        return self.session.inflight < self.window


class CreditClientPolicy(ClientPolicy):
    """Gimbal's credit-based flow control (Algorithm 3).

    ``credit_total`` is the amount of IO the target can serve for this
    tenant without hurting QoS; the target refreshes it on every
    completion through the response capsule's reservation field.
    """

    def __init__(self, initial_credit: int = 8):
        super().__init__()
        if initial_credit <= 0:
            raise ValueError("initial credit must be positive")
        self.credit_total = initial_credit

    def allow(self) -> bool:
        return self.credit_total > self.session.inflight

    def on_complete(self, request: FabricRequest) -> None:
        if request.credit_grant > 0:
            self.credit_total = request.credit_grant


class PardaClientPolicy(ClientPolicy):
    """PARDA: adjust a window from observed average IO latency.

    FAST-TCP-shaped update, evaluated once per epoch:

        w <- min(2w, (1 - gamma) * w + gamma * (L / L_avg * w + alpha))

    where ``L`` is the latency threshold (the operating point the
    storage should sit at) and ``L_avg`` the EWMA of observed
    end-to-end latencies.  The window grows while latency sits below
    the threshold and shrinks multiplicatively once it exceeds it.
    """

    def __init__(
        self,
        latency_threshold_us: float = 1200.0,
        gamma: float = 0.5,
        alpha: float = 2.0,
        epoch_us: float = 5000.0,
        initial_window: float = 8.0,
        max_window: float = 512.0,
    ):
        super().__init__()
        if latency_threshold_us <= 0 or not 0 < gamma <= 1 or epoch_us <= 0:
            raise ValueError("invalid PARDA parameters")
        self.latency_threshold_us = latency_threshold_us
        self.gamma = gamma
        self.alpha = alpha
        self.epoch_us = epoch_us
        self.window = initial_window
        self.max_window = max_window
        self._latency = Ewma(alpha=0.25)
        self._next_update_at = 0.0

    def allow(self) -> bool:
        return self.session.inflight < max(1, int(self.window))

    def on_complete(self, request: FabricRequest) -> None:
        self._latency.update(request.e2e_latency_us)
        now = self.session.sim.now
        if now >= self._next_update_at:
            self._next_update_at = now + self.epoch_us
            self._update_window()

    def _update_window(self) -> None:
        if not self._latency.initialized:
            return
        ratio = self.latency_threshold_us / max(self._latency.value, 1.0)
        proposed = (1 - self.gamma) * self.window + self.gamma * (ratio * self.window + self.alpha)
        self.window = min(2 * self.window, proposed, self.max_window)
        self.window = max(self.window, 1.0)
