"""The NVMe-oF target: one storage node (SmartNIC JBOF or server JBOF).

A target owns a set of SSDs, a set of processor cores and one pipeline
per SSD; pipelines are pinned round-robin to cores (on the Stingray one
A72 core fully drives one PCIe Gen3 SSD, so the default is one core per
SSD, the paper's shared-nothing deployment).  The scheduling policy is
supplied as a factory so that every pipeline gets its own instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.fabric.network import Network
from repro.fabric.pipeline import SsdPipeline
from repro.fabric.request import FabricRequest
from repro.fabric.smartnic import SMARTNIC_CPU, CpuCostModel, NicCore
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.baselines.base import StorageScheduler
    from repro.fabric.initiator import TenantSession

SchedulerFactory = Callable[[], "StorageScheduler"]


class NvmeOfTarget:
    """One disaggregated storage node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        devices: Dict[str, object],
        scheduler_factory: SchedulerFactory,
        num_cores: Optional[int] = None,
        cpu_model: CpuCostModel = SMARTNIC_CPU,
        added_io_cost_us: float = 0.0,
    ):
        if not devices:
            raise ValueError("a target needs at least one device")
        self.sim = sim
        self.network = network
        self.name = name
        self.port = network.port(name)
        core_count = num_cores if num_cores is not None else len(devices)
        if core_count <= 0:
            raise ValueError("core count must be positive")
        self.cores: List[NicCore] = [
            NicCore(sim, f"{name}/core{i}") for i in range(core_count)
        ]
        self.pipelines: Dict[str, SsdPipeline] = {}
        for index, (ssd_name, device) in enumerate(devices.items()):
            self.pipelines[ssd_name] = SsdPipeline(
                sim=sim,
                name=f"{name}/{ssd_name}",
                device=device,
                core=self.cores[index % core_count],
                scheduler=scheduler_factory(),
                cpu_model=cpu_model,
                network=network,
                port=self.port,
                added_io_cost_us=added_io_cost_us,
            )

    @property
    def ssd_names(self) -> List[str]:
        return list(self.pipelines)

    def pipeline(self, ssd_name: str) -> SsdPipeline:
        try:
            return self.pipelines[ssd_name]
        except KeyError:
            raise KeyError(f"no SSD {ssd_name!r} on target {self.name}") from None

    def accept_connection(self, session: "TenantSession", weight: float = 1.0) -> None:
        """Register a tenant session (called by the initiator)."""
        self.pipeline(session.ssd_name).register_tenant(
            session.tenant_id,
            session.client_port,
            weight,
            namespace=getattr(session, "namespace", None),
        )

    def receive_command(
        self, request: FabricRequest, session: "TenantSession", on_complete=None
    ) -> None:
        """Entry point for command capsules delivered by the network.

        The application callback rides on the request itself
        (``request._on_complete``), so the reply route is the session's
        bound ``deliver_completion`` -- no per-IO closure.  The
        ``on_complete`` parameter remains for callers that drive this
        entry point directly.
        """
        if on_complete is not None:
            request._on_complete = on_complete
        pipeline = self.pipeline(session.ssd_name)
        pipeline.handle_arrival(request, session.deliver_completion)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NvmeOfTarget({self.name}, ssds={self.ssd_names})"
