"""Shard-boundary seam for the fabric layer.

When a rack simulation is sharded (:mod:`repro.sim.shard`), the
coordinator shard owns every client-side object -- initiators,
:class:`~repro.fabric.initiator.TenantSession`\\ s, policies, KV state
-- while each JBOF shard owns its targets, pipelines and devices.  The
direct method calls that cross that line in the unsharded topology are
replaced here by typed cross-shard messages:

``submit``
    A command capsule going client -> target.  Emitted by
    :class:`BoundarySubmitQueue` (which stands in for the session's
    arrival population) at the capsule's computed delivery time; the
    original request parks on the coordinator keyed by ``request_id``
    and a replica is rebuilt target-side.
``complete``
    The response capsule coming back.  Emitted by the pipeline's
    ``_reply_boundary`` hook at response-delivery time, carrying the
    target-side timestamps, credit grant, and virtual view; the
    coordinator restores them onto the parked request and runs the
    normal :meth:`TenantSession.deliver_completion`.
``connect`` / ``disconnect``
    Tenant arrival/departure control events.  A ``connect`` registers a
    :class:`GhostSession` on the target shard (giving the pipeline a
    shard-local *shadow* client port for RDMA write-data pulls);
    ``disconnect`` unregisters the tenant once its IO has drained.

Every message's delivery latency includes at least the per-message
floor plus a nonzero capsule serialization term plus propagation, so
it is *strictly* greater than the conservative lookahead (per-message
floor + propagation) that the window protocol is derived from --
:meth:`ShardKernel.emit` asserts this on every send.

Two deliberate, documented model deviations from the unsharded
topology (both invisible to the scheduling logic under test):

* ``connect``/``disconnect`` take one control-message latency instead
  of being instantaneous method calls.
* The RDMA pull of write data books a per-(client, JBOF) shadow port
  on the target shard instead of the client's real (coordinator-side)
  port, so a client writing through several JBOFs no longer serializes
  those pulls on one port.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fabric.network import Network
from repro.fabric.request import COMMAND_CAPSULE_BYTES, FabricRequest
from repro.sim.shard import ShardKernel, ShardMessage, ShardProtocolError

MSG_SUBMIT = "submit"
MSG_COMPLETE = "complete"
MSG_CONNECT = "connect"
MSG_DISCONNECT = "disconnect"

#: The coordinator always occupies shard slot 0.
COORDINATOR_SHARD = 0


def fabric_lookahead_us(network: Network) -> float:
    """Conservative lookahead: the minimum cross-shard fabric latency.

    Every fabric hop pays the per-message NIC ingress floor and the
    wire propagation delay; serialization time (bytes / bandwidth) is
    strictly positive on top, so this bound is strict for every real
    message.
    """
    return network.per_message_us + network.propagation_us


def _never_deliver(request: FabricRequest) -> None:  # pragma: no cover
    raise ShardProtocolError(
        f"local reply fired for boundary request {request!r}; "
        "the pipeline's _reply_boundary hook should have intercepted it"
    )


class CoordinatorFabric:
    """Coordinator-shard endpoint: session adoption + completion routing."""

    def __init__(self, sim, network: Network):
        self.sim = sim
        self.network = network
        self.kernel: ShardKernel = None  # bound once the executor exists
        self.sessions: Dict[str, object] = {}
        # Control events ride a command-capsule-sized message.
        self._ctrl_latency_us = (
            network.per_message_us
            + COMMAND_CAPSULE_BYTES / network.bandwidth
            + network.propagation_us
        )

    def bind_kernel(self, kernel: ShardKernel) -> None:
        self.kernel = kernel

    def target_stub(
        self, name: str, shard_id: int, ssd_names: List[str]
    ) -> "RemoteTargetStub":
        return RemoteTargetStub(self, name, shard_id, list(ssd_names))

    # -- session lifecycle ---------------------------------------------
    def adopt_session(self, session, stub: "RemoteTargetStub") -> None:
        """Reroute a freshly built session across the shard boundary.

        Called from the stub's ``accept_connection`` (i.e. still inside
        ``NvmeOfInitiator.connect``), before the session can issue: the
        arrival population is swapped for a message emitter and a
        parked-request table is attached.
        """
        if getattr(session, "namespace", None) is not None:
            raise NotImplementedError(
                "namespaces are not serialized across the shard boundary"
            )
        session._parked = {}
        session._arrive_pop = BoundarySubmitQueue(self, session, stub)
        self.sessions[session.tenant_id] = session

    def release_session(
        self, stub: "RemoteTargetStub", ssd_name: str, tenant_id: str
    ) -> None:
        session = self.sessions.pop(tenant_id)
        if session._parked:
            raise ShardProtocolError(
                f"disconnecting {tenant_id!r} with "
                f"{len(session._parked)} requests parked"
            )
        self.kernel.emit(
            stub.shard_id,
            MSG_DISCONNECT,
            self.sim.now + self._ctrl_latency_us,
            (stub.name, ssd_name, tenant_id),
        )

    # -- inbound -------------------------------------------------------
    def handle_message(self, msg: ShardMessage) -> None:
        if msg.kind != MSG_COMPLETE:
            raise ShardProtocolError(
                f"coordinator received unexpected message kind {msg.kind!r}"
            )
        (
            tenant_id,
            request_id,
            t_target_arrival,
            t_sched_enqueue,
            t_device_submit,
            t_device_complete,
            credit_grant,
            virtual_view,
        ) = msg.payload
        session = self.sessions[tenant_id]
        request = session._parked.pop(request_id)
        request.t_target_arrival = t_target_arrival
        request.t_sched_enqueue = t_sched_enqueue
        request.t_device_submit = t_device_submit
        request.t_device_complete = t_device_complete
        request.credit_grant = credit_grant
        request.virtual_view = virtual_view
        session.deliver_completion(request)


class RemoteTargetStub:
    """Coordinator-side stand-in for an :class:`NvmeOfTarget` on
    another shard.  Duck-types the surface ``NvmeOfInitiator.connect``
    and the cluster harness touch: ``name``, ``ssd_names``,
    ``pipeline()`` and ``accept_connection()``."""

    def __init__(
        self,
        coordinator: CoordinatorFabric,
        name: str,
        shard_id: int,
        ssd_names: List[str],
    ):
        if shard_id == COORDINATOR_SHARD:
            raise ValueError("a remote target cannot live on the coordinator shard")
        self.coordinator = coordinator
        self.name = name
        self.shard_id = shard_id
        self._ssd_names = ssd_names
        self._pipelines = {
            ssd_name: RemotePipelineStub(self, ssd_name) for ssd_name in ssd_names
        }

    @property
    def ssd_names(self) -> List[str]:
        return list(self._ssd_names)

    def pipeline(self, ssd_name: str) -> "RemotePipelineStub":
        try:
            return self._pipelines[ssd_name]
        except KeyError:
            raise KeyError(f"no SSD {ssd_name!r} on target {self.name}") from None

    def accept_connection(self, session, weight: float = 1.0) -> None:
        coordinator = self.coordinator
        coordinator.adopt_session(session, self)
        coordinator.kernel.emit(
            self.shard_id,
            MSG_CONNECT,
            coordinator.sim.now + coordinator._ctrl_latency_us,
            (
                self.name,
                session.ssd_name,
                session.tenant_id,
                session.initiator.name,
                weight,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteTargetStub({self.name} @ shard {self.shard_id})"


class RemotePipelineStub:
    """Stand-in for an :class:`SsdPipeline` living on another shard."""

    __slots__ = ("target", "ssd_name", "handle_arrival")

    def __init__(self, target: RemoteTargetStub, ssd_name: str):
        self.target = target
        self.ssd_name = ssd_name
        # TenantSession binds this at construction for its (replaced)
        # arrival population; it must never actually fire.
        self.handle_arrival = _never_deliver

    def unregister_tenant(self, tenant_id: str) -> None:
        self.target.coordinator.release_session(self.target, self.ssd_name, tenant_id)


class BoundarySubmitQueue:
    """Replaces a session's arrival population: parks the request on
    the coordinator and ships a ``submit`` message instead.

    ``add``'s ``when`` is the capsule delivery time the session already
    computed with its (coordinator-side) client-port booking -- the
    exact instant ``handle_arrival`` would run unsharded, and strictly
    beyond the lookahead because it includes capsule serialization.
    """

    __slots__ = ("coordinator", "session", "shard_id", "target_name", "ssd_name")

    def __init__(self, coordinator: CoordinatorFabric, session, stub: RemoteTargetStub):
        self.coordinator = coordinator
        self.session = session
        self.shard_id = stub.shard_id
        self.target_name = stub.name
        self.ssd_name = session.ssd_name

    def add(self, when_us: float, request: FabricRequest, _deliver) -> None:
        self.session._parked[request.request_id] = request
        self.coordinator.kernel.emit(
            self.shard_id,
            MSG_SUBMIT,
            when_us,
            (
                self.target_name,
                self.ssd_name,
                request.tenant_id,
                request.request_id,
                request.op,
                request.lba,
                request.npages,
                request.priority,
            ),
        )


class GhostSession:
    """Target-shard stand-in for a coordinator-side tenant session.

    Carries exactly what ``NvmeOfTarget.accept_connection`` reads.  The
    ``client_port`` is a shard-local shadow port named
    ``<initiator>@<jbof>`` so write-data RDMA pulls book real (but
    per-JBOF) port time.
    """

    __slots__ = ("tenant_id", "ssd_name", "client_port", "namespace")

    def __init__(self, tenant_id: str, ssd_name: str, client_port):
        self.tenant_id = tenant_id
        self.ssd_name = ssd_name
        self.client_port = client_port
        self.namespace = None


class JbofShardHost:
    """JBOF-shard endpoint: hosts targets, rebuilds request replicas,
    and ships completions back to the coordinator."""

    def __init__(self, sim, network: Network, targets: Dict[str, object]):
        self.sim = sim
        self.network = network
        self.targets = dict(targets)
        self.kernel: ShardKernel = None
        self.ghosts: Dict[str, GhostSession] = {}
        for target in self.targets.values():
            for pipeline in target.pipelines.values():
                pipeline._reply_boundary = self._completion_boundary

    def bind_kernel(self, kernel: ShardKernel) -> None:
        self.kernel = kernel

    # -- outbound ------------------------------------------------------
    def _completion_boundary(self, request: FabricRequest, deliver_us: float) -> None:
        """Installed as every pipeline's ``_reply_boundary``: runs where
        the unsharded pipeline would schedule the local reply, with the
        same delivery instant."""
        self.kernel.emit(
            COORDINATOR_SHARD,
            MSG_COMPLETE,
            deliver_us,
            (
                request.tenant_id,
                request.request_id,
                request.t_target_arrival,
                request.t_sched_enqueue,
                request.t_device_submit,
                request.t_device_complete,
                request.credit_grant,
                request.virtual_view,
            ),
        )

    # -- inbound -------------------------------------------------------
    def handle_message(self, msg: ShardMessage) -> None:
        kind = msg.kind
        payload = msg.payload
        if kind == MSG_SUBMIT:
            (
                target_name,
                ssd_name,
                tenant_id,
                request_id,
                op,
                lba,
                npages,
                priority,
            ) = payload
            # The explicit request_id keeps the replica off the global
            # id counter, so inline and multi-process executions draw
            # identical coordinator-side id sequences.
            request = FabricRequest(
                tenant_id=tenant_id,
                op=op,
                lba=lba,
                npages=npages,
                priority=priority,
                request_id=request_id,
            )
            self.targets[target_name].pipeline(ssd_name).handle_arrival(
                request, _never_deliver
            )
        elif kind == MSG_CONNECT:
            target_name, ssd_name, tenant_id, client_name, weight = payload
            ghost = GhostSession(
                tenant_id,
                ssd_name,
                self.network.port(f"{client_name}@{target_name}"),
            )
            self.ghosts[tenant_id] = ghost
            self.targets[target_name].accept_connection(ghost, weight)
        elif kind == MSG_DISCONNECT:
            target_name, ssd_name, tenant_id = payload
            self.targets[target_name].pipeline(ssd_name).unregister_tenant(tenant_id)
            del self.ghosts[tenant_id]
        else:
            raise ShardProtocolError(
                f"JBOF shard received unexpected message kind {kind!r}"
            )
