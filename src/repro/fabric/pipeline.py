"""Per-SSD processing pipeline on the storage node.

One pipeline binds one SSD, one SmartNIC core and one scheduling
policy -- the paper's shared-nothing design (Section 4.1).  It drives
the five-step NVMe-over-RDMA flow:

1. command capsule arrives (delivered by the network),
2. submission-path core processing; for writes, an RDMA_READ pulls the
   payload from the client before the request is eligible,
3. the scheduler admits the IO to the SSD whenever its policy allows,
4. the device completes; completion-path core processing runs; for
   reads, the payload is RDMA_WRITTEN back inside the same booking,
5. the response capsule returns with the scheduler's credit grant
   piggybacked (Section 3.6's reservation-field trick).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.fabric.network import Network, NetworkPort
from repro.fabric.request import RESPONSE_CAPSULE_BYTES, FabricRequest
from repro.fabric.smartnic import CpuCostModel, NicCore
from repro.nvme.namespace import Namespace
from repro.obs.trace import TraceType
from repro.sim.engine import Simulator
from repro.ssd.commands import DeviceCommand

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.baselines.base import StorageScheduler


@dataclass
class PipelineStats:
    """Throughput counters for one pipeline."""

    reads: int = 0
    writes: int = 0
    trims: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    by_tenant_bytes: Dict[str, int] = field(default_factory=dict)


class SsdPipeline:
    """Ingress/egress pipeline for a single SSD."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        device,
        core: NicCore,
        scheduler: "StorageScheduler",
        cpu_model: CpuCostModel,
        network: Network,
        port: NetworkPort,
        added_io_cost_us: float = 0.0,
    ):
        self.sim = sim
        self.name = name
        self.device = device
        self.core = core
        self.scheduler = scheduler
        self.cpu_model = cpu_model
        self.network = network
        self.port = port
        #: Figure 16's knob: artificial per-IO processing added on the
        #: submission path (e.g. an offloaded computation).
        self.added_io_cost_us = added_io_cost_us
        #: NULL backends skip the NVMe driver overhead share.
        self.real_device = getattr(device, "ftl", None) is not None
        self.stats = PipelineStats()
        self._reply_routes: Dict[int, Callable[[FabricRequest], None]] = {}
        self._client_ports: Dict[str, NetworkPort] = {}
        self._namespaces: Dict[str, Namespace] = {}
        # Last credit grant journalled per tenant: the CREDIT trace
        # event fires on change, not on every response.
        self._traced_credit: Dict[str, int] = {}
        scheduler.attach(self)

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------
    def register_tenant(
        self,
        tenant_id: str,
        client_port: NetworkPort,
        weight: float = 1.0,
        namespace: Optional[Namespace] = None,
    ) -> None:
        """Attach a tenant; with ``namespace`` its LBAs are
        namespace-relative and bounds-checked on submission."""
        self._client_ports[tenant_id] = client_port
        if namespace is not None:
            self._namespaces[tenant_id] = namespace
        self.scheduler.register_tenant(tenant_id, weight)

    def unregister_tenant(self, tenant_id: str) -> None:
        """Detach a tenant whose IOs have drained."""
        self.scheduler.unregister_tenant(tenant_id)
        self._client_ports.pop(tenant_id, None)
        self._namespaces.pop(tenant_id, None)

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def handle_arrival(
        self, request: FabricRequest, reply: Callable[[FabricRequest], None]
    ) -> None:
        """Step 1-2: capsule landed; run submission-path processing."""
        request.t_target_arrival = self.sim.now
        self._reply_routes[request.request_id] = reply
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.IO_SUBMIT,
                self.sim.now,
                self.name,
                tenant=request.tenant_id,
                op=request.op.name,
                bytes=request.size_bytes,
            )
        cost = (
            self.cpu_model.submit_fixed_us
            + self.scheduler.submit_overhead_us
            + self.added_io_cost_us
        )
        if self.real_device:
            cost += self.cpu_model.device_extra_us / 2.0
        done = self.core.book(cost, tag="submit")
        if request.op.is_write:
            self.sim.at(done, self._fetch_write_data, request)
        else:
            self.sim.at(done, self._scheduler_enqueue, request)

    def _fetch_write_data(self, request: FabricRequest) -> None:
        """RDMA_READ the write payload from the client's memory."""
        client_port = self._client_ports[request.tenant_id]
        self.network.send(client_port, request.size_bytes, self._write_data_arrived, request)

    def _write_data_arrived(self, request: FabricRequest) -> None:
        # Data-path handling (DMA completion, buffer management).
        done = self.core.book(self.cpu_model.per_page_us * request.npages, tag="datapath")
        self.sim.at(done, self._scheduler_enqueue, request)

    def _scheduler_enqueue(self, request: FabricRequest) -> None:
        request.t_sched_enqueue = self.sim.now
        self.scheduler.enqueue(request)

    # ------------------------------------------------------------------
    # Device boundary (called by the scheduler)
    # ------------------------------------------------------------------
    def device_submit(self, request: FabricRequest) -> None:
        """Step 3: the scheduler admits this IO to the SSD now."""
        request.t_device_submit = self.sim.now
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.IO_DISPATCH,
                self.sim.now,
                self.name,
                tenant=request.tenant_id,
                op=request.op.name,
                queued_us=self.sim.now - request.t_sched_enqueue,
            )
        namespace = self._namespaces.get(request.tenant_id)
        if namespace is not None:
            lpn = namespace.translate(request.lba, request.npages)
        else:
            lpn = request.lba
        command = DeviceCommand(request.op, lpn, request.npages, tag=request)
        self.device.submit(command, self._device_completed)

    def _device_completed(self, command: DeviceCommand) -> None:
        """Step 4: completion-path processing, then the response."""
        request: FabricRequest = command.tag
        request.t_device_complete = self.sim.now
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.IO_COMPLETE,
                self.sim.now,
                self.name,
                tenant=request.tenant_id,
                op=request.op.name,
                bytes=request.size_bytes,
                device_lat_us=request.device_latency_us,
            )
        self.scheduler.notify_completion(request)
        cost = self.cpu_model.complete_fixed_us + self.scheduler.complete_overhead_us
        if self.real_device:
            cost += self.cpu_model.device_extra_us / 2.0
        if request.op.is_read:
            cost += self.cpu_model.per_page_us * request.npages
        done = self.core.book(cost, tag="complete")
        self.sim.at(done, self._send_response, request)

    def _send_response(self, request: FabricRequest) -> None:
        """Step 5: RDMA_WRITE read data + response capsule with credits."""
        request.credit_grant = self.scheduler.credit_for(request.tenant_id)
        request.virtual_view = self.scheduler.virtual_view()
        tracer = self.sim.tracer
        if tracer is not None and request.credit_grant != self._traced_credit.get(
            request.tenant_id
        ):
            self._traced_credit[request.tenant_id] = request.credit_grant
            tracer.emit(
                TraceType.CREDIT,
                self.sim.now,
                self.name,
                tenant=request.tenant_id,
                credit=request.credit_grant,
            )
        if request.op.is_read:
            self.stats.reads += 1
            self.stats.read_bytes += request.size_bytes
            wire_bytes = request.size_bytes + RESPONSE_CAPSULE_BYTES
            payload_bytes = request.size_bytes
        elif request.op.is_trim:
            # Deallocate moves no payload: counting its nominal LBA
            # range would inflate the tenant's throughput attribution.
            self.stats.trims += 1
            wire_bytes = RESPONSE_CAPSULE_BYTES
            payload_bytes = 0
        else:
            self.stats.writes += 1
            self.stats.write_bytes += request.size_bytes
            wire_bytes = RESPONSE_CAPSULE_BYTES
            payload_bytes = request.size_bytes
        if payload_bytes:
            per_tenant = self.stats.by_tenant_bytes
            per_tenant[request.tenant_id] = (
                per_tenant.get(request.tenant_id, 0) + payload_bytes
            )
        reply = self._reply_routes.pop(request.request_id)
        self.network.send(self.port, wire_bytes, reply, request)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Expose throughput counters; cascades to the scheduler."""
        prefix = prefix or f"pipeline.{self.name}"
        registry.gauge(f"{prefix}.reads", lambda: self.stats.reads)
        registry.gauge(f"{prefix}.writes", lambda: self.stats.writes)
        registry.gauge(f"{prefix}.trims", lambda: self.stats.trims)
        registry.gauge(f"{prefix}.read_bytes", lambda: self.stats.read_bytes)
        registry.gauge(f"{prefix}.write_bytes", lambda: self.stats.write_bytes)
        registry.gauge(f"{prefix}.inflight_replies", lambda: len(self._reply_routes))
        register = getattr(self.scheduler, "register_metrics", None)
        if register is not None:
            register(registry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SsdPipeline({self.name}, scheduler={self.scheduler.name})"
