"""Per-SSD processing pipeline on the storage node.

One pipeline binds one SSD, one SmartNIC core and one scheduling
policy -- the paper's shared-nothing design (Section 4.1).  It drives
the five-step NVMe-over-RDMA flow:

1. command capsule arrives (delivered by the network),
2. submission-path core processing; for writes, an RDMA_READ pulls the
   payload from the client before the request is eligible,
3. the scheduler admits the IO to the SSD whenever its policy allows,
4. the device completes; completion-path core processing runs; for
   reads, the payload is RDMA_WRITTEN back inside the same booking,
5. the response capsule returns with the scheduler's credit grant
   piggybacked (Section 3.6's reservation-field trick).

Every handler below runs once per IO, which makes this file the hot
path of the whole simulator.  The costs each step books are functions
of construction-time inputs only, so they are precomputed into
per-pipeline constants (and a per-size-class table for reads) rather
than re-derived per capsule; schedulers that inherit the base-class
no-op hooks are detected once so the steady state skips those calls
entirely; and the per-IO ``DeviceCommand`` is drawn from the free-list
pool in :mod:`repro.ssd.commands` because the pipeline is the last
consumer of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.fabric.network import Network, NetworkPort
from repro.fabric.request import RESPONSE_CAPSULE_BYTES, FabricRequest
from repro.fabric.smartnic import CpuCostModel, NicCore
from repro.nvme.namespace import Namespace
from repro.obs.trace import TraceType
from repro.sim.engine import Simulator
from repro.ssd.commands import IoOp, acquire_command, release_command

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.baselines.base import StorageScheduler


def _overrides_base(scheduler: "StorageScheduler", method_name: str) -> bool:
    """True when ``scheduler`` overrides ``method_name`` rather than
    inheriting the :class:`StorageScheduler` no-op.

    Resolved by qualname so this module needs no runtime import of the
    baselines package (which imports the fabric package back).
    """
    method = getattr(type(scheduler), method_name, None)
    qualname = getattr(method, "__qualname__", "")
    return not qualname.startswith("StorageScheduler.")


@dataclass
class PipelineStats:
    """Throughput counters for one pipeline."""

    reads: int = 0
    writes: int = 0
    trims: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    by_tenant_bytes: Dict[str, int] = field(default_factory=dict)


class SsdPipeline:
    """Ingress/egress pipeline for a single SSD."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        device,
        core: NicCore,
        scheduler: "StorageScheduler",
        cpu_model: CpuCostModel,
        network: Network,
        port: NetworkPort,
        added_io_cost_us: float = 0.0,
    ):
        self.sim = sim
        self.name = name
        self.device = device
        self.core = core
        self.scheduler = scheduler
        self.cpu_model = cpu_model
        self.network = network
        self.port = port
        #: NULL backends skip the NVMe driver overhead share.
        self.real_device = getattr(device, "ftl", None) is not None
        self.stats = PipelineStats()
        #: Responses owed to clients (requests between arrival and the
        #: response capsule going out).
        self._inflight_replies = 0
        #: Shard-boundary seam: when set, completed requests cross back
        #: to the coordinator shard as serialized messages instead of a
        #: locally scheduled reply callback (``fn(request, deliver_us)``,
        #: installed by :mod:`repro.fabric.boundary`).
        self._reply_boundary = None
        self._client_ports: Dict[str, NetworkPort] = {}
        self._namespaces: Dict[str, Namespace] = {}
        # Last credit grant journalled per tenant: the CREDIT trace
        # event fires on change, not on every response.
        self._traced_credit: Dict[str, int] = {}
        # Schedulers that keep the base-class no-op hooks pay nothing
        # for them: the flags below are resolved once per pipeline.
        self._sched_notifies = _overrides_base(scheduler, "notify_completion")
        self._sched_grants_credit = _overrides_base(scheduler, "credit_for")
        self._sched_has_view = _overrides_base(scheduler, "virtual_view")
        #: Pass-through schedulers (vanilla FIFO) admit every request
        #: the moment it is enqueued, so the enqueue timestamp, the
        #: scheduler hop and the device submission collapse into one
        #: handler (:meth:`_direct_device_submit`).
        self._sched_passthrough = getattr(scheduler, "passthrough_enqueue", False)
        # Core-booking accounting is inlined at the two per-IO booking
        # sites; the per-tag [total_us, events] records are fetched
        # lazily so an idle pipeline adds no keys to the core's table.
        self._submit_record = None
        self._complete_record = None
        # Network serialisation scalars for the inlined response send
        # (all fixed after construction; the association order of the
        # additions matches Network.send so timings stay bit-identical).
        self._per_message_us = network.per_message_us
        self._propagation_us = network.propagation_us
        self._bandwidth = network.bandwidth
        #: Figure 16's knob: artificial per-IO processing added on the
        #: submission path (e.g. an offloaded computation).  Assigning
        #: it rebuilds the precomputed cost constants.
        self.added_io_cost_us = added_io_cost_us
        scheduler.attach(self)

    # ------------------------------------------------------------------
    # Precomputed per-IO costs
    # ------------------------------------------------------------------
    @property
    def added_io_cost_us(self) -> float:
        return self._added_io_cost_us

    @added_io_cost_us.setter
    def added_io_cost_us(self, value: float) -> None:
        self._added_io_cost_us = value
        self._rebuild_cost_tables()

    def _rebuild_cost_tables(self) -> None:
        """Fold the cost-model arithmetic into per-pipeline constants.

        Invalidation rule: every input (cost model, scheduler overheads,
        ``real_device``, ``added_io_cost_us``) is fixed at construction
        except the Figure 16 knob, whose setter re-runs this.
        """
        model = self.cpu_model
        scheduler = self.scheduler
        real = self.real_device
        self._submit_cost_us = model.submit_cost_us(
            scheduler.submit_overhead_us, self._added_io_cost_us, real
        )
        self._complete_cost_us = model.complete_cost_us(
            scheduler.complete_overhead_us, real
        )
        #: ``{npages: completion cost}``; extended lazily for uncommon
        #: sizes in the completion handler.
        self._read_complete_cost = model.read_complete_cost_table(
            scheduler.complete_overhead_us, real
        )
        self._per_page_us = model.per_page_us

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------
    def register_tenant(
        self,
        tenant_id: str,
        client_port: NetworkPort,
        weight: float = 1.0,
        namespace: Optional[Namespace] = None,
    ) -> None:
        """Attach a tenant; with ``namespace`` its LBAs are
        namespace-relative and bounds-checked on submission."""
        self._client_ports[tenant_id] = client_port
        if namespace is not None:
            self._namespaces[tenant_id] = namespace
        self.scheduler.register_tenant(tenant_id, weight)

    def unregister_tenant(self, tenant_id: str) -> None:
        """Detach a tenant whose IOs have drained."""
        self.scheduler.unregister_tenant(tenant_id)
        self._client_ports.pop(tenant_id, None)
        self._namespaces.pop(tenant_id, None)

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def handle_arrival(
        self, request: FabricRequest, reply: Callable[[FabricRequest], None]
    ) -> None:
        """Step 1-2: capsule landed; run submission-path processing."""
        sim = self.sim
        request.t_target_arrival = sim.now
        request._reply = reply
        self._inflight_replies += 1
        tracer = sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.IO_SUBMIT,
                sim.now,
                self.name,
                tenant=request.tenant_id,
                op=request.op.name,
                bytes=request.npages * 4096,
            )
        # Inlined NicCore.book(submit_cost, "submit"): the cost is a
        # per-pipeline constant >= 0, so only the horizon arithmetic
        # and the accounting remain.
        core = self.core
        cost = self._submit_cost_us
        now = sim.now
        busy = core.busy_until
        done = (now if now > busy else busy) + cost
        core.busy_until = done
        core.busy_us_total += cost
        record = self._submit_record
        if record is None:
            record = self._submit_record = core._by_tag.setdefault("submit", [0.0, 0])
        record[0] += cost
        record[1] += 1
        if request.op is IoOp.WRITE:
            sim.at_(done, self._fetch_write_data, request)
        elif self._sched_passthrough:
            sim.at_(done, self._direct_device_submit, request)
        else:
            sim.at_(done, self._scheduler_enqueue, request)

    def _fetch_write_data(self, request: FabricRequest) -> None:
        """RDMA_READ the write payload from the client's memory."""
        client_port = self._client_ports[request.tenant_id]
        self.network.send(client_port, request.size_bytes, self._write_data_arrived, request)

    def _write_data_arrived(self, request: FabricRequest) -> None:
        # Data-path handling (DMA completion, buffer management).
        done = self.core.book(self._per_page_us * request.npages, "datapath")
        if self._sched_passthrough:
            self.sim.at_(done, self._direct_device_submit, request)
        else:
            self.sim.at_(done, self._scheduler_enqueue, request)

    def _scheduler_enqueue(self, request: FabricRequest) -> None:
        request.t_sched_enqueue = self.sim.now
        self.scheduler.enqueue(request)

    def _direct_device_submit(self, request: FabricRequest) -> None:
        """Steps 2-3 fused for pass-through schedulers: the request is
        enqueued and admitted in the same instant, so the scheduler hop
        carries no information and the device submission runs here."""
        sim = self.sim
        now = sim.now
        request.t_sched_enqueue = now
        request.t_device_submit = now
        tracer = sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.IO_DISPATCH,
                now,
                self.name,
                tenant=request.tenant_id,
                op=request.op.name,
                queued_us=0.0,
            )
        if self._namespaces:
            namespace = self._namespaces.get(request.tenant_id)
            if namespace is not None:
                lpn = namespace.translate(request.lba, request.npages)
            else:
                lpn = request.lba
        else:
            lpn = request.lba
        command = acquire_command(request.op, lpn, request.npages, request)
        self.device.submit(command, self._device_completed)

    # ------------------------------------------------------------------
    # Device boundary (called by the scheduler)
    # ------------------------------------------------------------------
    def device_submit(self, request: FabricRequest) -> None:
        """Step 3: the scheduler admits this IO to the SSD now."""
        sim = self.sim
        request.t_device_submit = sim.now
        tracer = sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.IO_DISPATCH,
                sim.now,
                self.name,
                tenant=request.tenant_id,
                op=request.op.name,
                queued_us=sim.now - request.t_sched_enqueue,
            )
        namespace = self._namespaces.get(request.tenant_id)
        if namespace is not None:
            lpn = namespace.translate(request.lba, request.npages)
        else:
            lpn = request.lba
        command = acquire_command(request.op, lpn, request.npages, request)
        self.device.submit(command, self._device_completed)

    def _device_completed(self, command) -> None:
        """Step 4: completion-path processing, then the response."""
        request: FabricRequest = command.tag
        release_command(command)
        sim = self.sim
        request.t_device_complete = sim.now
        tracer = sim.tracer
        if tracer is not None:
            tracer.emit(
                TraceType.IO_COMPLETE,
                sim.now,
                self.name,
                tenant=request.tenant_id,
                op=request.op.name,
                bytes=request.npages * 4096,
                device_lat_us=request.device_latency_us,
            )
        if self._sched_notifies:
            self.scheduler.notify_completion(request)
        if request.op is IoOp.READ:
            table = self._read_complete_cost
            npages = request.npages
            cost = table.get(npages)
            if cost is None:
                cost = table[npages] = (
                    self._complete_cost_us + self._per_page_us * npages
                )
        else:
            cost = self._complete_cost_us
        # Inlined NicCore.book(cost, "complete"), as on the ingress side.
        core = self.core
        now = sim.now
        busy = core.busy_until
        done = (now if now > busy else busy) + cost
        core.busy_until = done
        core.busy_us_total += cost
        record = self._complete_record
        if record is None:
            record = self._complete_record = core._by_tag.setdefault(
                "complete", [0.0, 0]
            )
        record[0] += cost
        record[1] += 1
        sim.at_(done, self._send_response, request)

    def _send_response(self, request: FabricRequest) -> None:
        """Step 5: RDMA_WRITE read data + response capsule with credits."""
        if self._sched_grants_credit:
            request.credit_grant = self.scheduler.credit_for(request.tenant_id)
            tracer = self.sim.tracer
            if tracer is not None and request.credit_grant != self._traced_credit.get(
                request.tenant_id
            ):
                self._traced_credit[request.tenant_id] = request.credit_grant
                tracer.emit(
                    TraceType.CREDIT,
                    self.sim.now,
                    self.name,
                    tenant=request.tenant_id,
                    credit=request.credit_grant,
                )
        if self._sched_has_view:
            request.virtual_view = self.scheduler.virtual_view()
        op = request.op
        stats = self.stats
        if op is IoOp.READ:
            size_bytes = request.npages * 4096
            stats.reads += 1
            stats.read_bytes += size_bytes
            wire_bytes = size_bytes + RESPONSE_CAPSULE_BYTES
            payload_bytes = size_bytes
        elif op is IoOp.TRIM:
            # Deallocate moves no payload: counting its nominal LBA
            # range would inflate the tenant's throughput attribution.
            stats.trims += 1
            wire_bytes = RESPONSE_CAPSULE_BYTES
            payload_bytes = 0
        else:
            size_bytes = request.npages * 4096
            stats.writes += 1
            stats.write_bytes += size_bytes
            wire_bytes = RESPONSE_CAPSULE_BYTES
            payload_bytes = size_bytes
        if payload_bytes:
            per_tenant = stats.by_tenant_bytes
            tenant_id = request.tenant_id
            per_tenant[tenant_id] = per_tenant.get(tenant_id, 0) + payload_bytes
        reply = request._reply
        request._reply = None
        self._inflight_replies -= 1
        # Inlined Network.send(self.port, wire_bytes, reply, request):
        # term-for-term the same arithmetic (start + per_message +
        # bytes/bandwidth, then + propagation), so response timings are
        # bit-identical to the generic path.
        port = self.port
        now = self.sim.now
        busy = port.tx_busy_until
        start = now if now > busy else busy
        tx_done = start + self._per_message_us + wire_bytes / self._bandwidth
        port.tx_busy_until = tx_done
        port.bytes_sent += wire_bytes
        port.messages_sent += 1
        boundary = self._reply_boundary
        if boundary is None:
            self.sim.at_(tx_done + self._propagation_us, reply, request)
        else:
            boundary(request, tx_done + self._propagation_us)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Expose throughput counters; cascades to the scheduler."""
        prefix = prefix or f"pipeline.{self.name}"
        registry.gauge(f"{prefix}.reads", lambda: self.stats.reads)
        registry.gauge(f"{prefix}.writes", lambda: self.stats.writes)
        registry.gauge(f"{prefix}.trims", lambda: self.stats.trims)
        registry.gauge(f"{prefix}.read_bytes", lambda: self.stats.read_bytes)
        registry.gauge(f"{prefix}.write_bytes", lambda: self.stats.write_bytes)
        registry.gauge(f"{prefix}.inflight_replies", lambda: self._inflight_replies)
        register = getattr(self.scheduler, "register_metrics", None)
        if register is not None:
            register(registry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SsdPipeline({self.name}, scheduler={self.scheduler.name})"
