"""SmartNIC (and server) CPU model.

Section 2.4's central constraint is that SmartNIC cores are wimpy: the
target can spend only ~1 us of core time on a 4 KiB IO before the
storage bandwidth suffers.  A :class:`NicCore` is therefore an explicit
FCFS resource -- every processing step books core time, which both adds
latency and caps per-core IOPS.

The cost model is calibrated against the paper's anchors:

* vanilla SPDK on one SmartNIC core drives ~937 KIOPS against a NULL
  device (Table 1b) -> fixed submit+complete ~1.07 us;
* ~3 ARM cores saturate four SSDs of 4 KiB random reads (Figure 3)
  -> an extra ~1 us of real-device driver work per IO;
* 128/256 KiB IOs see ~20% higher latency on the SmartNIC than on the
  x86 server (Figure 2) -> a per-page data-path cost.

Core-time consumption is also accounted per *component tag* so that
Table 1's cycle comparison can be regenerated.  Following the paper's
convention, reported "cycles" use 125 cycles == 1 us.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.engine import Simulator

#: The paper's Table 1 time unit: 125 cycles per microsecond.
CYCLES_PER_US = 125.0


@dataclass(frozen=True)
class CpuCostModel:
    """Per-IO core-time budget of the NVMe-oF target host."""

    name: str
    #: Transport + NVMe-oF framework work on the submission path.
    submit_fixed_us: float
    #: Transport + completion-path framework work.
    complete_fixed_us: float
    #: Data-path handling per 4 KiB page moved (DMA setup, memcpy share).
    per_page_us: float
    #: Extra driver work for a *real* NVMe device (doorbells, CQ reaping);
    #: zero against a NULL backend.
    device_extra_us: float

    @property
    def fixed_total_us(self) -> float:
        return self.submit_fixed_us + self.complete_fixed_us

    def io_cost_us(self, npages: int, real_device: bool) -> float:
        """Total core time one IO of ``npages`` consumes on this host."""
        cost = self.fixed_total_us + self.per_page_us * npages
        if real_device:
            cost += self.device_extra_us
        return cost

    # -- precomputed pipeline costs -----------------------------------
    # The pipeline's per-IO booking costs depend only on construction-
    # time inputs (scheduler overheads, the Figure 16 knob, whether the
    # backend is a real NVMe device), so they are folded into constants
    # once instead of re-summed on every capsule.  The sums are kept in
    # the exact order the inline expressions used, so the floats are
    # bit-identical.

    def submit_cost_us(
        self,
        scheduler_overhead_us: float = 0.0,
        added_io_cost_us: float = 0.0,
        real_device: bool = False,
    ) -> float:
        """Submission-path booking for one IO (fixed part)."""
        cost = self.submit_fixed_us + scheduler_overhead_us + added_io_cost_us
        if real_device:
            cost += self.device_extra_us / 2.0
        return cost

    def complete_cost_us(
        self, scheduler_overhead_us: float = 0.0, real_device: bool = False
    ) -> float:
        """Completion-path booking for one IO, excluding the per-page
        data movement a read adds."""
        cost = self.complete_fixed_us + scheduler_overhead_us
        if real_device:
            cost += self.device_extra_us / 2.0
        return cost

    def read_complete_cost_table(
        self,
        scheduler_overhead_us: float = 0.0,
        real_device: bool = False,
        size_classes: tuple = (1, 2, 4, 8, 16, 32, 64),
    ) -> Dict[int, float]:
        """``{npages: completion cost}`` for the common IO size classes.

        The pipeline extends the table lazily for sizes outside
        ``size_classes``; entries are always ``complete_cost_us() +
        per_page_us * npages`` so the table can be rebuilt from scratch
        whenever a construction-time input changes.
        """
        base = self.complete_cost_us(scheduler_overhead_us, real_device)
        return {n: base + self.per_page_us * n for n in size_classes}


#: Broadcom Stingray PS1100R ARM A72 core.
SMARTNIC_CPU = CpuCostModel(
    name="smartnic",
    submit_fixed_us=0.62,
    complete_fixed_us=0.45,
    per_page_us=0.10,
    device_extra_us=1.0,
)

#: Xeon-class server core (the paper's conventional JBOF head).
SERVER_CPU = CpuCostModel(
    name="server",
    submit_fixed_us=0.25,
    complete_fixed_us=0.18,
    per_page_us=0.015,
    device_extra_us=0.35,
)


class NicCore:
    """One processor core as an analytic FCFS resource.

    ``book(cost, tag)`` reserves ``cost`` microseconds of core time
    starting no earlier than now and returns the completion timestamp.
    ``tag`` attributes the time for the overhead accounting in Table 1.
    """

    __slots__ = ("sim", "name", "busy_until", "busy_us_total", "_by_tag")

    def __init__(self, sim: Simulator, name: str = "core0"):
        self.sim = sim
        self.name = name
        self.busy_until = 0.0
        self.busy_us_total = 0.0
        # tag -> [total_us, events]: one ledger dict instead of two, so
        # the hot booking path does a single lookup and mutates the
        # record in place.
        self._by_tag: Dict[str, list] = {}

    def book(self, cost_us: float, tag: str = "other") -> float:
        """Reserve core time; returns when the work finishes."""
        if cost_us < 0:
            raise ValueError("cost must be non-negative")
        now = self.sim.now
        busy = self.busy_until
        done = (now if now > busy else busy) + cost_us
        self.busy_until = done
        self.busy_us_total += cost_us
        record = self._by_tag.get(tag)
        if record is None:
            self._by_tag[tag] = [cost_us, 1]
        else:
            record[0] += cost_us
            record[1] += 1
        return done

    @property
    def us_by_tag(self) -> Dict[str, float]:
        """Core time attributed per component tag (fresh snapshot)."""
        return {tag: record[0] for tag, record in self._by_tag.items()}

    @property
    def events_by_tag(self) -> Dict[str, int]:
        """Booking counts per component tag (fresh snapshot)."""
        return {tag: record[1] for tag, record in self._by_tag.items()}

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` this core spent busy."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_us_total / elapsed_us)

    def mean_cycles_by_tag(self) -> Dict[str, float]:
        """Average cycles per event per tag (paper Table 1a's unit)."""
        return {
            tag: (record[0] / record[1]) * CYCLES_PER_US
            for tag, record in self._by_tag.items()
            if record[1]
        }

    def register_metrics(self, registry, prefix: str = None) -> None:
        """Expose core occupancy as pull gauges."""
        prefix = prefix or f"core.{self.name}"
        registry.gauge(f"{prefix}.busy_us", lambda: self.busy_us_total)
        registry.gauge(
            f"{prefix}.bookings",
            lambda: sum(record[1] for record in self._by_tag.values()),
        )
        for tag in ("submit", "datapath", "complete"):
            registry.gauge(
                f"{prefix}.busy_us.{tag}",
                lambda tag=tag: self._by_tag[tag][0] if tag in self._by_tag else 0.0,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NicCore({self.name}, busy={self.busy_us_total:.0f}us)"
