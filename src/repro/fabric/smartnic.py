"""SmartNIC (and server) CPU model.

Section 2.4's central constraint is that SmartNIC cores are wimpy: the
target can spend only ~1 us of core time on a 4 KiB IO before the
storage bandwidth suffers.  A :class:`NicCore` is therefore an explicit
FCFS resource -- every processing step books core time, which both adds
latency and caps per-core IOPS.

The cost model is calibrated against the paper's anchors:

* vanilla SPDK on one SmartNIC core drives ~937 KIOPS against a NULL
  device (Table 1b) -> fixed submit+complete ~1.07 us;
* ~3 ARM cores saturate four SSDs of 4 KiB random reads (Figure 3)
  -> an extra ~1 us of real-device driver work per IO;
* 128/256 KiB IOs see ~20% higher latency on the SmartNIC than on the
  x86 server (Figure 2) -> a per-page data-path cost.

Core-time consumption is also accounted per *component tag* so that
Table 1's cycle comparison can be regenerated.  Following the paper's
convention, reported "cycles" use 125 cycles == 1 us.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.engine import Simulator

#: The paper's Table 1 time unit: 125 cycles per microsecond.
CYCLES_PER_US = 125.0


@dataclass(frozen=True)
class CpuCostModel:
    """Per-IO core-time budget of the NVMe-oF target host."""

    name: str
    #: Transport + NVMe-oF framework work on the submission path.
    submit_fixed_us: float
    #: Transport + completion-path framework work.
    complete_fixed_us: float
    #: Data-path handling per 4 KiB page moved (DMA setup, memcpy share).
    per_page_us: float
    #: Extra driver work for a *real* NVMe device (doorbells, CQ reaping);
    #: zero against a NULL backend.
    device_extra_us: float

    @property
    def fixed_total_us(self) -> float:
        return self.submit_fixed_us + self.complete_fixed_us

    def io_cost_us(self, npages: int, real_device: bool) -> float:
        """Total core time one IO of ``npages`` consumes on this host."""
        cost = self.fixed_total_us + self.per_page_us * npages
        if real_device:
            cost += self.device_extra_us
        return cost


#: Broadcom Stingray PS1100R ARM A72 core.
SMARTNIC_CPU = CpuCostModel(
    name="smartnic",
    submit_fixed_us=0.62,
    complete_fixed_us=0.45,
    per_page_us=0.10,
    device_extra_us=1.0,
)

#: Xeon-class server core (the paper's conventional JBOF head).
SERVER_CPU = CpuCostModel(
    name="server",
    submit_fixed_us=0.25,
    complete_fixed_us=0.18,
    per_page_us=0.015,
    device_extra_us=0.35,
)


class NicCore:
    """One processor core as an analytic FCFS resource.

    ``book(cost, tag)`` reserves ``cost`` microseconds of core time
    starting no earlier than now and returns the completion timestamp.
    ``tag`` attributes the time for the overhead accounting in Table 1.
    """

    def __init__(self, sim: Simulator, name: str = "core0"):
        self.sim = sim
        self.name = name
        self.busy_until = 0.0
        self.busy_us_total = 0.0
        self.us_by_tag: Dict[str, float] = {}
        self.events_by_tag: Dict[str, int] = {}

    def book(self, cost_us: float, tag: str = "other") -> float:
        """Reserve core time; returns when the work finishes."""
        if cost_us < 0:
            raise ValueError("cost must be non-negative")
        start = max(self.sim.now, self.busy_until)
        done = start + cost_us
        self.busy_until = done
        self.busy_us_total += cost_us
        self.us_by_tag[tag] = self.us_by_tag.get(tag, 0.0) + cost_us
        self.events_by_tag[tag] = self.events_by_tag.get(tag, 0) + 1
        return done

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` this core spent busy."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_us_total / elapsed_us)

    def mean_cycles_by_tag(self) -> Dict[str, float]:
        """Average cycles per event per tag (paper Table 1a's unit)."""
        return {
            tag: (self.us_by_tag[tag] / count) * CYCLES_PER_US
            for tag, count in self.events_by_tag.items()
            if count
        }

    def register_metrics(self, registry, prefix: str = None) -> None:
        """Expose core occupancy as pull gauges."""
        prefix = prefix or f"core.{self.name}"
        registry.gauge(f"{prefix}.busy_us", lambda: self.busy_us_total)
        registry.gauge(
            f"{prefix}.bookings", lambda: sum(self.events_by_tag.values())
        )
        for tag in ("submit", "datapath", "complete"):
            registry.gauge(
                f"{prefix}.busy_us.{tag}",
                lambda tag=tag: self.us_by_tag.get(tag, 0.0),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NicCore({self.name}, busy={self.busy_us_total:.0f}us)"
