"""The end-to-end request object that flows initiator -> target -> device.

One :class:`FabricRequest` carries everything the layers need: the IO
itself, the tenant identity and priority tag (paper Section 3.5's
per-tenant priority queues), every timestamp the latency figures
report, and -- on the way back -- the credit grant that Gimbal
piggybacks in the NVMe-oF completion's first reservation field
(Section 3.6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.ssd.commands import IoOp

#: NVMe-oF capsule sizes (bytes) -- submission capsule with SGL, and the
#: 16-byte completion entry plus transport framing.
COMMAND_CAPSULE_BYTES = 96
RESPONSE_CAPSULE_BYTES = 32

_request_ids = itertools.count(1)


@dataclass(slots=True)
class FabricRequest:
    """One NVMe-oF IO as seen end to end.

    Slotted: one of these is allocated per IO, so the dict-free layout
    keeps the per-request footprint and attribute access cost down on
    the hot path.
    """

    tenant_id: str
    op: IoOp
    lba: int
    npages: int
    priority: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Opaque cookie for the submitting application (the KV store keeps
    #: its own context here).
    context: Any = None

    # -- timestamps (microseconds, stamped as the request progresses) --
    t_client_submit: Optional[float] = None
    #: When the command capsule actually went on the wire (after any
    #: client-policy gating); fio's completion latency counts from here.
    t_wire_submit: Optional[float] = None
    t_target_arrival: Optional[float] = None
    t_sched_enqueue: Optional[float] = None
    t_device_submit: Optional[float] = None
    t_device_complete: Optional[float] = None
    t_client_complete: Optional[float] = None

    #: Credit grant piggybacked on the completion (Gimbal's flow
    #: control); 0 means "no credit information".
    credit_grant: int = 0
    #: Snapshot of the per-SSD virtual view at completion time
    #: (read/write headroom in MB/s), if the scheduler exposes one.
    virtual_view: Optional[dict] = None

    # -- transport plumbing (owned by the fabric layers, not callers) --
    #: Reply route installed by the pipeline while the IO is in flight.
    _reply: Any = field(default=None, repr=False, compare=False)
    #: Application completion callback carried alongside the request so
    #: the session's wire path needs no per-IO closure.
    _on_complete: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.lba < 0 or self.npages <= 0:
            raise ValueError(f"invalid IO range: lba={self.lba} npages={self.npages}")

    @property
    def size_bytes(self) -> int:
        return self.npages * 4096

    @property
    def device_latency_us(self) -> float:
        """Time spent inside the SSD (what Gimbal's monitors observe)."""
        if self.t_device_submit is None or self.t_device_complete is None:
            raise ValueError("request has not completed device execution")
        return self.t_device_complete - self.t_device_submit

    @property
    def target_latency_us(self) -> float:
        """Arrival at the target to device completion (queueing + service)."""
        if self.t_target_arrival is None or self.t_device_complete is None:
            raise ValueError("request has not completed at the target")
        return self.t_device_complete - self.t_target_arrival

    @property
    def e2e_latency_us(self) -> float:
        """Client-observed latency including local queueing (slat + clat)."""
        if self.t_client_submit is None or self.t_client_complete is None:
            raise ValueError("request has not completed end to end")
        return self.t_client_complete - self.t_client_submit

    @property
    def inflight_latency_us(self) -> float:
        """Wire-issue to completion -- fio's ``clat``.

        Under a closed loop the *end-to-end* average is pinned by
        Little's law (fixed concurrency / achieved throughput), so
        flow-control benefits show up here: schemes that gate IOs at
        the client keep this low while uncontrolled schemes queue the
        same IOs inside the target and the device instead.
        """
        if self.t_wire_submit is None or self.t_client_complete is None:
            raise ValueError("request has not completed")
        return self.t_client_complete - self.t_wire_submit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FabricRequest(#{self.request_id} {self.tenant_id} {self.op.value} "
            f"lba={self.lba} npages={self.npages} prio={self.priority})"
        )


# ----------------------------------------------------------------------
# Request free-list pool
# ----------------------------------------------------------------------
# Steady-state IO allocates no objects: a session that opts in (sets
# ``recycle_requests``) acquires requests here and releases them after
# the application's completion callback has run.  The contract is
# ownership-based, not refcount-based: a releaser asserts that no
# caller retains the request, which is why recycling is opt-in per
# session -- the KV store and the trace replayer hand requests to
# application code that may hold them past completion.
_free_requests: List[FabricRequest] = []
_FREE_REQUEST_CAP = 4096


def acquire_request(
    tenant_id: str,
    op: IoOp,
    lba: int,
    npages: int,
    priority: int = 0,
    context: Any = None,
) -> FabricRequest:
    """Pooled constructor: field-for-field equivalent to
    ``FabricRequest(...)`` but reusing a released instance when one is
    available.  A fresh ``request_id`` is drawn either way."""
    free = _free_requests
    if not free:
        return FabricRequest(
            tenant_id=tenant_id,
            op=op,
            lba=lba,
            npages=npages,
            priority=priority,
            context=context,
        )
    if lba < 0 or npages <= 0:
        raise ValueError(f"invalid IO range: lba={lba} npages={npages}")
    request = free.pop()
    request.tenant_id = tenant_id
    request.op = op
    request.lba = lba
    request.npages = npages
    request.priority = priority
    request.request_id = next(_request_ids)
    request.context = context
    request.t_client_submit = None
    request.t_wire_submit = None
    request.t_target_arrival = None
    request.t_sched_enqueue = None
    request.t_device_submit = None
    request.t_device_complete = None
    request.t_client_complete = None
    request.credit_grant = 0
    request.virtual_view = None
    return request


def release_request(request: FabricRequest) -> None:
    """Return a request whose completion has fully propagated.

    Clears the reference-bearing fields immediately (so a pooled
    request never pins an application context graph) and parks the
    object for the next :func:`acquire_request`.
    """
    request.context = None
    request.virtual_view = None
    request._reply = None
    request._on_complete = None
    if len(_free_requests) < _FREE_REQUEST_CAP:
        _free_requests.append(request)


def request_pool_size() -> int:
    """Current free-list depth (test/diagnostic hook)."""
    return len(_free_requests)
