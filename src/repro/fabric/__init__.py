"""NVMe-oF fabric: network, SmartNIC cores, target and initiator.

This package models the five-step NVMe-over-RDMA request flow of paper
Section 2.1 -- command capsule SEND, RDMA_READ of write data, device
execution, RDMA_WRITE of read data, response capsule SEND -- on top of
a 100 Gbps link model and a SmartNIC whose wimpy cores are explicit
FCFS resources with per-IO processing budgets (Sections 2.2/2.4).

The per-SSD pipeline accepts any *storage scheduler* implementing the
small interface in :mod:`repro.baselines.base`; Gimbal and the three
comparison schemes all plug in there.  Client-side flow control
(Gimbal's credit protocol, Parda's latency-driven window) plugs into
the initiator via :mod:`repro.fabric.policies`.
"""

from repro.fabric.initiator import NvmeOfInitiator, TenantSession
from repro.fabric.network import Network, NetworkPort
from repro.fabric.pipeline import SsdPipeline
from repro.fabric.policies import (
    ClientPolicy,
    CreditClientPolicy,
    PardaClientPolicy,
    UnlimitedClientPolicy,
    WindowClientPolicy,
)
from repro.fabric.request import FabricRequest
from repro.fabric.smartnic import SERVER_CPU, SMARTNIC_CPU, CpuCostModel, NicCore
from repro.fabric.target import NvmeOfTarget

__all__ = [
    "Network",
    "NetworkPort",
    "FabricRequest",
    "NicCore",
    "CpuCostModel",
    "SMARTNIC_CPU",
    "SERVER_CPU",
    "SsdPipeline",
    "NvmeOfTarget",
    "NvmeOfInitiator",
    "TenantSession",
    "ClientPolicy",
    "UnlimitedClientPolicy",
    "WindowClientPolicy",
    "CreditClientPolicy",
    "PardaClientPolicy",
]
