"""Link-level network model.

The testbed's fabric is a 100 Gbps Ethernet/RDMA network through one
switch.  The model keeps what matters for the experiments:

* **serialisation** -- a message occupies its sender's port for
  ``bytes / bandwidth``; concurrent messages from one host queue
  (FCFS, analytic ``busy_until`` booking like the SSD channels);
* **propagation + switching** -- a fixed one-way delay;
* **per-message overhead** -- NIC/driver handling independent of size.

In-network congestion between *different* senders is out of scope,
matching the paper: "Gimbal ... relies on the remote transport
protocol (e.g., RDMA) to address in-network contention".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import Simulator

#: 100 Gbps in bytes per microsecond.
DEFAULT_BANDWIDTH_BYTES_PER_US = 100e9 / 8 / 1e6


class NetworkPort:
    """One host's attachment point; owns the transmit serialisation resource."""

    def __init__(self, name: str):
        self.name = name
        self.tx_busy_until = 0.0
        self.bytes_sent = 0
        self.messages_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkPort({self.name})"


class Network:
    """The switch fabric connecting client hosts and storage nodes."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_us: float = DEFAULT_BANDWIDTH_BYTES_PER_US,
        propagation_us: float = 1.5,
        per_message_us: float = 0.05,
    ):
        if bandwidth_bytes_per_us <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_us < 0 or per_message_us < 0:
            raise ValueError("delays must be non-negative")
        self.sim = sim
        self.bandwidth = bandwidth_bytes_per_us
        self.propagation_us = propagation_us
        self.per_message_us = per_message_us
        self._ports: dict[str, NetworkPort] = {}
        # Wire deliveries are homogeneous timed events; registering
        # them as a population lets the batch backend advance them in
        # bulk.  The trampoline keeps the population's callback fixed
        # while each delivery carries its own target function.
        self._deliver_pop = sim.population(self._run_delivery, label="net.deliver")

    def port(self, name: str) -> NetworkPort:
        """Return (creating on first use) the port for host ``name``."""
        existing = self._ports.get(name)
        if existing is None:
            existing = NetworkPort(name)
            self._ports[name] = existing
        return existing

    def send(
        self,
        src: NetworkPort,
        nbytes: int,
        deliver: Callable[..., Any],
        *args: Any,
    ) -> float:
        """Transmit ``nbytes`` from ``src``; run ``deliver(*args)`` on arrival.

        Returns the delivery time.  Ordering per sender is FIFO because
        serialisation books the port's ``tx_busy_until`` horizon.
        """
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        start = max(self.sim.now, src.tx_busy_until)
        tx_done = start + self.per_message_us + nbytes / self.bandwidth
        src.tx_busy_until = tx_done
        src.bytes_sent += nbytes
        src.messages_sent += 1
        arrival = tx_done + self.propagation_us
        self._deliver_pop.add(arrival, deliver, args)
        return arrival

    def _run_delivery(self, deliver: Callable[..., Any], args: tuple) -> None:
        deliver(*args)

    def register_metrics(self, registry, prefix: str = "net") -> None:
        """Expose per-port link counters for every port created so far."""
        for name, port in self._ports.items():
            registry.gauge(
                f"{prefix}.{name}.bytes_sent", lambda port=port: port.bytes_sent
            )
            registry.gauge(
                f"{prefix}.{name}.messages_sent",
                lambda port=port: port.messages_sent,
            )
