"""Gimbal reproduction: multi-tenant storage disaggregation on SmartNIC JBOFs.

This package reproduces the system described in "Gimbal: Enabling
Multi-tenant Storage Disaggregation on SmartNIC JBOFs" (SIGCOMM 2021)
on top of a discrete-event simulation of the hardware substrate the
paper's prototype ran on: NVMe SSDs (NAND channels, FTL, garbage
collection, write buffer), SmartNIC cores, and an RDMA-shaped NVMe-oF
fabric.

The package layout mirrors the system inventory in DESIGN.md:

``repro.sim``
    Discrete-event simulation kernel (clock, event heap, RNG streams).
``repro.metrics``
    EWMA, latency histograms, windowed throughput, fairness metrics.
``repro.ssd``
    The SSD device model and device profiles.
``repro.nvme``
    NVMe command/queue abstractions on top of an SSD device.
``repro.fabric``
    Network, RDMA-shaped transport, NVMe-oF initiator/target, SmartNIC.
``repro.core``
    The Gimbal storage switch (the paper's contribution).
``repro.baselines``
    ReFlex, Parda, FlashFQ and a vanilla FIFO target.
``repro.workloads``
    fio-like synthetic workers and the YCSB generator.
``repro.kv``
    LSM-tree key-value store over a blobstore (the RocksDB case study).
``repro.harness``
    Testbed construction and the per-figure/table experiment drivers.
"""

from repro.sim.engine import Simulator
from repro.version import __version__

__all__ = ["Simulator", "__version__"]
