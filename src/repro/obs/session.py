"""One observability session: tracer + registry + kernel probe.

Experiment drivers build their own :class:`~repro.harness.testbed.Testbed`
internally, so observability cannot be threaded through ``run(...)``
signatures without touching every driver.  Instead a session installs
itself as the *current* session; any simulator stood up while it is
active gets the session's tracer and probe attached (the
:class:`~repro.sim.engine.Simulator` constructor checks
:func:`current_session`), and the Testbed constructor additionally
registers its components into the session's metrics registry.

Typical use -- exactly what ``python -m repro run <exp> --trace
out.jsonl --stats`` does::

    from repro import obs

    with obs.capture(trace_path="out.jsonl") as session:
        results = fig09_dynamic.run()
    print(session.stats_report())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.probe import KernelProbe
from repro.obs.registry import Registry
from repro.obs.trace import TraceBuffer

_current: Optional["ObsSession"] = None


def current_session() -> Optional["ObsSession"]:
    """The active session, or None when observability is off."""
    return _current


class ObsSession:
    """Bundles the three observability facets for one capture window."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        trace: bool = False,
        limit: Optional[int] = None,
    ):
        self.registry = Registry()
        self.probe = KernelProbe()
        self.probe.register_metrics(self.registry)
        self.trace_path = trace_path
        self._sink = None
        self.tracer: Optional[TraceBuffer] = None
        if trace_path is not None:
            # Stream to disk; keep memory flat on multi-second runs.
            self._sink = open(trace_path, "w", encoding="utf-8")
            self.tracer = TraceBuffer(sink=self._sink, retain=trace, limit=limit)
        elif trace:
            self.tracer = TraceBuffer(limit=limit)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_simulator(self, sim) -> None:
        """Install the tracer and kernel probe on ``sim``, and pick up
        any kernel-level metrics the backend exposes (e.g. the batch
        backend's ``kernel.batch_*`` gauges)."""
        sim.tracer = self.tracer
        sim.probe = self.probe
        register = getattr(sim, "register_metrics", None)
        if register is not None:
            register(self.registry)

    def register(self, component, prefix: Optional[str] = None) -> None:
        """Register a component's metrics, if it exposes any."""
        register = getattr(component, "register_metrics", None)
        if register is not None:
            if prefix is None:
                register(self.registry)
            else:
                register(self.registry, prefix)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def trace_events_emitted(self) -> int:
        return self.tracer.emitted if self.tracer is not None else 0

    def stats_report(self) -> str:
        parts: List[str] = [self.registry.render(title="run metrics")]
        parts.append(self.probe.summary())
        if self.tracer is not None and self.tracer.counts_by_type:
            lines = ["trace events"]
            width = max(len(key) for key in self.tracer.counts_by_type)
            for key in sorted(self.tracer.counts_by_type):
                lines.append(f"  {key.ljust(width)}  {self.tracer.counts_by_type[key]}")
            parts.append("\n".join(lines))
        return "\n".join(parts)

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObsSession(trace={self.trace_path!r}, metrics={len(self.registry)})"


@contextmanager
def capture(
    trace_path: Optional[str] = None,
    trace: bool = False,
    limit: Optional[int] = None,
) -> Iterator[ObsSession]:
    """Make a fresh session current for the duration of the block.

    Sessions nest: an inner capture shadows the outer one and restores
    it on exit, so a capturing test can run inside a capturing CLI.
    """
    global _current
    session = ObsSession(trace_path=trace_path, trace=trace, limit=limit)
    previous = _current
    _current = session
    try:
        yield session
    finally:
        _current = previous
        session.close()
