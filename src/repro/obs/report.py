"""Summarise a JSONL run journal into per-tenant / per-component tables.

Usage::

    python -m repro run fig09_dynamic --trace out.jsonl
    python -m repro.obs.report out.jsonl

The report aggregates the journal written by :class:`repro.obs.trace.
TraceBuffer`: per-tenant IO/bytes/latency, per-component event counts,
congestion-state residency, token-bucket pressure and garbage
collection work.  It only reads the journal -- rerunning it never
changes an experiment's results.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.obs.trace import TraceType, read_jsonl


class JournalSummary:
    """Aggregates computed from one journal's event stream."""

    def __init__(self, events: List[dict]):
        self.events = events
        self.counts_by_type: Dict[str, int] = {}
        self.counts_by_component: Dict[str, Dict[str, int]] = {}
        self.tenants: Dict[str, dict] = {}
        self.state_residency: Dict[str, Dict[str, float]] = {}
        self.bucket: Dict[str, int] = {"denials": 0, "refills": 0}
        self.gc = {"collections": 0, "erases": 0, "relocations": 0, "busy_us": 0.0}
        self._last_state: Dict[str, tuple] = {}
        self.t_first: Optional[float] = None
        self.t_last: Optional[float] = None
        for event in events:
            self._fold(event)
        self._close_states()

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def _tenant(self, name: str) -> dict:
        record = self.tenants.get(name)
        if record is None:
            record = {
                "submitted": 0,
                "dispatched": 0,
                "completed": 0,
                "bytes": 0,
                "latency_sum": 0.0,
                "latency_max": 0.0,
            }
            self.tenants[name] = record
        return record

    def _fold(self, event: dict) -> None:
        kind = event["ev"]
        t = event["t"]
        comp = event.get("comp", "?")
        if self.t_first is None:
            self.t_first = t
        self.t_last = t
        self.counts_by_type[kind] = self.counts_by_type.get(kind, 0) + 1
        per_comp = self.counts_by_component.setdefault(comp, {})
        per_comp[kind] = per_comp.get(kind, 0) + 1
        tenant = event.get("tenant")
        if kind == TraceType.IO_SUBMIT.value and tenant:
            self._tenant(tenant)["submitted"] += 1
        elif kind == TraceType.IO_DISPATCH.value and tenant:
            self._tenant(tenant)["dispatched"] += 1
        elif kind == TraceType.IO_COMPLETE.value and tenant:
            record = self._tenant(tenant)
            record["completed"] += 1
            record["bytes"] += event.get("bytes", 0)
            latency = event.get("device_lat_us", 0.0)
            record["latency_sum"] += latency
            if latency > record["latency_max"]:
                record["latency_max"] = latency
        elif kind == TraceType.CONGESTION.value:
            monitor = f"{comp}/{event.get('io', '?')}"
            previous = self._last_state.get(monitor)
            if previous is not None:
                state, since = previous
                residency = self.state_residency.setdefault(monitor, {})
                residency[state] = residency.get(state, 0.0) + (t - since)
            self._last_state[monitor] = (event.get("to", "?"), t)
        elif kind == TraceType.BUCKET_DENY.value:
            self.bucket["denials"] += 1
        elif kind == TraceType.BUCKET_REFILL.value:
            self.bucket["refills"] += 1
        elif kind == TraceType.GC_START.value:
            self.gc["collections"] += 1
            self.gc["erases"] += event.get("erases", 0)
            self.gc["relocations"] += event.get("relocation_programs", 0)
            self.gc["busy_us"] += event.get("busy_us", 0.0)

    def _close_states(self) -> None:
        """Charge the final state of each monitor up to the journal end."""
        if self.t_last is None:
            return
        for monitor, (state, since) in self._last_state.items():
            residency = self.state_residency.setdefault(monitor, {})
            residency[state] = residency.get(state, 0.0) + (self.t_last - since)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        from repro.harness.report import format_table

        parts: List[str] = []
        span_us = (self.t_last - self.t_first) if self.events else 0.0
        parts.append(
            f"journal: {len(self.events)} events over "
            f"{span_us / 1e6:.3f} simulated seconds"
        )
        parts.append(
            format_table(
                ["event", "count"],
                sorted(self.counts_by_type.items()),
                title="events by type",
            )
        )
        if self.tenants:
            rows = []
            for name in sorted(self.tenants):
                record = self.tenants[name]
                completed = record["completed"]
                mean_lat = record["latency_sum"] / completed if completed else 0.0
                mbps = (record["bytes"] / span_us) / (1 << 20) * 1e6 if span_us else 0.0
                rows.append(
                    (
                        name,
                        record["submitted"],
                        record["dispatched"],
                        completed,
                        record["bytes"] // 1024,
                        mbps,
                        mean_lat,
                        record["latency_max"],
                    )
                )
            parts.append(
                format_table(
                    ["tenant", "submit", "dispatch", "complete", "KiB", "MB/s",
                     "avg dev us", "max dev us"],
                    rows,
                    title="per-tenant IO",
                )
            )
        if self.state_residency:
            rows = []
            for monitor in sorted(self.state_residency):
                residency = self.state_residency[monitor]
                total = sum(residency.values()) or 1.0
                for state in sorted(residency):
                    rows.append(
                        (monitor, state, residency[state] / 1e3,
                         100.0 * residency[state] / total)
                    )
            parts.append(
                format_table(
                    ["monitor", "state", "ms", "%"],
                    rows,
                    title="congestion-state residency",
                )
            )
        if self.bucket["denials"] or self.bucket["refills"]:
            parts.append(
                format_table(
                    ["counter", "count"],
                    sorted(self.bucket.items()),
                    title="token bucket",
                )
            )
        if self.gc["collections"]:
            parts.append(
                format_table(
                    ["counter", "value"],
                    sorted(self.gc.items()),
                    title="garbage collection",
                )
            )
        components = [
            (comp, sum(counts.values()))
            for comp, counts in sorted(self.counts_by_component.items())
        ]
        parts.append(
            format_table(["component", "events"], components, title="events by component")
        )
        return "\n\n".join(parts)


def summarize_journal(path: str) -> JournalSummary:
    """Load ``path`` and aggregate it."""
    return JournalSummary(read_jsonl(path))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a simulation trace journal (JSONL)",
    )
    parser.add_argument("journal", help="path written by `python -m repro run ... --trace`")
    args = parser.parse_args(argv)
    try:
        summary = summarize_journal(args.journal)
    except OSError as exc:
        print(f"cannot read journal {args.journal!r}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # malformed JSON line
        print(f"malformed journal {args.journal!r}: {exc}", file=sys.stderr)
        return 2
    try:
        print(summary.render())
        sys.stdout.flush()
    except BrokenPipeError:
        # Reader went away (`report x.jsonl | head`); not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
