"""Named counters and gauges, registered per component.

A :class:`Registry` is the stats side of the observability layer: the
trace journal answers "what happened, in order"; the registry answers
"where does the system stand now".  Components expose a
``register_metrics(registry, prefix)`` method that installs:

* :class:`Counter` -- a monotonically increasing count the component
  increments on its hot path (kept as a plain attribute increment, so
  the cost exists whether or not anyone reads it -- use sparingly);
* :class:`Gauge` -- a *pull* metric: a zero-argument callable sampled
  only when the registry is read, so registering gauges adds nothing
  to the simulation hot path.

Names are dotted paths (``ssd.ssd0.write_amplification``); rendering
groups them by their first segment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named pull metric; ``fn`` is sampled at read time."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], object]):
        self.name = name
        self.fn = fn

    def read(self) -> object:
        return self.fn()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name})"


class Registry:
    """A namespace of counters and gauges."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Return (creating on first use) the counter called ``name``."""
        existing = self._counters.get(name)
        if existing is None:
            if name in self._gauges:
                raise ValueError(f"{name!r} is already registered as a gauge")
            existing = Counter(name)
            self._counters[name] = existing
        return existing

    def gauge(self, name: str, fn: Callable[[], object]) -> Gauge:
        """Register ``fn`` as the gauge called ``name``.

        Re-registering an existing name replaces the callable: a
        component rebuilt mid-session (e.g. a fresh testbed) simply
        takes over its names.
        """
        if name in self._counters:
            raise ValueError(f"{name!r} is already registered as a counter")
        created = Gauge(name, fn)
        self._gauges[name] = created
        return created

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(list(self._counters) + list(self._gauges))

    def snapshot(self) -> Dict[str, object]:
        """All metrics as ``{name: value}``; gauges are sampled now."""
        values: Dict[str, object] = {
            name: counter.value for name, counter in self._counters.items()
        }
        for name, gauge in self._gauges.items():
            values[name] = gauge.read()
        return values

    def render(self, title: str = "metrics") -> str:
        """A grouped, aligned plain-text dump of every metric."""
        snapshot = self.snapshot()
        groups: Dict[str, List[Tuple[str, object]]] = {}
        for name in sorted(snapshot):
            head, _, rest = name.partition(".")
            groups.setdefault(head, []).append((rest or head, snapshot[name]))
        lines = [title]
        for head in sorted(groups):
            lines.append(f"  [{head}]")
            width = max(len(key) for key, _ in groups[head])
            for key, value in groups[head]:
                lines.append(f"    {key.ljust(width)}  {_format(value)}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({len(self._counters)} counters, {len(self._gauges)} gauges)"


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)
