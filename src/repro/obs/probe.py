"""Event-kernel profiling probe.

A :class:`KernelProbe` attached to :attr:`Simulator.probe` observes
the event loop itself:

* per-callback fire counts (which component's events dominate a run);
* the heap-depth high-water mark (how much future the simulation keeps
  queued -- a leak in event cancellation shows up here first);
* wall-clock per simulated second (how expensive the model is to run,
  the number the performance acceptance gates track).

The kernel only touches the probe behind a ``probe is not None``
guard, so an unprobed simulator pays a single None check per event.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple


class KernelProbe:
    """Counters the :class:`~repro.sim.engine.Simulator` feeds when attached."""

    def __init__(self, detailed: bool = True) -> None:
        # Keyed by the callback object itself (bound methods hash and
        # compare by (instance, function) in C): the hot counting path
        # skips the __qualname__ attribute walk and aggregates to names
        # only when somebody reads :attr:`fired_by_callback`.
        self._fired_by_fn: Dict[object, int] = {}
        #: With ``detailed=False`` the probe keeps only the totals --
        #: the per-callback dict update is dropped from the hot path by
        #: swapping :meth:`count_fire` for the plain counter, which is
        #: what wall-clock rate measurements want.
        self.detailed = detailed
        if not detailed:
            self.count_fire = self._count_fire_total  # type: ignore[method-assign]
        self.fired_total = 0
        self.heap_high_water = 0
        self.runs = 0
        self.wall_seconds = 0.0
        self.sim_us = 0.0
        self._run_wall_start = 0.0
        self._run_sim_start = 0.0

    # ------------------------------------------------------------------
    # Kernel-facing hooks
    # ------------------------------------------------------------------
    def count_fire(self, fn) -> None:
        """One event callback fired."""
        self.fired_total += 1
        by_fn = self._fired_by_fn
        count = by_fn.get(fn)
        if count is None:
            by_fn[fn] = 1
        else:
            by_fn[fn] = count + 1

    def _count_fire_total(self, fn) -> None:
        """Totals-only fire counter (installed when ``detailed=False``)."""
        self.fired_total += 1

    @property
    def fired_by_callback(self) -> Dict[str, int]:
        """Fire counts aggregated by callback qualname (snapshot)."""
        aggregated: Dict[str, int] = {}
        for fn, count in self._fired_by_fn.items():
            name = getattr(fn, "__qualname__", None) or repr(fn)
            aggregated[name] = aggregated.get(name, 0) + count
        return aggregated

    def begin_run(self, sim_now_us: float) -> None:
        self._run_wall_start = time.perf_counter()
        self._run_sim_start = sim_now_us

    def end_run(self, sim_now_us: float, fired: int) -> None:
        self.runs += 1
        self.wall_seconds += time.perf_counter() - self._run_wall_start
        self.sim_us += sim_now_us - self._run_sim_start

    # ------------------------------------------------------------------
    # Derived numbers
    # ------------------------------------------------------------------
    @property
    def wall_seconds_per_sim_second(self) -> float:
        """How many wall seconds one simulated second costs."""
        if self.sim_us <= 0:
            return 0.0
        return self.wall_seconds / (self.sim_us / 1e6)

    def top_callbacks(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` most-fired event callbacks, descending."""
        ranked = sorted(self.fired_by_callback.items(), key=lambda kv: -kv[1])
        return ranked[:n]

    def register_metrics(self, registry, prefix: str = "kernel") -> None:
        registry.gauge(f"{prefix}.events_fired", lambda: self.fired_total)
        registry.gauge(f"{prefix}.heap_high_water", lambda: self.heap_high_water)
        registry.gauge(f"{prefix}.runs", lambda: self.runs)
        registry.gauge(f"{prefix}.wall_seconds", lambda: self.wall_seconds)
        registry.gauge(
            f"{prefix}.wall_s_per_sim_s", lambda: self.wall_seconds_per_sim_second
        )

    def summary(self) -> str:
        lines = [
            "kernel probe",
            f"  events fired        {self.fired_total}",
            f"  heap high-water     {self.heap_high_water}",
            f"  wall s / sim s      {self.wall_seconds_per_sim_second:.3f}",
        ]
        if self.fired_by_callback:
            lines.append("  top callbacks:")
            width = max(len(name) for name, _ in self.top_callbacks())
            for name, count in self.top_callbacks():
                lines.append(f"    {name.ljust(width)}  {count}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelProbe(fired={self.fired_total}, "
            f"heap_hw={self.heap_high_water}, wall={self.wall_seconds:.2f}s)"
        )
