"""Typed trace events and the buffer that collects them.

A trace event is a flat record: timestamp, event type, emitting
component, optional tenant, plus event-specific fields.  Components
emit through :meth:`TraceBuffer.emit`; the buffer either retains the
records in memory (bounded by ``limit``), streams them straight to a
JSONL sink, or both.  Streaming keeps memory flat on multi-second
runs that produce millions of events.

Event types are closed: :class:`TraceType` enumerates every event the
simulator knows how to emit, and ``emit`` rejects unknown types so a
typo cannot silently produce an event no report will ever aggregate.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from typing import IO, Dict, List, Optional


class TraceType(str, enum.Enum):
    """Every event type the instrumented simulator can emit."""

    #: Command capsule arrived at the target pipeline.
    IO_SUBMIT = "io_submit"
    #: Scheduler admitted the IO to the SSD.
    IO_DISPATCH = "io_dispatch"
    #: Device completion observed (carries the device latency).
    IO_COMPLETE = "io_complete"
    #: A latency monitor changed congestion state.
    CONGESTION = "congestion"
    #: A latency monitor's dynamic threshold moved.
    THRESHOLD = "threshold"
    #: The pacing pump blocked on the token bucket.
    BUCKET_DENY = "bucket_deny"
    #: A refill wakeup fired and re-ran the pump.
    BUCKET_REFILL = "bucket_refill"
    #: DFTL mapping-cache miss: translation-page reads (and dirty
    #: writebacks) charged to a channel.
    MAP_MISS = "ftl.map_miss"
    #: Garbage collection ran to make room for a host write.
    GC_START = "gc_start"
    #: The charged GC busy time drains at this timestamp.
    GC_END = "gc_end"
    #: The credit grant piggybacked on completions changed.
    CREDIT = "credit"
    #: A cached sweep finished: hit/miss/bytes/seconds-saved summary.
    CACHE = "cache"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


_VALID_TYPES = frozenset(member.value for member in TraceType)


class TraceBuffer:
    """Collects (and/or streams) trace events.

    Parameters
    ----------
    limit:
        Retain at most this many events in memory (oldest dropped).
        None keeps everything.
    sink:
        Optional text file object; events are written to it as JSON
        lines the moment they are emitted.
    retain:
        With ``retain=False`` (and a sink) nothing is kept in memory;
        only the per-type counters survive.
    """

    def __init__(
        self,
        limit: Optional[int] = None,
        sink: Optional[IO[str]] = None,
        retain: bool = True,
    ):
        if limit is not None and limit <= 0:
            raise ValueError("limit must be positive")
        self._events: deque = deque(maxlen=limit)
        self._sink = sink
        self._retain = retain
        self.emitted = 0
        self.counts_by_type: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        type: "TraceType | str",
        t: float,
        comp: str,
        tenant: Optional[str] = None,
        **fields,
    ) -> None:
        """Record one event at simulated time ``t`` from ``comp``."""
        key = type.value if isinstance(type, TraceType) else type
        if key not in _VALID_TYPES:
            raise ValueError(f"unknown trace event type {key!r}")
        record = {"t": t, "ev": key, "comp": comp}
        if tenant is not None:
            record["tenant"] = tenant
        if fields:
            record.update(fields)
        self.emitted += 1
        self.counts_by_type[key] = self.counts_by_type.get(key, 0) + 1
        if self._retain:
            self._events.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record, separators=(",", ":")) + "\n")

    # ------------------------------------------------------------------
    # Access / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[dict]:
        """Retained events, oldest first."""
        return list(self._events)

    def of_type(self, type: "TraceType | str") -> List[dict]:
        key = type.value if isinstance(type, TraceType) else type
        return [event for event in self._events if event["ev"] == key]

    def export_jsonl(self, path: str) -> int:
        """Write the retained events to ``path``; returns the count."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(json.dumps(event, separators=(",", ":")) + "\n")
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceBuffer(emitted={self.emitted}, retained={len(self._events)})"


def read_jsonl(path: str) -> List[dict]:
    """Load a journal written by :meth:`TraceBuffer.export_jsonl` or a sink."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
