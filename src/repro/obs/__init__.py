"""Structured observability for the simulator.

Every figure this repo regenerates flows through the event kernel and
the metrics layer; this package makes those internals *visible* so a
run can be audited rather than trusted:

* :mod:`repro.obs.trace` -- a :class:`TraceBuffer` of typed trace
  events (IO submit/dispatch/complete, congestion-state transitions,
  threshold moves, token-bucket refills/denials, GC start/end, credit
  grants) with JSONL export or streaming;
* :mod:`repro.obs.registry` -- a :class:`Registry` of named
  counters/gauges that components register into;
* :mod:`repro.obs.probe` -- a :class:`KernelProbe` profiling the event
  loop itself (per-callback fire counts, heap high-water mark,
  wall-clock per simulated second);
* :mod:`repro.obs.session` -- :func:`capture`, the one-call wiring
  used by the CLI's ``--trace``/``--stats`` flags;
* :mod:`repro.obs.report` -- summarises a JSONL run journal into
  per-tenant and per-component tables (``python -m repro.obs.report``).

Tracing is zero-cost when disabled: components reach their tracer via
``sim.tracer`` which defaults to None, and every emit site is guarded
by a None check, so an uninstrumented run executes no tracing code
beyond that check.
"""

from repro.obs.probe import KernelProbe
from repro.obs.registry import Counter, Gauge, Registry
from repro.obs.session import ObsSession, capture, current_session
from repro.obs.trace import TraceBuffer, TraceType


def bump(name: str, amount=1) -> None:
    """Increment a counter on the active session's registry, if any.

    The harness layers (sweep runner, result cache, suite
    orchestrator) run outside any simulator, so they cannot reach a
    tracer through ``sim.tracer``; this is their equivalent one-liner
    for counters.  A no-op when no session is capturing, so callers
    never need their own ``current_session() is not None`` guard.
    """
    session = current_session()
    if session is not None and amount:
        session.registry.counter(name).inc(amount)


__all__ = [
    "Counter",
    "Gauge",
    "KernelProbe",
    "ObsSession",
    "Registry",
    "TraceBuffer",
    "TraceType",
    "bump",
    "capture",
    "current_session",
]
