"""Tenant population generation for rack-scale cluster simulation.

A single JBOF serves a handful of hand-picked tenants; a *rack* serves
hundreds to thousands drawn from a skewed population.  This module
models that population the way datacenter traces describe it
(heavy-hitter + long-tail):

* a small set of :class:`TenantClass` templates -- workload mix,
  record-count range, concurrency range -- ordered from the heavy
  bulk classes down to the light tail;
* a Zipfian draw (``skew`` = theta) over those classes, so a few
  classes dominate the tenant mix while every class keeps a trickle;
* within a class, record count and concurrency are drawn Zipfian over
  the class's option lists (largest option = rank 0), so "whales"
  inside a class are also rare;
* a churn process: tenants arrive with exponential inter-arrival gaps
  over an arrival window and stay for an exponentially distributed
  lifetime, so tenant join / run / depart (and the file create/delete
  + allocator reclamation that departure exercises) happen throughout
  the run rather than only at the edges.

Everything is derived from one ``random.Random``, so a population is
byte-reproducible from its seed and parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.workloads.ycsb import YCSB_WORKLOADS, ZipfianGenerator


@dataclass(frozen=True)
class TenantClass:
    """One template in the tenant population.

    ``record_counts`` and ``concurrencies`` are option lists ordered
    largest-first; the generator draws Zipfian ranks over them so the
    big options are the rare ones.
    """

    name: str
    workload: str
    record_counts: Tuple[int, ...]
    concurrencies: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.workload not in YCSB_WORKLOADS:
            raise ValueError(f"unknown YCSB workload {self.workload!r}")
        if not self.record_counts or not self.concurrencies:
            raise ValueError("record_counts and concurrencies must be non-empty")
        if min(self.record_counts) <= 0 or min(self.concurrencies) <= 0:
            raise ValueError("record counts and concurrencies must be positive")


#: Default rack mix: update-heavy and read-heavy bulk classes first
#: (the heavy hitters under Zipfian class selection), scan/RMW and
#: insert-heavy classes in the tail.  Record counts are scaled to the
#: ~256 MiB simulated SSDs the same way the fig10/fig13 clusters are.
DEFAULT_TENANT_CLASSES: Tuple[TenantClass, ...] = (
    TenantClass("update-heavy", "A", (512, 256, 128), (4, 2, 1)),
    TenantClass("read-mostly", "B", (512, 256, 128), (4, 2, 1)),
    TenantClass("read-only", "C", (256, 128, 64), (8, 4, 2)),
    TenantClass("latest-read", "D", (256, 128), (2, 1)),
    TenantClass("read-modify-write", "F", (256, 128, 64), (2, 1)),
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant session: who it is, when it runs, what it does."""

    name: str
    tenant_class: str
    workload: str
    record_count: int
    concurrency: int
    arrival_us: float
    lifetime_us: float

    def __post_init__(self) -> None:
        if self.record_count <= 0 or self.concurrency <= 0:
            raise ValueError("record count and concurrency must be positive")
        if self.arrival_us < 0 or self.lifetime_us <= 0:
            raise ValueError("arrival must be >= 0 and lifetime positive")

    @property
    def departure_us(self) -> float:
        return self.arrival_us + self.lifetime_us


class TenantPopulation:
    """Deterministic generator of a churning tenant population.

    ``churn`` in [0, 1] sets how much of ``horizon_us`` the arrival
    process is spread over: 0 puts every arrival at t=0 (a static
    population that still departs at end of life), 1 spreads arrivals
    across the whole horizon.  Lifetimes are exponential with mean
    ``mean_lifetime_us`` (floored at ``min_lifetime_us`` so every
    tenant completes a measurable amount of work).
    """

    def __init__(
        self,
        tenants: int,
        horizon_us: float,
        classes: Sequence[TenantClass] = DEFAULT_TENANT_CLASSES,
        skew: float = 0.9,
        churn: float = 0.5,
        mean_lifetime_us: Optional[float] = None,
        min_lifetime_us: float = 20_000.0,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ):
        if tenants <= 0:
            raise ValueError("tenant count must be positive")
        if horizon_us <= 0:
            raise ValueError("horizon must be positive")
        if not 0.0 <= churn <= 1.0:
            raise ValueError("churn must be in [0, 1]")
        if not classes:
            raise ValueError("at least one tenant class required")
        self.tenants = tenants
        self.horizon_us = horizon_us
        self.classes = tuple(classes)
        self.skew = skew
        self.churn = churn
        self.mean_lifetime_us = (
            mean_lifetime_us if mean_lifetime_us is not None else horizon_us / 4.0
        )
        self.min_lifetime_us = min_lifetime_us
        self.rng = rng or random.Random(seed)
        self._class_zipf = (
            ZipfianGenerator(len(self.classes), theta=skew, rng=self.rng, scrambled=False)
            if len(self.classes) > 1
            else None
        )

    def _pick(self, options: Sequence, zipf: Optional[ZipfianGenerator]) -> object:
        if len(options) == 1:
            return options[0]
        assert zipf is not None
        return options[zipf.next_rank() % len(options)]

    def generate(self) -> List[TenantSpec]:
        """The full population, sorted by arrival time."""
        rng = self.rng
        option_zipf = ZipfianGenerator(64, theta=self.skew, rng=rng, scrambled=False)
        arrival_window = self.churn * self.horizon_us
        rate = self.tenants / arrival_window if arrival_window > 0 else 0.0
        clock = 0.0
        specs: List[TenantSpec] = []
        for index in range(self.tenants):
            if rate > 0.0 and index > 0:
                clock = min(arrival_window, clock + rng.expovariate(rate))
            cls = (
                self.classes[self._class_zipf.next_rank() % len(self.classes)]
                if self._class_zipf is not None
                else self.classes[0]
            )
            record_count = self._pick(cls.record_counts, option_zipf)
            concurrency = self._pick(cls.concurrencies, option_zipf)
            lifetime = max(
                self.min_lifetime_us, rng.expovariate(1.0 / self.mean_lifetime_us)
            )
            # Every tenant departs within the horizon, so the rack
            # drains and reclamation can be checked end to end.
            lifetime = min(lifetime, max(self.min_lifetime_us, self.horizon_us - clock))
            specs.append(
                TenantSpec(
                    name=f"t{index:04d}-{cls.name}",
                    tenant_class=cls.name,
                    workload=cls.workload,
                    record_count=record_count,
                    concurrency=concurrency,
                    arrival_us=clock,
                    lifetime_us=lifetime,
                )
            )
        specs.sort(key=lambda spec: (spec.arrival_us, spec.name))
        return specs


def peak_concurrent(specs: Sequence[TenantSpec]) -> int:
    """Maximum number of tenants alive at once (rack occupancy peak)."""
    events = []
    for spec in specs:
        events.append((spec.arrival_us, 1))
        events.append((spec.departure_us, -1))
    events.sort()
    alive = peak = 0
    for _, delta in events:
        alive += delta
        peak = max(peak, alive)
    return peak
