"""IO trace recording (for debugging and offline analysis).

The harness can attach a :class:`TraceRecorder` to sessions to capture
per-IO records; traces serialise to CSV so experiments can be inspected
outside the simulator (or replayed through custom tooling).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Iterable, List

from repro.fabric.request import FabricRequest


@dataclass(frozen=True)
class TraceRecord:
    """One completed IO."""

    t_submit_us: float
    t_complete_us: float
    tenant_id: str
    op: str
    lba: int
    npages: int
    e2e_latency_us: float
    device_latency_us: float

    _FIELDS = (
        "t_submit_us",
        "t_complete_us",
        "tenant_id",
        "op",
        "lba",
        "npages",
        "e2e_latency_us",
        "device_latency_us",
    )


class TraceRecorder:
    """Accumulates completed-IO records."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def observe(self, request: FabricRequest) -> None:
        """Record one completed request (wire as a completion callback)."""
        self.records.append(
            TraceRecord(
                t_submit_us=request.t_client_submit,
                t_complete_us=request.t_client_complete,
                tenant_id=request.tenant_id,
                op=request.op.value,
                lba=request.lba,
                npages=request.npages,
                e2e_latency_us=request.e2e_latency_us,
                device_latency_us=request.device_latency_us,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def save_csv(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(TraceRecord._FIELDS)
            for record in self.records:
                writer.writerow([getattr(record, field) for field in TraceRecord._FIELDS])

    @staticmethod
    def load_csv(path: str) -> "TraceRecorder":
        recorder = TraceRecorder()
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                recorder.records.append(
                    TraceRecord(
                        t_submit_us=float(row["t_submit_us"]),
                        t_complete_us=float(row["t_complete_us"]),
                        tenant_id=row["tenant_id"],
                        op=row["op"],
                        lba=int(row["lba"]),
                        npages=int(row["npages"]),
                        e2e_latency_us=float(row["e2e_latency_us"]),
                        device_latency_us=float(row["device_latency_us"]),
                    )
                )
        return recorder

    def tenants(self) -> Iterable[str]:
        return sorted({record.tenant_id for record in self.records})
