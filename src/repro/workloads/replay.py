"""Trace replay: drive a recorded IO trace back through a session.

Together with :class:`~repro.workloads.trace.TraceRecorder` this gives
the classic record/replay loop: capture a workload once (from a live
run or an external trace converted to the CSV schema), then replay it
against any scheme/condition for apples-to-apples comparisons.

Two modes:

* ``timed`` -- submissions follow the recorded inter-arrival times
  (scaled by ``speed``): an open-loop replay that preserves burstiness;
* ``closed`` -- ignore recorded timing and keep ``queue_depth`` IOs
  outstanding: a closed-loop replay of just the access pattern.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fabric.initiator import TenantSession
from repro.fabric.request import FabricRequest
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.throughput import ThroughputMonitor
from repro.ssd.commands import IoOp
from repro.workloads.trace import TraceRecord

_OPS = {op.value: op for op in IoOp}


class ReplayWorker:
    """Replays a list of :class:`TraceRecord` through one session."""

    def __init__(
        self,
        session: TenantSession,
        records: List[TraceRecord],
        mode: str = "timed",
        speed: float = 1.0,
        queue_depth: int = 32,
        lba_offset: int = 0,
    ):
        if mode not in ("timed", "closed"):
            raise ValueError("mode must be 'timed' or 'closed'")
        if speed <= 0:
            raise ValueError("speed must be positive")
        if not records:
            raise ValueError("empty trace")
        self.session = session
        self.sim = session.sim
        self.records = records
        self.mode = mode
        self.speed = speed
        self.queue_depth = queue_depth
        self.lba_offset = lba_offset
        self.latency = LatencyHistogram()
        self.throughput = ThroughputMonitor()
        self.submitted = 0
        self.completed = 0
        self._cursor = 0
        self._done_callback: Optional[callable] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, on_done: Optional[callable] = None) -> None:
        """Begin the replay; ``on_done()`` fires when the trace drains."""
        self._done_callback = on_done
        self.throughput.start(self.sim.now)
        if self.mode == "timed":
            base = self.records[0].t_submit_us
            start = self.sim.now
            for record in self.records:
                delay = (record.t_submit_us - base) / self.speed
                self.sim.at(start + delay, self._submit, record)
        else:
            for _ in range(min(self.queue_depth, len(self.records))):
                self._submit_next()

    def _submit_next(self) -> None:
        if self._cursor >= len(self.records):
            return
        record = self.records[self._cursor]
        self._cursor += 1
        self._submit(record)

    def _submit(self, record: TraceRecord) -> None:
        self.submitted += 1
        self.session.submit(
            _OPS[record.op],
            record.lba + self.lba_offset,
            record.npages,
            on_complete=self._on_complete,
        )

    def _on_complete(self, request: FabricRequest) -> None:
        self.completed += 1
        self.latency.record(request.inflight_latency_us)
        self.throughput.record(self.sim.now, request.size_bytes)
        if self.mode == "closed":
            self._submit_next()
        if self.completed == len(self.records) and self._done_callback is not None:
            self._done_callback()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "bandwidth_mbps": self.throughput.bandwidth_mbps(self.sim.now),
            "latency": self.latency.summary(),
        }
