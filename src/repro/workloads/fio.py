"""fio-style closed-loop IO workers.

A :class:`FioWorker` keeps ``queue_depth`` IOs outstanding against one
tenant session, draws addresses from a random or sequential pattern,
mixes reads and writes by ratio, and (optionally) caps its own rate --
the configuration surface the paper's microbenchmarks use
(Section 5.1: QD32 for 4 KiB, QD4 for 128 KiB; random reads,
sequential 128 KiB writes, random 4 KiB writes).

Measurement follows fio's ramp-time convention: call
:meth:`begin_measurement` once the system is warm; earlier completions
are not counted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.fabric.initiator import TenantSession
from repro.fabric.request import FabricRequest
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.throughput import ThroughputMonitor
from repro.sim.units import MBPS
from repro.ssd.commands import IoOp
from repro.workloads.patterns import AddressRegion, RandomPattern, SequentialPattern


@dataclass(frozen=True, slots=True)
class FioSpec:
    """One worker's workload definition."""

    name: str
    io_pages: int
    queue_depth: int
    read_ratio: float = 1.0
    pattern: str = "random"
    rate_limit_mbps: Optional[float] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.io_pages <= 0 or self.queue_depth <= 0:
            raise ValueError("io size and queue depth must be positive")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read ratio must be in [0, 1]")
        if self.pattern not in ("random", "sequential"):
            raise ValueError("pattern must be 'random' or 'sequential'")
        if self.rate_limit_mbps is not None and self.rate_limit_mbps <= 0:
            raise ValueError("rate limit must be positive")

    @property
    def io_bytes(self) -> int:
        return self.io_pages * 4096


class FioWorker:
    """Closed-loop generator bound to one tenant session."""

    def __init__(
        self,
        session: TenantSession,
        spec: FioSpec,
        region: AddressRegion,
        rng: random.Random,
    ):
        self.session = session
        self.sim = session.sim
        self.spec = spec
        self.region = region
        self.rng = rng
        # A fio worker only ever touches a request inside its own
        # completion callback, so its session can recycle request
        # objects through the free-list pool.
        session.recycle_requests = True
        if spec.pattern == "random":
            self._pattern = RandomPattern(region, spec.io_pages, rng)
        else:
            self._pattern = SequentialPattern(region, spec.io_pages)
        self.running = False
        self.throughput = ThroughputMonitor()
        #: Completion latency from wire issue (fio's ``clat``): what the
        #: paper's latency figures report.
        self.read_latency = LatencyHistogram()
        self.write_latency = LatencyHistogram()
        #: Including client-side queueing (fio's slat + clat).
        self.read_e2e_latency = LatencyHistogram()
        self.write_e2e_latency = LatencyHistogram()
        #: Device-internal service latency only.
        self.device_read_latency = LatencyHistogram()
        self.device_write_latency = LatencyHistogram()
        self._next_allowed_us = 0.0
        self._rate = (
            spec.rate_limit_mbps * MBPS if spec.rate_limit_mbps is not None else None
        )
        # Per-IO constants, resolved once.  A pure read or pure write
        # mix needs no RNG draw per IO; an unpaced worker needs no rate
        # check, so its issue path IS ``_issue_now`` (the instance
        # attribute shadows the method).
        self._io_bytes = spec.io_pages * 4096
        if spec.read_ratio >= 1.0:
            self._fixed_op: Optional[IoOp] = IoOp.READ
        elif spec.read_ratio <= 0.0:
            self._fixed_op = IoOp.WRITE
        else:
            self._fixed_op = None
        if self._rate is None:
            self._issue = self._issue_now  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin issuing IOs (idempotent)."""
        if self.running:
            return
        self.running = True
        self.throughput.start(self.sim.now)
        for _ in range(self.spec.queue_depth):
            self._issue()

    def stop(self) -> None:
        """Stop issuing; in-flight IOs drain naturally."""
        self.running = False

    def begin_measurement(self) -> None:
        """Discard warm-up samples and start the measured window now."""
        self.throughput.start(self.sim.now)
        self.read_latency = LatencyHistogram()
        self.write_latency = LatencyHistogram()
        self.read_e2e_latency = LatencyHistogram()
        self.write_e2e_latency = LatencyHistogram()
        self.device_read_latency = LatencyHistogram()
        self.device_write_latency = LatencyHistogram()

    # ------------------------------------------------------------------
    # IO issue path
    # ------------------------------------------------------------------
    def _next_op(self) -> IoOp:
        if self.spec.read_ratio >= 1.0:
            return IoOp.READ
        if self.spec.read_ratio <= 0.0:
            return IoOp.WRITE
        return IoOp.READ if self.rng.random() < self.spec.read_ratio else IoOp.WRITE

    def _issue(self) -> None:
        if not self.running:
            return
        if self._rate is not None:
            now = self.sim.now
            if self._next_allowed_us > now:
                # Reserve this IO's pacing slot, then fire unconditionally
                # at that time (re-checking would double-defer).
                self.sim.at(self._next_allowed_us, self._issue_now)
                self._next_allowed_us += self.spec.io_bytes / self._rate
                return
            self._next_allowed_us = max(self._next_allowed_us, now) + (
                self.spec.io_bytes / self._rate
            )
        self._issue_now()

    def _issue_now(self) -> None:
        if not self.running:
            return
        op = self._fixed_op
        if op is None:
            op = self._next_op()
        self.session.submit(
            op,
            self._pattern.next_lba(),
            self.spec.io_pages,
            self.spec.priority,
            self._on_complete,
        )

    def _on_complete(self, request: FabricRequest) -> None:
        # Latencies computed from the timestamps directly: the request
        # is complete here, so the validating properties' None checks
        # (and repeated attribute loads) are pure overhead.
        complete = request.t_client_complete
        inflight_us = complete - request.t_wire_submit
        e2e_us = complete - request.t_client_submit
        device_us = request.t_device_complete - request.t_device_submit
        self.throughput.record(complete, self._io_bytes)
        if request.op is IoOp.READ:
            self.read_latency.record(inflight_us)
            self.read_e2e_latency.record(e2e_us)
            self.device_read_latency.record(device_us)
        else:
            self.write_latency.record(inflight_us)
            self.write_e2e_latency.record(e2e_us)
            self.device_write_latency.record(device_us)
        self._issue()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self) -> Dict[str, object]:
        """Snapshot of the measured window."""
        now = self.sim.now
        return {
            "name": self.spec.name,
            "bandwidth_mbps": self.throughput.bandwidth_mbps(now),
            "iops": self.throughput.iops(now),
            "read_latency": self.read_latency.summary(),
            "write_latency": self.write_latency.summary(),
            "device_read_latency": self.device_read_latency.summary(),
            "device_write_latency": self.device_write_latency.summary(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FioWorker({self.spec.name}, qd={self.spec.queue_depth})"
