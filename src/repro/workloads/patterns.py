"""Address-pattern generators for synthetic workloads."""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class AddressRegion:
    """A contiguous LBA range (4 KiB pages) a worker operates on."""

    start: int
    npages: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.npages <= 0:
            raise ValueError("invalid address region")

    @property
    def end(self) -> int:
        return self.start + self.npages


class RandomPattern:
    """Uniform random, IO-size-aligned addressing within a region.

    Alignment to the IO size mirrors fio's default ``blockalign`` and
    keeps large IOs from straddling region boundaries.
    """

    def __init__(self, region: AddressRegion, io_pages: int, rng: random.Random):
        if io_pages <= 0 or io_pages > region.npages:
            raise ValueError("IO size must fit in the region")
        self.region = region
        self.io_pages = io_pages
        self.rng = rng
        self._slots = region.npages // io_pages
        # ``randrange(n)`` with a single positive int argument reduces
        # to ``_randbelow(n)`` after argument checks; binding the
        # latter (whichever variant the Random instance selected)
        # skips those checks per IO while consuming the identical
        # generator sequence.  Fall back to randrange for Random-likes
        # without the internal hook.
        self._randbelow = getattr(rng, "_randbelow", rng.randrange)

    def next_lba(self) -> int:
        return self.region.start + self._randbelow(self._slots) * self.io_pages


class SequentialPattern:
    """Strided sequential addressing with wrap-around."""

    def __init__(self, region: AddressRegion, io_pages: int, start_offset: int = 0):
        if io_pages <= 0 or io_pages > region.npages:
            raise ValueError("IO size must fit in the region")
        self.region = region
        self.io_pages = io_pages
        self._slots = region.npages // io_pages
        self._cursor = (start_offset // io_pages) % self._slots

    def next_lba(self) -> int:
        lba = self.region.start + self._cursor * self.io_pages
        self._cursor = (self._cursor + 1) % self._slots
        return lba
