"""YCSB core workloads over a Zipfian request distribution.

The RocksDB evaluation (Section 5.6) uses YCSB with 10M 1 KiB
key-value pairs and Zipfian skew 0.99.  This module provides:

* :class:`ZipfianGenerator` -- the standard YCSB rejection-free
  Zipfian sampler (Gray et al.), plus the scrambled variant that
  decorrelates popularity from key order;
* the five core workload mixes the paper runs (A, B, C, D, F);
* :class:`YcsbWorkloadGenerator` -- an operation stream
  (op, key) suitable for driving the KV store.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Dict, Tuple

#: FNV-style constant used by YCSB's key scrambling.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv_hash64(value: int) -> int:
    """YCSB's 64-bit FNV-1a over the integer's bytes."""
    result = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        result ^= octet
        result = (result * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return result


class ZipfianGenerator:
    """Samples {0, ..., n-1} with P(i) proportional to 1/(i+1)^theta.

    Implements the Gray et al. constant-time method YCSB uses, so the
    hottest item is rank 0.  ``scrambled=True`` applies YCSB's FNV
    scrambling so popular items spread over the key space.
    """

    def __init__(
        self,
        item_count: int,
        theta: float = 0.99,
        rng: random.Random | None = None,
        scrambled: bool = True,
    ):
        if item_count <= 0:
            raise ValueError("item count must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.item_count = item_count
        self.theta = theta
        self.rng = rng or random.Random(0)
        self.scrambled = scrambled
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / item_count) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_rank(self) -> int:
        """The Zipf rank (0 = hottest)."""
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def next(self) -> int:
        rank = self.next_rank()
        if not self.scrambled:
            return rank
        return fnv_hash64(rank) % self.item_count


class YcsbOp(enum.Enum):
    """Operation types across the core workloads."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    READ_MODIFY_WRITE = "rmw"
    SCAN = "scan"


@dataclass(frozen=True)
class YcsbSpec:
    """One core workload's operation mix."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    rmw: float = 0.0
    scan: float = 0.0
    #: Scan lengths are uniform in [1, scan_max_length] (YCSB default).
    scan_max_length: int = 100
    #: "latest" biases reads toward recently inserted keys (workload D).
    distribution: str = "zipfian"

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw + self.scan
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation mix of {self.name} must sum to 1 (got {total})")
        if self.distribution not in ("zipfian", "latest"):
            raise ValueError("distribution must be 'zipfian' or 'latest'")
        if self.scan_max_length <= 0:
            raise ValueError("scan_max_length must be positive")


#: The core workloads: the five the paper evaluates (A/B/C/D/F,
#: Section 5.6) plus the scan-heavy E for library completeness.
YCSB_WORKLOADS: Dict[str, YcsbSpec] = {
    "A": YcsbSpec("A", read=0.5, update=0.5),
    "B": YcsbSpec("B", read=0.95, update=0.05),
    "C": YcsbSpec("C", read=1.0),
    "D": YcsbSpec("D", read=0.95, insert=0.05, distribution="latest"),
    "E": YcsbSpec("E", scan=0.95, insert=0.05),
    "F": YcsbSpec("F", read=0.5, rmw=0.5),
}


class YcsbWorkloadGenerator:
    """Generates (op, key) pairs for one DB instance."""

    def __init__(
        self,
        spec: YcsbSpec,
        record_count: int,
        rng: random.Random,
        theta: float = 0.99,
    ):
        if record_count <= 0:
            raise ValueError("record count must be positive")
        self.spec = spec
        self.record_count = record_count
        self.rng = rng
        self.zipf = ZipfianGenerator(record_count, theta=theta, rng=rng)
        self._insert_cursor = record_count

    def next_op(self) -> Tuple[YcsbOp, int]:
        """Draw the next operation and its key."""
        spec = self.spec
        roll = self.rng.random()
        if roll < spec.read:
            return (YcsbOp.READ, self._read_key())
        roll -= spec.read
        if roll < spec.update:
            return (YcsbOp.UPDATE, self._zipf_key())
        roll -= spec.update
        if roll < spec.insert:
            key = self._insert_cursor
            self._insert_cursor += 1
            return (YcsbOp.INSERT, key)
        roll -= spec.insert
        if roll < spec.scan:
            return (YcsbOp.SCAN, self._zipf_key())
        return (YcsbOp.READ_MODIFY_WRITE, self._zipf_key())

    def next_scan_length(self) -> int:
        """Uniform scan length in [1, scan_max_length] (workload E)."""
        return self.rng.randint(1, self.spec.scan_max_length)

    def _zipf_key(self) -> int:
        return self.zipf.next() % self.record_count

    def _read_key(self) -> int:
        if self.spec.distribution == "latest":
            # Workload D: skew toward the most recent inserts.
            offset = self.zipf.next_rank()
            key = self._insert_cursor - 1 - offset
            return max(0, key)
        return self._zipf_key()
