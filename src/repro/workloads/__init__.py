"""Workload generation: fio-style synthetic streams and YCSB.

:mod:`repro.workloads.fio` reimplements the slice of fio the paper's
microbenchmarks use -- closed-loop workers with a queue depth, an IO
size, a read/write mix, random or sequential addressing, and optional
rate caps.  :mod:`repro.workloads.ycsb` provides the YCSB core
workloads (A/B/C/D/F) over a Zipfian request distribution for the
RocksDB case study.
"""

from repro.workloads.fio import FioSpec, FioWorker
from repro.workloads.patterns import AddressRegion, RandomPattern, SequentialPattern
from repro.workloads.population import (
    DEFAULT_TENANT_CLASSES,
    TenantClass,
    TenantPopulation,
    TenantSpec,
    peak_concurrent,
)
from repro.workloads.replay import ReplayWorker
from repro.workloads.trace import TraceRecord, TraceRecorder
from repro.workloads.ycsb import (
    YCSB_WORKLOADS,
    YcsbOp,
    YcsbSpec,
    YcsbWorkloadGenerator,
    ZipfianGenerator,
)

__all__ = [
    "DEFAULT_TENANT_CLASSES",
    "TenantClass",
    "TenantPopulation",
    "TenantSpec",
    "peak_concurrent",
    "FioSpec",
    "FioWorker",
    "AddressRegion",
    "RandomPattern",
    "SequentialPattern",
    "ReplayWorker",
    "TraceRecord",
    "TraceRecorder",
    "ZipfianGenerator",
    "YcsbOp",
    "YcsbSpec",
    "YcsbWorkloadGenerator",
    "YCSB_WORKLOADS",
]
