"""NVMe namespaces: bounds-checked LBA windows onto a device.

A namespace provides independent addressing -- LBA 0 of namespace 2
maps to some device page far from LBA 0 of namespace 1 -- but *no*
physical isolation: both land in the same FTL, channels and write
buffer, which is the paper's point about namespaces being insufficient
for multi-tenancy.
"""

from __future__ import annotations

from dataclasses import dataclass


class NamespaceError(Exception):
    """An IO fell outside its namespace."""


@dataclass(frozen=True)
class Namespace:
    """A contiguous window of a device's exported LBA space."""

    nsid: int
    ssd_name: str
    base_lpn: int
    npages: int

    def __post_init__(self) -> None:
        if self.nsid <= 0:
            raise ValueError("namespace IDs are 1-based")
        if self.base_lpn < 0 or self.npages <= 0:
            raise ValueError("invalid namespace extent")

    @property
    def size_bytes(self) -> int:
        return self.npages * 4096

    def translate(self, slba: int, nlb: int) -> int:
        """Namespace-relative LBA -> device LPN, or raise."""
        if slba < 0 or nlb <= 0 or slba + nlb > self.npages:
            raise NamespaceError(
                f"ns{self.nsid}: range [{slba}, {slba + nlb}) outside {self.npages} blocks"
            )
        return self.base_lpn + slba

    def __str__(self) -> str:
        return f"ns{self.nsid}@{self.ssd_name}[{self.base_lpn}+{self.npages}]"
