"""NVMe abstractions: commands, namespaces, queue pairs, controller.

The paper's tenants attach to NVMe namespaces over NVMe-oF
(Section 2.3 notes that namespaces give independent *addressing* but
no physical isolation -- requests to different namespaces still
interfere inside the device, which is exactly what the simulated FTL
reproduces).  This package provides the spec-shaped layer:

* :class:`~repro.nvme.commands.NvmeCommand` /
  :class:`~repro.nvme.commands.NvmeCompletion` -- submission and
  completion entries;
* :class:`~repro.nvme.namespace.Namespace` -- an LBA window onto a
  device, with bounds-checked translation;
* :class:`~repro.nvme.queue_pair.NvmeQueuePair` -- a bounded
  submission/completion queue pair;
* :class:`~repro.nvme.controller.NvmeController` -- dispatches
  commands to the backing device through their namespace.

The NVMe-oF target uses namespaces for per-tenant addressing; the
controller and queue pairs also stand alone for local-attach use.
"""

from repro.nvme.commands import NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus
from repro.nvme.controller import NvmeController
from repro.nvme.namespace import Namespace, NamespaceError
from repro.nvme.queue_pair import NvmeQueuePair, QueueFullError

__all__ = [
    "NvmeCommand",
    "NvmeCompletion",
    "NvmeOpcode",
    "NvmeStatus",
    "Namespace",
    "NamespaceError",
    "NvmeQueuePair",
    "QueueFullError",
    "NvmeController",
]
