"""NVMe controller: namespace dispatch over one backing device."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.nvme.commands import NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus
from repro.nvme.namespace import Namespace, NamespaceError
from repro.nvme.queue_pair import NvmeQueuePair
from repro.ssd.commands import DeviceCommand, IoOp

CompletionHandler = Callable[[NvmeCompletion], None]

_OPCODE_TO_IO = {
    NvmeOpcode.READ: IoOp.READ,
    NvmeOpcode.WRITE: IoOp.WRITE,
    NvmeOpcode.DEALLOCATE: IoOp.TRIM,
}


class NvmeController:
    """Translates NVMe commands into device commands via namespaces."""

    def __init__(self, sim, device):
        self.sim = sim
        self.device = device
        self.namespaces: Dict[int, Namespace] = {}
        self._next_qid = 1

    # ------------------------------------------------------------------
    # Admin-ish surface
    # ------------------------------------------------------------------
    def create_namespace(self, npages: int, base_lpn: Optional[int] = None) -> Namespace:
        """Attach a new namespace; defaults to packing after the last one."""
        nsid = len(self.namespaces) + 1
        if base_lpn is None:
            base_lpn = sum(ns.npages for ns in self.namespaces.values())
        if base_lpn + npages > self.device.exported_pages:
            raise ValueError("namespace exceeds device capacity")
        namespace = Namespace(nsid, getattr(self.device, "name", "ssd"), base_lpn, npages)
        self.namespaces[nsid] = namespace
        return namespace

    def create_queue_pair(self, depth: int = 128) -> NvmeQueuePair:
        qpair = NvmeQueuePair(self, depth=depth, qid=self._next_qid)
        self._next_qid += 1
        return qpair

    # ------------------------------------------------------------------
    # IO execution
    # ------------------------------------------------------------------
    def execute(self, command: NvmeCommand, on_complete: CompletionHandler) -> None:
        """Run one command; errors complete immediately with a status."""
        submit_time = self.sim.now
        namespace = self.namespaces.get(command.nsid)
        if namespace is None:
            self._fail(command, NvmeStatus.INVALID_NAMESPACE, submit_time, on_complete)
            return
        try:
            lpn = namespace.translate(command.slba, command.nlb)
        except NamespaceError:
            self._fail(command, NvmeStatus.LBA_OUT_OF_RANGE, submit_time, on_complete)
            return
        if command.opcode is NvmeOpcode.FLUSH:
            # The simulated device persists writes on completion; flush
            # is a no-op acknowledged immediately.
            self.sim.schedule(
                0.0,
                on_complete,
                NvmeCompletion(command.cid, NvmeStatus.SUCCESS, submit_time, submit_time),
            )
            return
        device_command = DeviceCommand(_OPCODE_TO_IO[command.opcode], lpn, command.nlb)

        def device_done(cmd: DeviceCommand) -> None:
            on_complete(
                NvmeCompletion(
                    command.cid, NvmeStatus.SUCCESS, submit_time, self.sim.now
                )
            )

        self.device.submit(device_command, device_done)

    def _fail(
        self,
        command: NvmeCommand,
        status: NvmeStatus,
        submit_time: float,
        on_complete: CompletionHandler,
    ) -> None:
        self.sim.schedule(
            0.0, on_complete, NvmeCompletion(command.cid, status, submit_time, self.sim.now)
        )
