"""NVMe command and completion entries.

Logical blocks are 4 KiB (the device model's page size), so ``slba``
and ``nlb`` are in the same units the rest of the stack uses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class NvmeOpcode(enum.Enum):
    """NVM command set opcodes (the subset the workloads exercise)."""

    READ = 0x02
    WRITE = 0x01
    FLUSH = 0x00
    #: Dataset management (deallocate / TRIM).
    DEALLOCATE = 0x09


class NvmeStatus(enum.Enum):
    """Completion status codes."""

    SUCCESS = 0x0
    INVALID_NAMESPACE = 0xB
    LBA_OUT_OF_RANGE = 0x80


_command_ids = itertools.count(1)


@dataclass(slots=True)
class NvmeCommand:
    """One submission queue entry.  Slotted: allocated once per IO."""

    opcode: NvmeOpcode
    nsid: int
    slba: int
    nlb: int
    cid: int = field(default_factory=lambda: next(_command_ids))

    def __post_init__(self) -> None:
        if self.nsid <= 0:
            raise ValueError("namespace IDs are 1-based")
        if self.slba < 0 or self.nlb <= 0:
            raise ValueError("invalid LBA range")

    @property
    def size_bytes(self) -> int:
        return self.nlb * 4096


@dataclass(frozen=True, slots=True)
class NvmeCompletion:
    """One completion queue entry.  Slotted: allocated once per IO."""

    cid: int
    status: NvmeStatus
    submit_time_us: float
    complete_time_us: float

    @property
    def ok(self) -> bool:
        return self.status is NvmeStatus.SUCCESS

    @property
    def latency_us(self) -> float:
        return self.complete_time_us - self.submit_time_us
