"""A bounded NVMe submission/completion queue pair.

NVMe pairs each submission queue with a completion queue; the pair's
depth bounds the commands a host can have outstanding on it.  The
fabric's tenant sessions enforce the same bound at the initiator; this
class provides the local-attach equivalent and the accounting the
overhead experiments read.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.nvme.commands import NvmeCommand, NvmeCompletion

CompletionHandler = Callable[[NvmeCompletion], None]


class QueueFullError(Exception):
    """The submission queue has no free entries."""


class NvmeQueuePair:
    """One SQ/CQ pair against a controller."""

    def __init__(self, controller, depth: int = 128, qid: int = 1):
        if depth <= 0:
            raise ValueError("queue depth must be positive")
        self.controller = controller
        self.depth = depth
        self.qid = qid
        self.outstanding = 0
        self.submitted = 0
        self.completed = 0

    @property
    def free_entries(self) -> int:
        return self.depth - self.outstanding

    def submit(self, command: NvmeCommand, on_complete: Optional[CompletionHandler] = None) -> None:
        """Post one command; raises :class:`QueueFullError` when full."""
        if self.outstanding >= self.depth:
            raise QueueFullError(f"qpair {self.qid}: {self.depth} commands outstanding")
        self.outstanding += 1
        self.submitted += 1

        def deliver(completion: NvmeCompletion) -> None:
            self.outstanding -= 1
            self.completed += 1
            if on_complete is not None:
                on_complete(completion)

        self.controller.execute(command, deliver)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NvmeQueuePair(qid={self.qid}, {self.outstanding}/{self.depth} outstanding)"
