"""Discrete-event simulation kernel.

Time is measured in floating-point *microseconds* from simulation start
throughout the whole package.  The kernel is deliberately small: an
event heap (:class:`~repro.sim.engine.Simulator`), cancellable events,
generator-based processes, and a registry of named, seeded random
number streams so that every run is reproducible.
"""

from repro.sim.engine import (
    KERNEL_BACKENDS,
    Event,
    Process,
    SimulationError,
    Simulator,
    all_of,
    any_of,
    make_simulator,
)
from repro.sim.rng import RngRegistry
from repro.sim.units import GB, GBPS, KB, MB, MBPS, MS, SEC, US, bytes_per_us, mbps

__all__ = [
    "Event",
    "Process",
    "SimulationError",
    "Simulator",
    "all_of",
    "any_of",
    "make_simulator",
    "KERNEL_BACKENDS",
    "RngRegistry",
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "SEC",
    "MBPS",
    "GBPS",
    "mbps",
    "bytes_per_us",
]
