"""Unit constants and conversion helpers.

The simulation clock counts microseconds, sizes are bytes, and rates
are bytes per microsecond internally.  These helpers keep call sites
readable (``4 * KB``, ``mbps(1600)``) and conversion mistakes out of
the models.
"""

#: Size units (bytes).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Time units (microseconds -- the simulation base unit).
US = 1.0
MS = 1000.0
SEC = 1_000_000.0

#: Rate units (bytes per microsecond).
MBPS = MB / SEC
GBPS = GB / SEC


def mbps(value: float) -> float:
    """Convert a rate in MB/s to the internal bytes-per-microsecond unit."""
    return value * MBPS


def bytes_per_us(value_bytes: float, duration_us: float) -> float:
    """Average rate in MB/s for ``value_bytes`` moved over ``duration_us``."""
    if duration_us <= 0:
        return 0.0
    return (value_bytes / duration_us) / MBPS
