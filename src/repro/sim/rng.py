"""Named, seeded random-number streams.

Every stochastic component (each workload worker, the FTL victim
picker, the network jitter model, ...) draws from its *own* stream
derived from a root seed and a stable name.  This keeps runs
reproducible and, more importantly, keeps streams independent: adding
a new consumer of randomness does not perturb the draws any existing
component sees.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 rather than ``hash()`` so the derivation is stable
    across processes and Python versions.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of independent ``random.Random`` streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("worker-0")
    >>> b = rngs.stream("worker-1")
    >>> a is rngs.stream("worker-0")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose streams are independent of this one."""
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
