"""Event loop for the discrete-event simulation.

The :class:`Simulator` owns the clock and an event heap.  Components
never sleep or poll; they schedule callbacks.  Two programming styles
are supported:

* **Callback style** -- ``sim.schedule(delay_us, fn, *args)`` runs
  ``fn(*args)`` after ``delay_us`` microseconds.  This is what the
  device and fabric models use.
* **Process style** -- ``sim.process(generator)`` drives a generator
  that yields either a float (sleep for that many microseconds) or a
  :class:`Waiter` (park until someone triggers it).  This is what the
  experiment scripts use for timeline control (e.g. "add one write
  worker every five seconds").

Determinism: events that fire at the same timestamp execute in the
order they were scheduled (a monotonically increasing sequence number
breaks ties), so a run is fully reproducible given its RNG seeds.

Performance: the heap stores plain ``[time, seq, fn, args, handle]``
lists, not :class:`Event` objects, so sift comparisons run at C speed
(``seq`` is unique, so ``fn`` is never compared).  Fired handles whose
callers kept no reference are recycled through a free list, and the
drain loop used when no probe is attached binds its hot state to
locals.  Cancelled entries are removed lazily on pop; when more than
half the heap is dead the heap is compacted in place.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from operator import itemgetter
from sys import getrefcount
from typing import Any, Callable, Generator, Optional

#: Sort keys for the batch-sorted drain: single homogeneous keys let
#: timsort use its specialized float/int compares.
_KEY_TIME = itemgetter(0)
_KEY_SEQ = itemgetter(1)

#: Upper bound on recycled Event handles kept around between fires.
_FREE_LIST_CAP = 8192
#: Lazy deletion is compacted away once at least this many cancelled
#: entries linger in the heap *and* they outnumber the live ones.
_COMPACT_MIN_DEAD = 512
#: A full drain (``run()`` with no deadline) of a heap at least this
#: deep takes the batch-sorted path: one ``sorted()`` pass replaces the
#: per-event sift-down, which dominates deep drains.
_SORT_DRAIN_MIN = 4096

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule` so it can be cancelled.

    The handle wraps the mutable heap entry ``[time, seq, fn, args,
    handle]``; a ``fn`` of None in the entry marks it fired or
    cancelled, which is what the drain loops skip on.
    """

    __slots__ = ("_entry", "_sim", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self._entry: list = [time, seq, fn, args, None]
        self._entry[4] = self
        self._sim: Optional["Simulator"] = None
        self.cancelled = False

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def seq(self) -> int:
        return self._entry[1]

    @property
    def fn(self):
        return self._entry[2]

    @property
    def args(self):
        return self._entry[3]

    def cancel(self) -> None:
        """Prevent the event from running.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        sim, self._sim = self._sim, None
        if sim is None:
            return
        entry = self._entry
        if entry[2] is None:
            # Already fired; cancelling afterwards is a no-op.
            return
        entry[2] = None
        entry[3] = None
        # Keep the owning simulator's live-event counter exact so
        # ``Simulator.pending`` stays O(1); the dead entry itself is
        # removed lazily (or by compaction, below).
        sim._live -= 1
        sim._dead += 1
        if sim._dead >= _COMPACT_MIN_DEAD and sim._dead * 2 > len(sim._heap):
            sim._compact()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.cancelled:
            state = "cancelled"
        elif self._entry[2] is None:
            state = "fired"
        else:
            state = "pending"
        fn = self._entry[2]
        return f"Event(t={self.time:.3f}us, {getattr(fn, '__name__', fn)}, {state})"


class Waiter:
    """A one-shot synchronisation point for process-style code.

    A process yields a ``Waiter`` to park itself; another component
    calls :meth:`trigger` to resume the process, optionally passing a
    value that becomes the result of the ``yield`` expression.
    """

    __slots__ = ("_process", "_triggered", "_value")

    def __init__(self) -> None:
        self._process: Optional["Process"] = None
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    def trigger(self, value: Any = None) -> None:
        """Resume the process waiting on this waiter (if any)."""
        if self._triggered:
            raise SimulationError("Waiter triggered twice")
        self._triggered = True
        self._value = value
        if self._process is not None:
            process, self._process = self._process, None
            process._resume(value)

    def detach(self, process: "Process") -> None:
        """Drop ``process``'s parked-waiter back-reference, if it is ours.

        Called by :meth:`Process.stop` so a stopped process does not
        linger as this waiter's resume target (and the waiter does not
        keep the dead process alive).
        """
        if self._process is process:
            self._process = None


def all_of(sim: "Simulator", waiters: list) -> Waiter:
    """A waiter that triggers once every input waiter has triggered.

    The resume value is the list of the inputs' values in order.
    """
    combined = Waiter()
    remaining = {"count": len(waiters)}
    values = [None] * len(waiters)
    if not waiters:
        combined.trigger([])
        return combined
    for index, waiter in enumerate(waiters):
        def chain(value, index=index):
            values[index] = value
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.trigger(values)

        _attach(sim, waiter, chain)
    return combined


def any_of(sim: "Simulator", waiters: list) -> Waiter:
    """A waiter that triggers when the first input triggers.

    The resume value is ``(index, value)`` of the winner; later
    triggers of the other inputs are ignored.  The losing relays are
    stopped as soon as the winner fires, so inputs that never trigger
    do not keep parked relay processes alive for the rest of the run.
    """
    if not waiters:
        raise SimulationError("any_of needs at least one waiter")
    combined = Waiter()
    relays: list = []

    def chain(value, index):
        if combined.triggered:
            return
        combined.trigger((index, value))
        for loser, relay in enumerate(relays):
            if loser != index and relay is not None:
                relay.stop()

    for index, waiter in enumerate(waiters):
        relays.append(
            _attach(sim, waiter, lambda value, index=index: chain(value, index))
        )
    return combined


def _attach(sim: "Simulator", waiter: Waiter, callback) -> Optional["Process"]:
    """Run ``callback(value)`` when ``waiter`` triggers.

    Returns the relay process parked on ``waiter``, or None when the
    waiter had already triggered (the callback is simply scheduled).
    """
    if waiter.triggered:
        sim.schedule(0.0, callback, waiter._value)
        return None

    def relay():
        value = yield waiter
        callback(value)

    return Process(sim, relay())


class Process:
    """Drives a generator as a cooperative simulation process."""

    __slots__ = ("sim", "_gen", "alive", "_pending_event", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Any, Any, Any]):
        self.sim = sim
        self._gen = gen
        self.alive = True
        self._pending_event: Optional[Event] = None
        self._waiting_on: Optional[Waiter] = None
        self._resume(None)

    def stop(self) -> None:
        """Terminate the process without running it further."""
        if not self.alive:
            return
        self.alive = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_on is not None:
            self._waiting_on.detach(self)
            self._waiting_on = None
        self._gen.close()

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        self._waiting_on = None
        try:
            yielded = self._gen.send(value)
        except StopIteration:
            self.alive = False
            return
        if isinstance(yielded, Waiter):
            if yielded.triggered:
                # Already satisfied; resume on the next event boundary so
                # we do not recurse unboundedly through ready waiters.
                self._pending_event = self.sim.schedule(0.0, self._resume, yielded._value)
            else:
                yielded._process = self
                self._waiting_on = yielded
        elif isinstance(yielded, (int, float)):
            self._pending_event = self.sim.schedule(float(yielded), self._resume, None)
        else:
            self.alive = False
            raise SimulationError(f"Process yielded unsupported value: {yielded!r}")


class _HeapPopulation:
    """Reference-backend completion population (see :meth:`Simulator.population`).

    ``add`` is exactly :meth:`Simulator.at_` minus one attribute hop:
    the population pre-binds its callback, so hot producers pay the
    same per-event cost as today's ``sim.at_(t, fn, *args)`` while
    declaring their homogeneity to backends that can exploit it.
    Population entries cannot be cancelled (same contract as ``at_``).
    """

    __slots__ = ("_sim", "fn", "label")

    def __init__(self, sim: "Simulator", fn: Callable[..., Any], label: Optional[str]):
        self._sim = sim
        self.fn = fn
        self.label = label

    def add(self, time_us: float, *args: Any) -> None:
        """Register one pending completion of this population."""
        sim = self._sim
        if time_us < sim.now:
            raise SimulationError(f"Cannot add at t={time_us} before now={sim.now}")
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, [time_us, seq, self.fn, args, None])
        sim._live += 1
        probe = sim.probe
        if probe is not None and len(sim._heap) > probe.heap_high_water:
            probe.heap_high_water = len(sim._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_HeapPopulation({self.label or self.fn!r})"


class _HeapBulkPopulation:
    """Reference-backend bulk population (see :meth:`Simulator.population`).

    The bulk contract delivers ``fn(times, payloads)`` for a batch of
    completions; the heap backend can only honour it one entry at a
    time, so each entry fires as a length-1 delivery.  ``floor`` is the
    time of the last delivered completion -- the FCFS contract requires
    every completion registered by ``fn`` to land at or after it.
    """

    __slots__ = ("_sim", "fn", "label", "floor")

    def __init__(self, sim: "Simulator", fn: Callable[..., Any], label: Optional[str]):
        self._sim = sim
        self.fn = fn
        self.label = label
        self.floor = 0.0

    def add(self, time_us: float, payload: Any) -> None:
        """Register a single pending completion."""
        self.add_many((time_us,), (payload,))

    def add_many(self, times, payloads) -> None:
        """Register a batch of pending completions.

        ``times`` and ``payloads`` are parallel sequences; entries need
        not be sorted, but every time must be at or after :attr:`floor`.
        """
        sim = self._sim
        times = times.tolist() if hasattr(times, "tolist") else times
        if len(times) != len(payloads):
            raise SimulationError("add_many: times and payloads lengths differ")
        floor = self.floor
        heap = sim._heap
        fire = self._fire_one
        seq = sim._seq
        count = 0
        for time_us, payload in zip(times, payloads):
            time_us = float(time_us)
            if time_us < floor:
                raise SimulationError(
                    f"bulk population {self.label or self.fn!r}: completion at "
                    f"t={time_us} below floor {floor} (FCFS contract)"
                )
            seq += 1
            heappush(heap, [time_us, seq, fire, (time_us, payload), None])
            count += 1
        sim._seq = seq
        sim._live += count

    def _fire_one(self, time_us: float, payload: Any) -> None:
        self.floor = time_us
        self.fn((time_us,), (payload,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_HeapBulkPopulation({self.label or self.fn!r})"


class Simulator:
    """The event loop: a clock plus a heap of pending events."""

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_running",
        "_live",
        "_dead",
        "_free",
        "tracer",
        "probe",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        #: Heap of ``[time, seq, fn, args, handle]`` entries.
        self._heap: list = []
        self._seq = 0
        self._running = False
        self._live = 0
        #: Cancelled entries still sitting in the heap (lazy deletion).
        self._dead = 0
        #: Recycled Event handles (with their entry lists) awaiting reuse.
        self._free: list = []
        #: Optional observability hooks (see :mod:`repro.obs`).  Both
        #: default to None and every call site guards on that, so a
        #: simulator without observers pays only a None check.
        self.tracer = None
        self.probe = None
        # Imported here, not at module top, so the kernel has no hard
        # dependency on the observability layer.
        from repro.obs.session import current_session

        session = current_session()
        if session is not None:
            session.attach_simulator(self)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_us: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay_us`` microseconds of simulated time."""
        if delay_us < 0:
            raise SimulationError(f"Cannot schedule {delay_us}us in the past")
        time_us = self.now + delay_us
        seq = self._seq = self._seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.cancelled = False
            event._sim = self
            entry = event._entry
            entry[0] = time_us
            entry[1] = seq
            entry[2] = fn
            entry[3] = args
        else:
            event = Event(time_us, seq, fn, args)
            event._sim = self
            entry = event._entry
        self._live += 1
        heappush(self._heap, entry)
        probe = self.probe
        if probe is not None and len(self._heap) > probe.heap_high_water:
            probe.heap_high_water = len(self._heap)
        return event

    def at(self, time_us: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time_us``."""
        if time_us < self.now:
            raise SimulationError(f"Cannot schedule at t={time_us} before now={self.now}")
        seq = self._seq = self._seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.cancelled = False
            event._sim = self
            entry = event._entry
            entry[0] = time_us
            entry[1] = seq
            entry[2] = fn
            entry[3] = args
        else:
            event = Event(time_us, seq, fn, args)
            event._sim = self
            entry = event._entry
        self._live += 1
        heappush(self._heap, entry)
        probe = self.probe
        if probe is not None and len(self._heap) > probe.heap_high_water:
            probe.heap_high_water = len(self._heap)
        return event

    def at_(self, time_us: float, fn: Callable[..., Any], *args: Any) -> None:
        """Like :meth:`at` but returns no handle, so it cannot be
        cancelled.

        The datapath schedules five events per IO and never cancels
        any of them; skipping the Event-handle bookkeeping (free-list
        pop here, refcount probe and free-list push at fire time --
        ``entry[4] is None`` fails the recycling check's refcount test
        naturally) takes a measurable slice off every hot event.
        Firing order is identical to :meth:`at`: the same sequence
        counter breaks timestamp ties.
        """
        if time_us < self.now:
            raise SimulationError(f"Cannot schedule at t={time_us} before now={self.now}")
        self._seq = seq = self._seq + 1
        heappush(self._heap, [time_us, seq, fn, args, None])
        self._live += 1
        probe = self.probe
        if probe is not None and len(self._heap) > probe.heap_high_water:
            probe.heap_high_water = len(self._heap)

    def population(
        self, fn: Callable[..., Any], *, bulk: bool = False, label: Optional[str] = None
    ):
        """Register a homogeneous completion population.

        A population is a producer that schedules many never-cancelled
        completions of one callback -- NAND page completions, link
        wire-delay deliveries, closed-loop session resubmits.  Declaring
        them through this API instead of ``at_`` lets backends advance
        the whole population in bulk; on this reference backend it is a
        zero-cost alias for the heap path, with identical firing order.

        * ``bulk=False`` (default): returns an object with
          ``add(time_us, *args)``; each entry fires ``fn(*args)`` in
          exact ``(time, seq)`` order interleaved with the heap.
        * ``bulk=True``: returns an object with
          ``add_many(times, payloads)`` and scalar ``add``; the kernel
          delivers ``fn(times, payloads)`` for batches of consecutive
          completions.  Producers must honour the FCFS floor contract:
          completions registered during a delivery land at or after the
          population's ``floor`` (the last delivered time), and
          deliveries of *different* populations inside one batch window
          are unordered with respect to each other.  Use ``bulk`` only
          for producers whose per-entry effects are independent across
          populations (independent devices, links, sessions).
        """
        if bulk:
            return _HeapBulkPopulation(self, fn, label)
        return _HeapPopulation(self, fn, label)

    def process(self, gen: Generator[Any, Any, Any]) -> Process:
        """Start a generator-based process (see module docstring)."""
        return Process(self, gen)

    def waiter(self) -> Waiter:
        """Create a fresh :class:`Waiter` for process-style synchronisation."""
        return Waiter()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain.

        Like :meth:`run`, stepping is not reentrant: calling it from
        inside an executing event callback would corrupt the loop.
        """
        if self._running:
            raise SimulationError("Simulator.step() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                entry = heappop(heap)
                fn = entry[2]
                if fn is None:
                    self._dead -= 1
                    continue
                args = entry[3]
                # Mark fired *before* the callback so a late cancel (or
                # a cancel after a callback exception) is a no-op.
                entry[2] = None
                entry[3] = None
                self._live -= 1
                self.now = entry[0]
                probe = self.probe
                if probe is not None:
                    probe.count_fire(fn)
                fn(*args)
                event = entry[4]
                if getrefcount(event) == 3 and len(self._free) < _FREE_LIST_CAP:
                    self._free.append(event)
                return True
            return False
        finally:
            self._running = False

    def run(self, until_us: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the heap drains, ``until_us`` is reached, or ``max_events`` fire.

        Events scheduled exactly at ``until_us`` do execute.  On return
        the clock is advanced to ``until_us`` when a deadline was given
        (even if the heap drained earlier), matching wall-clock style
        measurement windows.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        probe = self.probe
        fired = 0
        if probe is not None:
            probe.begin_run(self.now)
        try:
            if probe is None:
                if max_events is None:
                    self._drain_fast(until_us)
                else:
                    self._drain_counted(until_us, max_events)
            else:
                heap = self._heap
                free = self._free
                while heap:
                    if max_events is not None and fired >= max_events:
                        break
                    entry = heap[0]
                    fn = entry[2]
                    if fn is None:
                        heappop(heap)
                        self._dead -= 1
                        continue
                    if until_us is not None and entry[0] > until_us:
                        break
                    heappop(heap)
                    args = entry[3]
                    entry[2] = None
                    entry[3] = None
                    self._live -= 1
                    self.now = entry[0]
                    probe.count_fire(fn)
                    fn(*args)
                    event = entry[4]
                    if getrefcount(event) == 3 and len(free) < _FREE_LIST_CAP:
                        free.append(event)
                    fired += 1
            # Advance to the deadline inside the try (not in the
            # finally) so a callback exception leaves the clock at the
            # failing event while the probe still accounts the full
            # window on success.
            if until_us is not None and self.now < until_us:
                self.now = until_us
        finally:
            self._running = False
            if probe is not None:
                probe.end_run(self.now, fired)
        return self.now

    def _drain_fast(self, until_us: Optional[float]) -> None:
        """The hot loop: no probe, no event cap, locals bound."""
        heap = self._heap
        if until_us is None and len(heap) - self._dead >= _SORT_DRAIN_MIN:
            # Full drain of a deep backlog: one sorted() pass replaces
            # ~log2(n) sift-down comparisons per pop.
            self._drain_sorted()
            return
        free = self._free
        refcount = getrefcount
        until = _INF if until_us is None else until_us
        while heap:
            entry = heap[0]
            fn = entry[2]
            if fn is None:
                heappop(heap)
                self._dead -= 1
                continue
            time_us = entry[0]
            if time_us > until:
                break
            heappop(heap)
            args = entry[3]
            entry[2] = None
            entry[3] = None
            self._live -= 1
            self.now = time_us
            fn(*args)
            event = entry[4]
            # Recycle the handle only when the scheduler's caller kept
            # no reference (the three counted refs are the entry's
            # back-pointer, the local, and getrefcount's argument), so
            # a held handle can never alias a later event.
            if refcount(event) == 3 and len(free) < _FREE_LIST_CAP:
                free.append(event)

    def _drain_sorted(self) -> None:
        """Drain a deep heap to empty by sorting it into a flat run.

        ``heappop`` on an n-deep heap costs ~log2(n) C-level list
        comparisons per event; for a full drain, one timsort over the
        same entries is much cheaper, and the run is then streamed with
        plain indexing.  Events scheduled by callbacks land on the (now
        shallow) heap and are merged back per event with an exact
        ``(time, seq)`` list comparison, so firing order is identical
        to the heap path.  If callbacks refill the heap past the
        threshold, the next outer iteration sorts again.
        """
        heap = self._heap
        free = self._free
        refcount = getrefcount
        while len(heap) >= _SORT_DRAIN_MIN:
            # Two stable single-key passes instead of one lexicographic
            # list-compare sort: homogeneous int/float keys hit
            # timsort's specialized unsafe compares (~6x faster than
            # comparing the entry lists), and stability makes the
            # seq-then-time pair exactly equivalent to (time, seq).
            run = list(heap)
            run.sort(key=_KEY_SEQ)
            run.sort(key=_KEY_TIME)
            # In place: cancel() inside a callback may trigger
            # _compact(), which mutates self._heap -- it must see the
            # (emptied) live heap, not the detached run.
            heap[:] = []
            index = 0
            count = len(run)
            while index < count:
                entry = run[index]
                fn = entry[2]
                if fn is None:
                    # A _compact() mid-run resets _dead but only purges
                    # self._heap; dead entries in the detached run must
                    # not drive the counter negative.
                    if self._dead > 0:
                        self._dead -= 1
                    index += 1
                    continue
                # Newly scheduled events that precede this run entry
                # (seq is unique, so the list compare never reaches fn).
                while heap and heap[0] < entry:
                    hentry = heappop(heap)
                    hfn = hentry[2]
                    if hfn is None:
                        if self._dead > 0:
                            self._dead -= 1
                        continue
                    hargs = hentry[3]
                    hentry[2] = None
                    hentry[3] = None
                    self._live -= 1
                    self.now = hentry[0]
                    hfn(*hargs)
                    hevent = hentry[4]
                    if (
                        hevent is not None
                        and refcount(hevent) == 3
                        and len(free) < _FREE_LIST_CAP
                    ):
                        free.append(hevent)
                args = entry[3]
                entry[2] = None
                entry[3] = None
                self._live -= 1
                self.now = entry[0]
                fn(*args)
                event = entry[4]
                if (
                    event is not None
                    and refcount(event) == 3
                    and len(free) < _FREE_LIST_CAP
                ):
                    free.append(event)
                index += 1
        if heap:
            # Small residue: the regular loop (the dispatch check in
            # _drain_fast now fails, so this cannot recurse).
            self._drain_fast(None)

    def _drain_counted(self, until_us: Optional[float], max_events: int) -> None:
        """Like :meth:`_drain_fast` but stops after ``max_events`` fires."""
        heap = self._heap
        free = self._free
        refcount = getrefcount
        until = _INF if until_us is None else until_us
        remaining = max_events
        while heap and remaining > 0:
            entry = heap[0]
            fn = entry[2]
            if fn is None:
                heappop(heap)
                self._dead -= 1
                continue
            time_us = entry[0]
            if time_us > until:
                break
            heappop(heap)
            args = entry[3]
            entry[2] = None
            entry[3] = None
            self._live -= 1
            self.now = time_us
            fn(*args)
            event = entry[4]
            if refcount(event) == 3 and len(free) < _FREE_LIST_CAP:
                free.append(event)
            remaining -= 1

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: the drain loops alias ``self._heap`` in a
        local, so compaction triggered by a ``cancel()`` inside a
        running callback must mutate the same list object.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[2] is not None]
        heapify(heap)
        self._dead = 0

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return self._live

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or None when idle.

        Prunes cancelled entries off the heap head as a side effect, so
        repeated calls stay O(1) amortised.  The sharded window driver
        (:mod:`repro.sim.shard`) uses this as the conservative bound on
        when this kernel can next affect another shard.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] is None:
                heappop(heap)
                self._dead -= 1
                continue
            return entry[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}us, pending={self.pending})"


#: Selectable event-kernel backends (see :func:`make_simulator`).
KERNEL_BACKENDS = ("reference", "batch")

#: Environment variable consulted when no explicit backend is passed.
#: Set by the ``--kernel-backend`` CLI/benchmark flags; read here (not
#: at import time) so worker processes inherit the choice.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"


def make_simulator(backend: Optional[str] = None) -> Simulator:
    """Build a simulator for the selected kernel backend.

    ``backend`` may be ``"reference"`` (the pure-Python heap kernel,
    the default) or ``"batch"`` (the numpy batch-advance kernel in
    :mod:`repro.sim.batch`).  When None, the ``REPRO_KERNEL_BACKEND``
    environment variable decides, defaulting to the reference kernel,
    so one process-wide switch flips every harness and experiment
    driver without threading a parameter through their signatures.
    """
    if backend is None:
        backend = os.environ.get(KERNEL_BACKEND_ENV, "") or "reference"
    if backend == "reference":
        return Simulator()
    if backend == "batch":
        from repro.sim.batch import BatchSimulator

        return BatchSimulator()
    raise SimulationError(
        f"Unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
    )
