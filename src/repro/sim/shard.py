"""Conservative sharded parallel discrete-event execution.

A rack simulation is partitioned into *shards* -- one per JBOF
(SmartNIC + SSDs + backend state) plus a coordinator shard owning the
initiators and population scheduling -- each running its own
:class:`~repro.sim.engine.Simulator` (reference or batch backend).
Shards advance in lock-stepped conservative windows:

1. At a barrier, every shard reports the timestamp of its earliest
   pending event (:meth:`Simulator.next_event_time`); in-flight
   cross-shard messages contribute their delivery times.
2. The window driver computes ``m`` = the global minimum and opens the
   window ``(clock, m + L]`` where ``L`` is the *lookahead*: the
   minimum cross-shard fabric latency (per-message NIC ingress floor +
   wire propagation).
3. Each shard injects its inbound messages (sorted by the canonical
   ``(due, send, src, seq)`` key) and runs its kernel to the shared
   horizon, collecting any messages it emits into an outbox.
4. Outboxes are routed at the barrier and the loop repeats until every
   shard is idle and no messages are in flight.

The protocol is conservative because every event processed in a window
carries timestamp >= ``m``, and every cross-shard message is emitted
with delivery latency *strictly greater* than ``L`` (a real fabric
capsule always adds a nonzero serialization term on top of the
per-message and propagation floors).  A message sent inside the window
therefore lands strictly after the horizon, so no shard can receive an
event in its own past.  :meth:`ShardKernel.emit` enforces the strict
inequality at emission time.

Determinism: the horizon sequence is a pure function of event
timestamps and message delivery times, both of which are independent
of how shards are scheduled onto processes.  Single-process round-robin
execution (``mode="inline"``) is therefore byte-identical to
multi-process execution (``mode="processes"``), and -- because shards
never share simulator state -- results are also invariant to the
number of shards the same topology is partitioned into.  CI gates both
properties (see ``tests/harness/test_sharded_rack.py``).
"""

from __future__ import annotations

import cProfile
import itertools
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

#: ``--shards`` CLI flag mirror; consulted by experiment drivers when no
#: explicit shard count is passed (see :func:`resolve_shards`).
SHARDS_ENV = "REPRO_SHARDS"

#: Set by :class:`repro.harness.parallel.WorkerPool` (and the suite
#: orchestrator) to the pool's effective job budget, so sharded points
#: running under a pool clamp their process fan-out (see
#: :func:`plan_shards`).
EFFECTIVE_JOBS_ENV = "REPRO_EFFECTIVE_JOBS"

#: Directory for per-shard cProfile dumps (``repro profile --shards``).
SHARD_PROFILE_ENV = "REPRO_SHARD_PROFILE"

SHARD_MODES = ("auto", "inline", "processes")


class ShardProtocolError(RuntimeError):
    """A shard violated the conservative-window contract."""


class ShardWorkerError(RuntimeError):
    """A shard worker process raised during a window step."""


@dataclass(slots=True)
class ShardMessage:
    """One typed cross-shard message, delivered at ``due_us``.

    ``kind`` is interpreted by the receiving shard's handler (the sim
    layer only routes); the canonical taxonomy for the rack topology is
    submit / complete / connect / disconnect (see
    :mod:`repro.fabric.boundary`).
    """

    kind: str
    dst: int
    due_us: float
    send_us: float
    src: int
    seq: int
    payload: Any


def _message_key(msg: ShardMessage):
    return (msg.due_us, msg.send_us, msg.src, msg.seq)


# ----------------------------------------------------------------------
# Shard plan / environment resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Resolved shard fan-out for one sharded run."""

    requested: int
    shards: int
    mode: str  # "inline" | "processes"
    clamped: bool  # True when the worker-pool budget reduced the fan-out


def resolve_shards(value: Optional[int] = None) -> Optional[int]:
    """Resolve a shard count from an explicit value or ``REPRO_SHARDS``.

    Returns None (unsharded) when neither is set or the count is 0.
    """
    if value is None:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        if not raw:
            return None
        value = int(raw)
    return value if value > 0 else None


def plan_shards(
    requested: int,
    mode: str = "auto",
    max_shards: Optional[int] = None,
) -> ShardPlan:
    """Clamp a requested shard fan-out against structure and budget.

    ``max_shards`` caps at the topology's JBOF count (a shard with no
    JBOFs is pointless).  When ``REPRO_EFFECTIVE_JOBS`` is set (the
    run is inside a :class:`~repro.harness.parallel.WorkerPool` worker
    or under ``repro suite``), the process fan-out is clamped so that
    this process plus its shard workers stay within the pool's job
    budget; when the budget leaves no room for extra processes the run
    falls back to inline mode, which shards the topology without
    spawning anything.  Budget clamps bump the ``sweep.shards_clamped``
    counter and are recorded on the returned plan so drivers can
    journal them.
    """
    if mode not in SHARD_MODES:
        raise ValueError(f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}")
    requested = max(1, int(requested))
    effective = requested
    if max_shards is not None and effective > max_shards:
        effective = max_shards
    if mode == "inline":
        return ShardPlan(requested, effective, "inline", False)
    clamped = False
    budget_raw = os.environ.get(EFFECTIVE_JOBS_ENV, "").strip()
    if budget_raw:
        allowed = int(budget_raw) - 1  # this process occupies one slot
        if allowed < 1:
            plan = ShardPlan(requested, effective, "inline", True)
            _bump_clamped()
            return plan
        if effective > allowed:
            effective = allowed
            clamped = True
    if mode == "auto":
        mode = "processes" if (os.cpu_count() or 1) > 1 else "inline"
    if clamped:
        _bump_clamped()
    return ShardPlan(requested, effective, mode, clamped)


def _bump_clamped() -> None:
    from repro.obs import bump

    bump("sweep.shards_clamped")


# ----------------------------------------------------------------------
# Shard kernel: one simulator + message seam
# ----------------------------------------------------------------------
class ShardKernel:
    """One shard's simulator plus its cross-shard message seam.

    ``handler(msg)`` runs on this shard's simulator at ``msg.due_us``
    for every inbound message.  Domain code sends through :meth:`emit`,
    which enforces the conservative lookahead contract.
    """

    def __init__(
        self,
        shard_id: int,
        sim,
        handler: Callable[[ShardMessage], None],
        lookahead_us: float,
        probe: bool = False,
    ) -> None:
        self.shard_id = shard_id
        self.sim = sim
        self.handler = handler
        self.lookahead_us = lookahead_us
        self.outbox: List[ShardMessage] = []
        self._seq = 0
        self.probe = sim.probe
        if probe and self.probe is None:
            from repro.obs import KernelProbe

            self.probe = KernelProbe(detailed=False)
            sim.probe = self.probe

    def emit(self, dst: int, kind: str, due_us: float, payload: Any = None) -> None:
        """Queue a message for delivery on shard ``dst`` at ``due_us``.

        The delivery must land *strictly* beyond the lookahead horizon
        of the current instant -- every real fabric hop does, because
        capsule serialization adds a nonzero term on top of the
        per-message + propagation floor that defines the lookahead.
        """
        now = self.sim.now
        if due_us <= now + self.lookahead_us:
            raise ShardProtocolError(
                f"shard {self.shard_id} emitted {kind!r} due at {due_us:.6f}us "
                f"from t={now:.6f}us: violates lookahead {self.lookahead_us:.6f}us"
            )
        self._seq += 1
        self.outbox.append(
            ShardMessage(kind, dst, due_us, now, self.shard_id, self._seq, payload)
        )

    def step(self, horizon_us: float, inbound: Sequence[ShardMessage]):
        """Inject ``inbound`` (pre-sorted) and advance to ``horizon_us``.

        Returns ``(outbox, next_event_time, events_fired, now)``.
        """
        sim = self.sim
        handler = self.handler
        for msg in inbound:
            sim.at_(msg.due_us, handler, msg)
        sim.run(until_us=horizon_us)
        out = self.outbox
        self.outbox = []
        fired = self.probe.fired_total if self.probe is not None else 0
        return (out, sim.next_event_time(), fired, sim.now)

    def stats(self) -> Dict[str, Any]:
        return {
            "shard": self.shard_id,
            "events_fired": self.probe.fired_total if self.probe is not None else 0,
            "clock_us": self.sim.now,
            "messages_sent": self._seq,
        }


# ----------------------------------------------------------------------
# Channels: inline vs worker-process transport for one shard
# ----------------------------------------------------------------------
_PROFILE_SEQ = itertools.count()


def _profile_path(profile_dir: str, shard_id: int) -> str:
    """A collision-free dump path: several clusters (sweep points) may
    profile shards with the same id in one process or across worker
    processes, and ``repro profile`` merges per-shard-id afterwards."""
    return os.path.join(
        profile_dir,
        f"shard-{shard_id}.{os.getpid()}-{next(_PROFILE_SEQ)}.pstats",
    )


class _LocalChannel:
    """Round-robin in-process execution of one shard."""

    def __init__(self, shard_id: int, kernel: ShardKernel, profile_dir: Optional[str]):
        self.shard_id = shard_id
        self.kernel = kernel
        self._posted = None
        self._profiler = cProfile.Profile() if profile_dir else None
        self._profile_dir = profile_dir

    def next_event_time(self) -> Optional[float]:
        return self.kernel.sim.next_event_time()

    def post(self, horizon_us: float, inbound: List[ShardMessage]) -> None:
        self._posted = (horizon_us, inbound)

    def wait(self):
        horizon_us, inbound = self._posted
        self._posted = None
        profiler = self._profiler
        if profiler is not None:
            profiler.enable()
        try:
            return self.kernel.step(horizon_us, inbound)
        finally:
            if profiler is not None:
                profiler.disable()

    def stats(self) -> Dict[str, Any]:
        return self.kernel.stats()

    def close(self) -> None:
        if self._profiler is not None:
            self._profiler.dump_stats(
                _profile_path(self._profile_dir, self.shard_id)
            )
            self._profiler = None


def _shard_worker_main(conn, factory, spec, profile_dir) -> None:
    """Worker-process loop: build the shard, then serve window steps."""
    profiler = cProfile.Profile() if profile_dir else None
    kernel = None
    try:
        kernel = factory(spec)
        conn.send(("ok", None))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "step":
                if profiler is not None:
                    profiler.enable()
                try:
                    result = kernel.step(cmd[1], cmd[2])
                finally:
                    if profiler is not None:
                        profiler.disable()
                conn.send(("ok", result))
            elif op == "next":
                conn.send(("ok", kernel.sim.next_event_time()))
            elif op == "stats":
                conn.send(("ok", kernel.stats()))
            elif op == "stop":
                break
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # parent already gone
            pass
    finally:
        if profiler is not None and kernel is not None:
            profiler.dump_stats(_profile_path(profile_dir, kernel.shard_id))
        conn.close()


class _ProcessChannel:
    """One shard hosted in a dedicated worker process over a pipe.

    Steps are posted asynchronously so all shard processes compute a
    window concurrently; the parent's blocked time in :meth:`wait` is
    accounted as barrier stall.
    """

    def __init__(self, shard_id: int, factory, spec, profile_dir: Optional[str]):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, factory, spec, profile_dir),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        self.shard_id = shard_id
        self.barrier_stall_s = 0.0
        self._process.start()
        child_conn.close()
        self._recv()  # build acknowledgement

    def _recv(self):
        t0 = time.perf_counter()
        if not self._conn.poll(0):
            self._conn.poll(None)
            self.barrier_stall_s += time.perf_counter() - t0
        status, value = self._conn.recv()
        if status != "ok":
            raise ShardWorkerError(
                f"shard {self.shard_id} worker failed:\n{value}"
            )
        return value

    def next_event_time(self) -> Optional[float]:
        self._conn.send(("next",))
        return self._recv()

    def post(self, horizon_us: float, inbound: List[ShardMessage]) -> None:
        self._conn.send(("step", horizon_us, inbound))

    def wait(self):
        return self._recv()

    def stats(self) -> Dict[str, Any]:
        self._conn.send(("stats",))
        return self._recv()

    def close(self) -> None:
        if self._process is None:
            return
        try:
            self._conn.send(("stop",))
        except OSError:
            pass
        self._process.join(timeout=10.0)
        if self._process.is_alive():  # pragma: no cover - hang backstop
            self._process.terminate()
            self._process.join()
        self._conn.close()
        self._process = None


# ----------------------------------------------------------------------
# Window driver
# ----------------------------------------------------------------------
class ShardExecutor:
    """Drives a set of shard channels through conservative windows.

    Shard 0 is conventionally the coordinator and always runs in the
    parent process (``add_local``); JBOF shards run either inline or in
    worker processes (``add_process``), decided by the
    :class:`ShardPlan`.
    """

    def __init__(self, lookahead_us: float) -> None:
        if lookahead_us <= 0.0:
            raise ValueError(f"lookahead must be positive, got {lookahead_us}")
        self.lookahead_us = lookahead_us
        self.channels: List[Any] = []
        self.windows = 0
        self.messages = 0
        self.barrier_stall_s = 0.0
        self.shard_events: List[int] = []
        self._pending: List[List[ShardMessage]] = []
        self._next_t: List[Optional[float]] = []
        self._profile_dir = os.environ.get(SHARD_PROFILE_ENV) or None
        self._closed = False

    # -- topology construction ----------------------------------------
    def add_local(self, kernel: ShardKernel) -> int:
        shard_id = len(self.channels)
        if kernel.shard_id != shard_id:
            raise ValueError(
                f"kernel shard_id {kernel.shard_id} != slot {shard_id}"
            )
        self.channels.append(_LocalChannel(shard_id, kernel, self._profile_dir))
        self._pending.append([])
        self._next_t.append(None)
        self.shard_events.append(0)
        return shard_id

    def add_process(self, factory, spec) -> int:
        shard_id = len(self.channels)
        self.channels.append(
            _ProcessChannel(shard_id, factory, spec, self._profile_dir)
        )
        self._pending.append([])
        self._next_t.append(None)
        self.shard_events.append(0)
        return shard_id

    @property
    def shards(self) -> int:
        return len(self.channels)

    # -- window loop ---------------------------------------------------
    def _refresh_next(self) -> None:
        """Re-poll every shard's earliest pending event.

        Needed at the start of each run: domain code may have scheduled
        new coordinator events (population launches, measurement
        deadlines) between runs.
        """
        channels = self.channels
        for index, channel in enumerate(channels):
            if isinstance(channel, _ProcessChannel):
                channel._conn.send(("next",))
        for index, channel in enumerate(channels):
            self._next_t[index] = (
                channel._recv()
                if isinstance(channel, _ProcessChannel)
                else channel.next_event_time()
            )

    def _earliest(self) -> Optional[float]:
        earliest: Optional[float] = None
        for next_t in self._next_t:
            if next_t is not None and (earliest is None or next_t < earliest):
                earliest = next_t
        for inbox in self._pending:
            for msg in inbox:
                if earliest is None or msg.due_us < earliest:
                    earliest = msg.due_us
        return earliest

    def run_until(self, target_us: Optional[float] = None) -> None:
        """Advance the sharded topology to ``target_us`` (None = drain).

        With a target, every shard's clock lands exactly on the target
        (mirroring ``Simulator.run(until_us=...)`` semantics); without
        one, the loop runs until every shard is idle and no messages
        are in flight.
        """
        self._collect_local_outboxes()
        self._refresh_next()
        lookahead = self.lookahead_us
        while True:
            earliest = self._earliest()
            if earliest is None or (target_us is not None and earliest > target_us):
                if target_us is not None:
                    self._round(target_us)
                return
            horizon = earliest + lookahead
            if target_us is not None and horizon > target_us:
                horizon = target_us
            self._round(horizon)

    def run(self) -> None:
        """Run to global quiescence (no events, no in-flight messages)."""
        self.run_until(None)

    def _route(self, src: int, outbox: List[ShardMessage]) -> None:
        pending = self._pending
        for msg in outbox:
            if msg.dst < 0 or msg.dst >= len(pending) or msg.dst == src:
                raise ShardProtocolError(
                    f"shard {src} emitted message to invalid shard {msg.dst}"
                )
            pending[msg.dst].append(msg)
            self.messages += 1

    def _collect_local_outboxes(self) -> None:
        """Route messages emitted outside a window step.

        Coordinator-side domain code runs between ``run_until`` calls
        (instance setup, population scheduling) and may emit across the
        boundary while its simulator heap stays empty, so these sends
        would otherwise be invisible to :meth:`_earliest`.  Only local
        channels can hold such messages; worker processes run domain
        code exclusively inside steps.
        """
        for index, channel in enumerate(self.channels):
            if isinstance(channel, _LocalChannel):
                kernel = channel.kernel
                if kernel.outbox:
                    outbox = kernel.outbox
                    kernel.outbox = []
                    self._route(index, outbox)

    def _round(self, horizon_us: float) -> None:
        channels = self.channels
        pending = self._pending
        inboxes = pending[:]
        for index in range(len(pending)):
            pending[index] = []
        for index, channel in enumerate(channels):
            inbox = inboxes[index]
            if len(inbox) > 1:
                inbox.sort(key=_message_key)
            channel.post(horizon_us, inbox)
        events = self.shard_events
        for index, channel in enumerate(channels):
            outbox, next_t, fired, _now = channel.wait()
            self._next_t[index] = next_t
            events[index] = fired
            self._route(index, outbox)
        self.windows += 1

    # -- teardown / reporting ------------------------------------------
    def finish(self) -> Dict[str, Any]:
        """Collect per-shard stats and stop workers.  Idempotent."""
        if self._closed:
            return self.report()
        per_shard = [channel.stats() for channel in self.channels]
        for index, stats in enumerate(per_shard):
            self.shard_events[index] = stats["events_fired"]
        for channel in self.channels:
            if isinstance(channel, _ProcessChannel):
                self.barrier_stall_s += channel.barrier_stall_s
            channel.close()
        self._closed = True
        return self.report()

    def report(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "lookahead_us": self.lookahead_us,
            "windows": self.windows,
            "messages": self.messages,
            "barrier_stall_s": self.barrier_stall_s,
            "events_by_shard": list(self.shard_events),
            "events_fired": sum(self.shard_events),
        }

    def register_metrics(self, registry, prefix: str = "shard") -> None:
        """Install ``shard.*`` gauges, merging per-shard event counts."""
        registry.gauge(f"{prefix}.shards", lambda: self.shards)
        registry.gauge(f"{prefix}.lookahead_us", lambda: self.lookahead_us)
        registry.gauge(f"{prefix}.windows", lambda: self.windows)
        registry.gauge(f"{prefix}.messages", lambda: self.messages)
        registry.gauge(f"{prefix}.barrier_stall_s", lambda: self.barrier_stall_s)
        registry.gauge(f"{prefix}.events_fired", lambda: sum(self.shard_events))
        for index in range(self.shards):
            registry.gauge(
                f"{prefix}.events.{index}",
                lambda index=index: self.shard_events[index],
            )

    def close(self) -> None:
        self.finish()
