"""Batch-advance event-kernel backend.

Drop-in :class:`~repro.sim.engine.Simulator` subclass that advances
*populations* of homogeneous timed completions with numpy instead of
individual heap entries.  Producers register populations through the
same :meth:`Simulator.population` API the reference backend serves
from its heap; everything else (``schedule``/``at``/``at_``,
processes, waiters, cancellation) still goes through the heap and is
merged back per event, so ``(time, seq)`` firing order is preserved
exactly for per-event populations.

How it works
------------
* ``add`` / ``add_many`` calls *stage* completions: scalar adds append
  to plain Python lists; bulk adds park whole ``(times, payloads)``
  arrays as chunks.  No sorting happens at add time.
* When the kernel needs batch work, staged entries are **grand-sorted**
  once into a flat pool (``np.lexsort`` by ``(time, seq)``), which is
  then consumed window by window (``_WINDOW`` entries at a time, never
  splitting a timestamp tie across windows).
* Each window becomes one or more *segments*: contiguous bulk-entry
  stretches are delivered as arrays (``fn(times, payloads)`` grouped
  per population, sliced below the next heap event with
  ``np.searchsorted``); everything else fires through a per-event
  merged loop identical in order to the reference kernel.
* The window's last timestamp is the **ceiling**: completions added at
  or above it stage for a later window; the rare add *below* it (an
  "undercut") is routed to the regular heap, whose head is compared
  against the run per event -- so undercuts cost speed, never
  correctness.
* An empty backlog costs nothing: populations with no pending entries
  contribute no heap entries and no window work, and when the heap is
  idle the clock jumps analytically to the next staged completion
  (``batch_idle_jumps`` / ``batch_idle_us`` count the skipped gaps).

Ordering contract
-----------------
Per-event populations (``bulk=False``) and all heap events fire in
exact ``(time, seq)`` order -- byte-identical to the reference
backend.  Bulk populations trade that exactness for throughput: within
one delivery region, groups belonging to *different* populations are
delivered in population-registration order rather than interleaved by
time, and the clock coarsens to the region's last timestamp.  Bulk
producers must honour the FCFS floor contract (completions registered
during a delivery land at or after the population's ``floor``); the
backend raises :class:`SimulationError` on violations.

numpy is an optional dependency (``pip install repro[fast]``); the
reference backend never imports this module.
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Optional

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised only without numpy
    raise ImportError(
        "repro.sim.batch needs numpy, which is an optional dependency of "
        "this package: install it with `pip install repro[fast]` (or plain "
        "`pip install numpy`).  The default pure-Python reference backend "
        "(REPRO_KERNEL_BACKEND=reference) works without it."
    ) from exc

from repro.sim.engine import _FREE_LIST_CAP, SimulationError, Simulator

_INF = float("inf")
#: Pool entries consumed per window cut.  Large enough to amortise the
#: numpy work per window, small enough that closed-loop resubmits land
#: above the window ceiling (staged, not undercut to the heap).
_WINDOW = 8192
#: Bulk stretches shorter than this fire per-event: below it the numpy
#: group extraction costs more than the Python loop it replaces.
_MIN_BULK_SEGMENT = 64
#: Array-delivery regions thinner than this (heap events landing every
#: few entries) demote the segment remainder to the per-event merged
#: loop -- numpy slicing per tiny region loses to plain Python.
_MIN_BULK_REGION = 8
#: Sentinel budget for "unlimited" max_events.
_NO_BUDGET = 1 << 62

# Segment tuple layout (lists, so cursors mutate in place):
# [kind, cursor, times, seqs, pids, payloads]
# kind 0 = array segment (ndarrays, all-bulk), 1 = list segment
# (python lists; pids is None when the segment holds no bulk entries).
_ARRAY = 0
_LIST = 1


class BatchPopulation:
    """Per-event population on the batch backend (exact-order)."""

    __slots__ = ("_sim", "fn", "label")

    def __init__(self, sim: "BatchSimulator", fn: Callable[..., Any], label: Optional[str]):
        self._sim = sim
        self.fn = fn
        self.label = label

    def add(self, time_us: float, *args: Any) -> None:
        """Register one pending completion of this population."""
        sim = self._sim
        if time_us < sim.now:
            raise SimulationError(f"Cannot add at t={time_us} before now={sim.now}")
        sim._seq = seq = sim._seq + 1
        sim._live += 1
        sim.batch_adds += 1
        if time_us < sim._ceiling:
            sim.batch_undercuts += 1
            heappush(sim._heap, [time_us, seq, self.fn, args, None])
        else:
            sim._stage_t.append(time_us)
            sim._stage_s.append(seq)
            sim._stage_pid.append(-1)
            sim._stage_p.append((self.fn, args))
            if time_us < sim._stage_min:
                sim._stage_min = time_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchPopulation({self.label or self.fn!r})"


class BatchBulkPopulation:
    """Bulk population: completions staged and delivered as arrays."""

    __slots__ = ("_sim", "fn", "label", "pid", "floor")

    def __init__(
        self,
        sim: "BatchSimulator",
        fn: Callable[..., Any],
        pid: int,
        label: Optional[str],
    ):
        self._sim = sim
        self.fn = fn
        self.label = label
        self.pid = pid
        self.floor = 0.0

    def add(self, time_us: float, payload: Any) -> None:
        """Register a single pending completion (numpy-free fast path:
        sparse producers stage scalars; arrays only enter the picture
        once a backlog is worth sorting)."""
        sim = self._sim
        if time_us < self.floor:
            raise SimulationError(
                f"bulk population {self.label or self.pid}: completion at "
                f"t={time_us} below floor {self.floor} (FCFS contract)"
            )
        sim._seq = seq = sim._seq + 1
        sim._live += 1
        sim.batch_adds += 1
        if time_us < sim._ceiling:
            sim.batch_undercuts += 1
            heappush(
                sim._heap, [time_us, seq, self._fire_one, (time_us, payload), None]
            )
        else:
            sim._stage_t.append(time_us)
            sim._stage_s.append(seq)
            sim._stage_pid.append(self.pid)
            sim._stage_p.append(payload)
            if time_us < sim._stage_min:
                sim._stage_min = time_us

    def add_many(self, times, payloads) -> None:
        """Register a batch of pending completions.

        ``times`` and ``payloads`` are parallel sequences (numpy arrays
        stage with zero per-entry Python work); entries need not be
        sorted, but every time must be at or after :attr:`floor`.
        """
        sim = self._sim
        times = np.asarray(times, dtype=np.float64)
        count = times.shape[0]
        if count == 0:
            return
        if len(payloads) != count:
            raise SimulationError("add_many: times and payloads lengths differ")
        tmin = float(times.min())
        if tmin < self.floor:
            raise SimulationError(
                f"bulk population {self.label or self.pid}: completion at "
                f"t={tmin} below floor {self.floor} (FCFS contract)"
            )
        seq0 = sim._seq
        sim._seq = seq0 + count
        sim._live += count
        sim.batch_adds += count
        if tmin < sim._ceiling:
            sim._stage_bulk_undercut(self, times, seq0, payloads)
        else:
            sim._chunks.append((times, seq0 + 1, self.pid, payloads))
            if tmin < sim._stage_min:
                sim._stage_min = tmin

    def _fire_one(self, time_us: float, payload: Any) -> None:
        self.floor = time_us
        self.fn((time_us,), (payload,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchBulkPopulation({self.label or self.fn!r})"


def _object_column(payloads, count: int):
    """Box a payload sequence into a 1-D object array.

    Elementwise fill for Python sequences: a slice assignment would let
    numpy coerce a list of equal-length tuples into a 2-D array.
    """
    if isinstance(payloads, np.ndarray):
        if payloads.dtype == object:
            return payloads
        column = np.empty(count, dtype=object)
        column[:] = payloads
        return column
    column = np.empty(count, dtype=object)
    for index, item in enumerate(payloads):
        column[index] = item
    return column


class BatchSimulator(Simulator):
    """Simulator with numpy batch-advance for registered populations."""

    __slots__ = (
        "_pops",
        "_stage_t",
        "_stage_s",
        "_stage_pid",
        "_stage_p",
        "_stage_min",
        "_chunks",
        "_pool_t",
        "_pool_s",
        "_pool_pid",
        "_pool_p",
        "_pool_pos",
        "_segments",
        "_seg_idx",
        "_ceiling",
        "batch_adds",
        "batch_undercuts",
        "batch_grand_sorts",
        "batch_windows",
        "batch_refolds",
        "batch_demotions",
        "batch_bulk_fired",
        "batch_scalar_fired",
        "batch_idle_jumps",
        "batch_idle_us",
    )

    def __init__(self) -> None:
        self._pops: list = []
        self._stage_t: list = []
        self._stage_s: list = []
        self._stage_pid: list = []
        self._stage_p: list = []
        self._stage_min = _INF
        self._chunks: list = []
        self._pool_t = None
        self._pool_s = None
        self._pool_pid = None
        self._pool_p = None
        self._pool_pos = 0
        self._segments: list = []
        self._seg_idx = 0
        self._ceiling = -_INF
        self.batch_adds = 0
        self.batch_undercuts = 0
        self.batch_grand_sorts = 0
        self.batch_windows = 0
        self.batch_refolds = 0
        self.batch_demotions = 0
        self.batch_bulk_fired = 0
        self.batch_scalar_fired = 0
        self.batch_idle_jumps = 0
        self.batch_idle_us = 0.0
        super().__init__()

    # ------------------------------------------------------------------
    # Population registration / staging
    # ------------------------------------------------------------------
    def population(
        self, fn: Callable[..., Any], *, bulk: bool = False, label: Optional[str] = None
    ):
        """Register a population (same contract as the reference kernel)."""
        if bulk:
            pop = BatchBulkPopulation(self, fn, len(self._pops), label)
            self._pops.append(pop)
            return pop
        return BatchPopulation(self, fn, label)

    def _stage_bulk_undercut(self, pop, times, seq0: int, payloads) -> None:
        """Rare path: a bulk add whose earliest entry lands inside the
        active window.  The undercutting slice goes to the heap (exact
        per-event merge); the rest stages normally."""
        ceiling = self._ceiling
        under = np.flatnonzero(times < ceiling)
        heap = self._heap
        fire = pop._fire_one
        for j in under.tolist():
            tj = float(times[j])
            heappush(heap, [tj, seq0 + 1 + j, fire, (tj, payloads[j]), None])
        self.batch_undercuts += under.size
        keep = np.flatnonzero(times >= ceiling)
        if keep.size:
            kept_times = times[keep]
            kept_seqs = keep.astype(np.int64) + (seq0 + 1)
            kept_payloads = np.empty(keep.size, dtype=object)
            for out, j in enumerate(keep.tolist()):
                kept_payloads[out] = payloads[j]
            self._chunks.append((kept_times, kept_seqs, pop.pid, kept_payloads))
            tmin = float(kept_times.min())
            if tmin < self._stage_min:
                self._stage_min = tmin

    # ------------------------------------------------------------------
    # Pool / window machinery
    # ------------------------------------------------------------------
    def _next_batch_time(self) -> float:
        """Earliest pending batch completion (staged or pooled)."""
        nxt = self._stage_min
        pool_t = self._pool_t
        if pool_t is not None and self._pool_pos < pool_t.shape[0]:
            head = pool_t[self._pool_pos]
            if head < nxt:
                nxt = float(head)
        return nxt

    def _grand_sort(self, carry_pos: Optional[int]) -> None:
        """Sort every staged entry (plus the unconsumed pool tail when
        ``carry_pos`` is given) into a fresh pool."""
        parts_t: list = []
        parts_s: list = []
        parts_pid: list = []
        parts_p: list = []
        if carry_pos is not None:
            parts_t.append(self._pool_t[carry_pos:])
            parts_s.append(self._pool_s[carry_pos:])
            parts_pid.append(self._pool_pid[carry_pos:])
            parts_p.append(self._pool_p[carry_pos:])
        if self._stage_t:
            count = len(self._stage_t)
            parts_t.append(np.asarray(self._stage_t, dtype=np.float64))
            parts_s.append(np.asarray(self._stage_s, dtype=np.int64))
            parts_pid.append(np.asarray(self._stage_pid, dtype=np.int64))
            parts_p.append(_object_column(self._stage_p, count))
            self._stage_t = []
            self._stage_s = []
            self._stage_pid = []
            self._stage_p = []
        for times, seqs, pid, payloads in self._chunks:
            count = times.shape[0]
            parts_t.append(times)
            if isinstance(seqs, int):
                parts_s.append(np.arange(seqs, seqs + count, dtype=np.int64))
            else:
                parts_s.append(seqs)
            parts_pid.append(np.full(count, pid, dtype=np.int64))
            parts_p.append(_object_column(payloads, count))
        self._chunks.clear()
        if len(parts_t) == 1:
            t, s, pid, p = parts_t[0], parts_s[0], parts_pid[0], parts_p[0]
        else:
            t = np.concatenate(parts_t)
            s = np.concatenate(parts_s)
            pid = np.concatenate(parts_pid)
            p = np.concatenate(parts_p)
        order = np.lexsort((s, t))
        self._pool_t = t[order]
        self._pool_s = s[order]
        self._pool_pid = pid[order]
        self._pool_p = p[order]
        self._pool_pos = 0
        self._stage_min = _INF
        self.batch_grand_sorts += 1

    def _flush_to_heap(self) -> None:
        """Move every staged/pooled entry onto the regular heap.

        Used when the batch backlog is too small to pay for numpy:
        sparse workloads then run at reference speed instead of doing a
        grand sort per handful of events.  Heap routing is always
        correct -- the merged loop fires heap entries in exact order.
        """
        heap = self._heap
        pops = self._pops
        pool_t = self._pool_t
        if pool_t is not None:
            for index in range(self._pool_pos, pool_t.shape[0]):
                time_us = float(pool_t[index])
                pid = int(self._pool_pid[index])
                payload = self._pool_p[index]
                if pid < 0:
                    fn, args = payload
                    heappush(heap, [time_us, int(self._pool_s[index]), fn, args, None])
                else:
                    heappush(
                        heap,
                        [
                            time_us,
                            int(self._pool_s[index]),
                            pops[pid]._fire_one,
                            (time_us, payload),
                            None,
                        ],
                    )
            self._pool_t = None
            self._pool_s = None
            self._pool_pid = None
            self._pool_p = None
            self._pool_pos = 0
        for index in range(len(self._stage_t)):
            time_us = self._stage_t[index]
            pid = self._stage_pid[index]
            payload = self._stage_p[index]
            if pid < 0:
                fn, args = payload
                heappush(heap, [time_us, self._stage_s[index], fn, args, None])
            else:
                heappush(
                    heap,
                    [
                        time_us,
                        self._stage_s[index],
                        pops[pid]._fire_one,
                        (time_us, payload),
                        None,
                    ],
                )
        self._stage_t = []
        self._stage_s = []
        self._stage_pid = []
        self._stage_p = []
        for times, seqs, pid, payloads in self._chunks:
            fire = pops[pid]._fire_one
            for j in range(times.shape[0]):
                time_us = float(times[j])
                seq = seqs + j if isinstance(seqs, int) else int(seqs[j])
                heappush(heap, [time_us, seq, fire, (time_us, payloads[j]), None])
        self._chunks.clear()
        self._stage_min = _INF

    def _cut_window(self) -> bool:
        """Slice the next window off the pool into ``self._segments``.

        Returns False when no batch work remains (possibly after
        spilling a too-small backlog onto the heap).
        """
        pool_t = self._pool_t
        pool_left = 0 if pool_t is None else pool_t.shape[0] - self._pool_pos
        backlog = pool_left + len(self._stage_t)
        if backlog < _MIN_BULK_SEGMENT:
            backlog += sum(c[0].shape[0] for c in self._chunks)
            if backlog < _MIN_BULK_SEGMENT:
                if backlog:
                    self._flush_to_heap()
                return False
        if pool_t is None or self._pool_pos >= pool_t.shape[0]:
            if not self._stage_t and not self._chunks:
                return False
            self._grand_sort(None)
            pool_t = self._pool_t
        pos = self._pool_pos
        total = pool_t.shape[0]
        end = pos + _WINDOW
        if end >= total:
            end = total
        else:
            tie = pool_t[end - 1]
            # never split a timestamp tie across windows: equal-time
            # entries must stay seq-ordered relative to each other
            while end < total and pool_t[end] == tie:
                end += 1
        boundary = float(pool_t[end - 1])
        if self._stage_min <= boundary:
            # Late stagers landed inside this window's span: fold the
            # unconsumed pool back in and re-sort everything.
            self.batch_refolds += 1
            self._grand_sort(pos)
            pool_t = self._pool_t
            pos = 0
            total = pool_t.shape[0]
            end = min(pos + _WINDOW, total)
            if end < total:
                tie = pool_t[end - 1]
                while end < total and pool_t[end] == tie:
                    end += 1
            boundary = float(pool_t[end - 1])
        self._pool_pos = end
        self._ceiling = boundary
        self.batch_windows += 1
        win_t = pool_t[pos:end]
        win_s = self._pool_s[pos:end]
        win_pid = self._pool_pid[pos:end]
        win_p = self._pool_p[pos:end]
        segments = self._segments
        segments.clear()
        self._seg_idx = 0
        bulk_mask = win_pid >= 0
        if not bulk_mask.any():
            segments.append(
                [_LIST, 0, win_t.tolist(), win_s.tolist(), None, win_p.tolist()]
            )
            return True
        if bulk_mask.all():
            if win_t.shape[0] >= _MIN_BULK_SEGMENT:
                segments.append([_ARRAY, 0, win_t, win_s, win_pid, win_p])
            else:
                segments.append(
                    [
                        _LIST,
                        0,
                        win_t.tolist(),
                        win_s.tolist(),
                        win_pid.tolist(),
                        win_p.tolist(),
                    ]
                )
            return True
        # Mixed window: split into alternating bulk / per-event runs.
        change = (np.flatnonzero(np.diff(bulk_mask)) + 1).tolist()
        starts = [0, *change]
        ends = [*change, win_t.shape[0]]
        for s0, e0 in zip(starts, ends):
            if bulk_mask[s0] and e0 - s0 >= _MIN_BULK_SEGMENT:
                segments.append(
                    [_ARRAY, 0, win_t[s0:e0], win_s[s0:e0], win_pid[s0:e0], win_p[s0:e0]]
                )
            else:
                pid_list = None if not bulk_mask[s0] else win_pid[s0:e0].tolist()
                segments.append(
                    [
                        _LIST,
                        0,
                        win_t[s0:e0].tolist(),
                        win_s[s0:e0].tolist(),
                        pid_list,
                        win_p[s0:e0].tolist(),
                    ]
                )
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event (batch or heap)."""
        if self._running:
            raise SimulationError("Simulator.step() is not reentrant")
        self._running = True
        try:
            return self._advance(None, 1, self.probe) > 0
        finally:
            self._running = False

    def run(
        self, until_us: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Run until all work drains, ``until_us``, or ``max_events``."""
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        probe = self.probe
        fired = 0
        if probe is not None:
            probe.begin_run(self.now)
        try:
            fired = self._advance(until_us, max_events, probe)
            if until_us is not None and self.now < until_us:
                self.now = until_us
        finally:
            self._running = False
            if probe is not None:
                probe.end_run(self.now, fired)
        return self.now

    def next_event_time(self) -> Optional[float]:
        """Earliest live event across heap, staged/pooled batches, and
        the active window's unconsumed segments.

        ``_advance`` can stop mid-window at ``until``, leaving entries
        behind the segment cursors; those are still pending work and
        must bound the next conservative window in
        :mod:`repro.sim.shard`, so they are scanned here alongside the
        heap head and the batch backlog.
        """
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._dead -= 1
        nxt = heap[0][0] if heap else _INF
        batch_next = self._next_batch_time()
        if batch_next < nxt:
            nxt = batch_next
        segments = self._segments
        for index in range(self._seg_idx, len(segments)):
            seg = segments[index]
            cursor = seg[1]
            times = seg[2]
            if seg[0] == _ARRAY:
                if cursor < times.shape[0]:
                    head = float(times[cursor])
                    if head < nxt:
                        nxt = head
                    break
            elif cursor < len(times):
                head = times[cursor]
                if head < nxt:
                    nxt = head
                break
        return None if nxt == _INF else float(nxt)

    def _drain_fast(self, until_us: Optional[float]) -> None:
        # run() dispatches here on the base class; route everything
        # through the batch-aware loop instead.
        self._advance(until_us, None, None)

    def _drain_counted(self, until_us: Optional[float], max_events: int) -> None:
        self._advance(until_us, max_events, None)

    def _advance(
        self, until_us: Optional[float], max_events: Optional[int], probe
    ) -> int:
        """The merged main loop: windows of batch work interleaved with
        the heap.  Returns the number of events fired."""
        heap = self._heap
        free = self._free
        refcount = getrefcount
        until = _INF if until_us is None else until_us
        remaining = _NO_BUDGET if max_events is None else max_events
        fired = 0
        segments = self._segments
        while remaining > 0:
            if self._seg_idx >= len(segments):
                # No active window: decide between the heap and a cut.
                while heap and heap[0][2] is None:
                    heappop(heap)
                    self._dead -= 1
                nxt = self._next_batch_time()
                if heap and heap[0][0] < nxt:
                    entry = heap[0]
                    time_us = entry[0]
                    if time_us > until:
                        break
                    heappop(heap)
                    fn = entry[2]
                    args = entry[3]
                    entry[2] = None
                    entry[3] = None
                    self._live -= 1
                    if time_us > self.now:
                        self.now = time_us
                    if probe is not None:
                        probe.count_fire(fn)
                    fn(*args)
                    event = entry[4]
                    if (
                        event is not None
                        and refcount(event) == 3
                        and len(free) < _FREE_LIST_CAP
                    ):
                        free.append(event)
                    fired += 1
                    remaining -= 1
                    continue
                if nxt == _INF:
                    break
                if nxt > until:
                    break
                if not heap and nxt > self.now:
                    # analytic idle fast-forward: nothing can fire in
                    # (now, nxt) -- jump straight there
                    self.batch_idle_jumps += 1
                    self.batch_idle_us += nxt - self.now
                self._cut_window()
                continue
            seg = segments[self._seg_idx]
            if seg[0] == _ARRAY:
                count = self._deliver_bulk(seg, until, remaining, probe)
                if seg[0] == _LIST:
                    # Demoted to a list segment: the per-event merged
                    # loop takes over from the same position.
                    continue
                if count:
                    fired += count
                    remaining -= count
                    if seg[1] >= seg[2].shape[0]:
                        self._seg_idx += 1
                    continue
                # Nothing deliverable and no demotion: only `until`
                # inside the segment stops us here.
                break
            count = self._run_list_segment(seg, until, remaining, probe)
            fired += count
            remaining -= count
            if seg[1] >= len(seg[2]):
                self._seg_idx += 1
                continue
            # Stopped early: only until can do that (budget handled by
            # the outer remaining check).
            if count == 0 and remaining > 0:
                break
        return fired

    def _deliver_bulk(self, seg, until: float, budget: int, probe) -> int:
        """Deliver as much of an array segment as is safe: everything
        strictly below the next live heap event and ``until``.

        When the deliverable region is thin (a heap event lands every
        few entries), the segment's remainder is demoted in place to a
        list segment: the per-event merged loop beats paying numpy
        slicing overhead per handful of events.  The caller re-checks
        ``seg[0]`` after every call.
        """
        cursor = seg[1]
        times = seg[2]
        total = times.shape[0]
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._dead -= 1
        limit = total
        if heap:
            limit = int(np.searchsorted(times, heap[0][0], side="left"))
        if until < _INF:
            by_until = int(np.searchsorted(times, until, side="right"))
            if by_until < limit:
                limit = by_until
        if cursor + budget < limit:
            limit = cursor + budget
        if limit < total and limit - cursor < _MIN_BULK_REGION:
            seg[0] = _LIST
            seg[1] = 0
            seg[2] = times[cursor:].tolist()
            seg[3] = seg[3][cursor:].tolist()
            seg[4] = seg[4][cursor:].tolist()
            seg[5] = seg[5][cursor:].tolist()
            self.batch_demotions += 1
            return 0
        if limit <= cursor:
            return 0
        region_t = times[cursor:limit]
        region_pid = seg[4][cursor:limit]
        region_p = seg[5][cursor:limit]
        count = limit - cursor
        self._live -= count
        region_end = float(region_t[-1])
        if region_end > self.now:
            self.now = region_end
        pops = self._pops
        pids = np.unique(region_pid)
        if pids.shape[0] == 1:
            pop = pops[int(pids[0])]
            pop.floor = region_end
            if probe is not None:
                count_fire = probe.count_fire
                fn = pop.fn
                for _ in range(count):
                    count_fire(fn)
            pop.fn(region_t, region_p)
        else:
            # deterministic cross-population order: registration order
            for pid in pids.tolist():
                mask = region_pid == pid
                pop = pops[pid]
                group_t = region_t[mask]
                pop.floor = float(group_t[-1])
                if probe is not None:
                    count_fire = probe.count_fire
                    fn = pop.fn
                    for _ in range(int(mask.sum())):
                        count_fire(fn)
                pop.fn(group_t, region_p[mask])
        seg[1] = limit
        self.batch_bulk_fired += count
        return count

    def _run_list_segment(self, seg, until: float, budget: int, probe) -> int:
        """Per-event merged loop over a list segment.  Fires batch
        entries and preceding heap events in exact (time, seq) order."""
        heap = self._heap
        free = self._free
        refcount = getrefcount
        run_t = seg[2]
        run_s = seg[3]
        run_pid = seg[4]
        run_p = seg[5]
        pops = self._pops
        index = seg[1]
        total = len(run_t)
        fired = 0
        while index < total and fired < budget:
            time_us = run_t[index]
            if heap:
                entry = heap[0]
                if entry[2] is None:
                    heappop(heap)
                    self._dead -= 1
                    continue
                htime = entry[0]
                if htime < time_us or (htime == time_us and entry[1] < run_s[index]):
                    if htime > until:
                        break
                    heappop(heap)
                    fn = entry[2]
                    args = entry[3]
                    entry[2] = None
                    entry[3] = None
                    self._live -= 1
                    if htime > self.now:
                        self.now = htime
                    if probe is not None:
                        probe.count_fire(fn)
                    fn(*args)
                    event = entry[4]
                    if (
                        event is not None
                        and refcount(event) == 3
                        and len(free) < _FREE_LIST_CAP
                    ):
                        free.append(event)
                    fired += 1
                    continue
            if time_us > until:
                break
            if time_us > self.now:
                self.now = time_us
            self._live -= 1
            payload = run_p[index]
            index += 1
            if run_pid is None or run_pid[index - 1] < 0:
                fn, args = payload
                if probe is not None:
                    probe.count_fire(fn)
                fn(*args)
            else:
                pop = pops[run_pid[index - 1]]
                pop.floor = time_us
                if probe is not None:
                    probe.count_fire(pop.fn)
                pop.fn((time_us,), (payload,))
                self.batch_bulk_fired += 1
                self.batch_scalar_fired -= 1
            self.batch_scalar_fired += 1
            fired += 1
        seg[1] = index
        return fired

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix: str = "kernel") -> None:
        """Expose ``kernel.batch_*`` gauges on an obs registry."""
        registry.gauge(f"{prefix}.batch_adds", lambda: self.batch_adds)
        registry.gauge(f"{prefix}.batch_undercuts", lambda: self.batch_undercuts)
        registry.gauge(f"{prefix}.batch_grand_sorts", lambda: self.batch_grand_sorts)
        registry.gauge(f"{prefix}.batch_windows", lambda: self.batch_windows)
        registry.gauge(f"{prefix}.batch_refolds", lambda: self.batch_refolds)
        registry.gauge(f"{prefix}.batch_demotions", lambda: self.batch_demotions)
        registry.gauge(f"{prefix}.batch_bulk_fired", lambda: self.batch_bulk_fired)
        registry.gauge(f"{prefix}.batch_scalar_fired", lambda: self.batch_scalar_fired)
        registry.gauge(f"{prefix}.batch_idle_jumps", lambda: self.batch_idle_jumps)
        registry.gauge(f"{prefix}.batch_idle_us", lambda: self.batch_idle_us)

    @property
    def batch_pending(self) -> int:
        """Entries currently staged/pooled in batch structures (O(1)
        for the staged part, O(1) pool arithmetic)."""
        staged = len(self._stage_t) + sum(c[0].shape[0] for c in self._chunks)
        pooled = 0
        if self._pool_t is not None:
            pooled = self._pool_t.shape[0] - self._pool_pos
        in_window = 0
        for seg in self._segments[self._seg_idx :]:
            length = seg[2].shape[0] if seg[0] == _ARRAY else len(seg[2])
            in_window += length - seg[1]
        return staged + pooled + in_window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchSimulator(now={self.now:.3f}us, pending={self.pending}, "
            f"batch_pending={self.batch_pending})"
        )
