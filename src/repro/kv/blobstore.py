"""Blobstore filesystem with replication and a read load balancer.

Files are sequences of micro blobs.  With replication enabled (paper
Section 4.3) every file keeps a primary and a shadow copy whose micro
blobs live on *different* backends: a write completes when both
replicas are written; a read is steered to the replica whose SSD
currently advertises the most credit (the least load).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.fabric.request import FabricRequest
from repro.kv.allocator import BlobAddress, LocalBlobAllocator
from repro.kv.backend import RemoteBackend

_file_ids = itertools.count(1)

DoneCallback = Callable[[], None]


class BlobFile:
    """One file: parallel lists of primary/shadow micro blobs."""

    def __init__(self, name: str, micro_pages: int, replicated: bool):
        self.name = name
        self.file_id = next(_file_ids)
        self.micro_pages = micro_pages
        self.replicated = replicated
        self.primary: List[BlobAddress] = []
        self.shadow: List[BlobAddress] = []

    @property
    def size_pages(self) -> int:
        return len(self.primary) * self.micro_pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlobFile({self.name}, {self.size_pages} pages, replicated={self.replicated})"


class Blobstore:
    """File API over micro blobs spread across remote backends."""

    def __init__(
        self,
        allocator: LocalBlobAllocator,
        backends: Dict[str, RemoteBackend],
        replicate: bool = True,
        load_balance_reads: bool = True,
    ):
        if replicate and len(backends) < 2:
            raise ValueError("replication needs at least two backends")
        self.allocator = allocator
        self.backends = backends
        self.replicate = replicate
        self.load_balance_reads = load_balance_reads
        self.files: Dict[str, BlobFile] = {}
        self.reads_to_shadow = 0
        self.reads_to_primary = 0

    # ------------------------------------------------------------------
    # File lifecycle
    # ------------------------------------------------------------------
    def create(self, name: str) -> BlobFile:
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        file = BlobFile(name, self.allocator.micro_pages, self.replicate)
        self.files[name] = file
        return file

    def delete(self, file: BlobFile) -> None:
        """Free the file's blobs.

        The address lists are intentionally left intact: an LSM read
        racing a compaction's table deletion may still have a probe in
        flight against the old file, and (as on a real device reading
        TRIMmed blocks) that read must resolve rather than crash.
        """
        for address in file.primary:
            self.backends[address.backend].trim(address.lba, address.npages)
            self.allocator.free_micro(address)
        for address in file.shadow:
            self.backends[address.backend].trim(address.lba, address.npages)
            self.allocator.free_micro(address)
        self.files.pop(file.name, None)

    def extend(self, file: BlobFile, npages: int) -> None:
        """Grow ``file`` until its capacity is at least ``npages``."""
        while file.size_pages < npages:
            primary = self.allocator.allocate_micro()
            file.primary.append(primary)
            if self.replicate:
                shadow = self.allocator.allocate_micro(exclude_backends={primary.backend})
                file.shadow.append(shadow)

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    def _segments(
        self, file: BlobFile, page_offset: int, npages: int
    ) -> List[Tuple[int, int, int]]:
        """Split a file range into (blob_index, offset_in_blob, npages)."""
        if page_offset < 0 or npages <= 0:
            raise ValueError("invalid file range")
        if page_offset + npages > file.size_pages:
            raise ValueError(
                f"range [{page_offset}, {page_offset + npages}) beyond "
                f"file size {file.size_pages}"
            )
        segments = []
        remaining = npages
        cursor = page_offset
        while remaining > 0:
            blob_index = cursor // file.micro_pages
            within = cursor % file.micro_pages
            take = min(remaining, file.micro_pages - within)
            segments.append((blob_index, within, take))
            cursor += take
            remaining -= take
        return segments

    def write(
        self, file: BlobFile, page_offset: int, npages: int, on_done: DoneCallback,
        priority: int = 0,
    ) -> None:
        """Write a range; completes when every replica write finishes."""
        segments = self._segments(file, page_offset, npages)
        copies = 2 if self.replicate else 1
        pending = {"count": len(segments) * copies}

        def one_done(request: FabricRequest) -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                on_done()

        for blob_index, within, take in segments:
            primary = file.primary[blob_index]
            self.backends[primary.backend].write(
                primary.lba + within, take, one_done, priority
            )
            if self.replicate:
                shadow = file.shadow[blob_index]
                self.backends[shadow.backend].write(
                    shadow.lba + within, take, one_done, priority
                )

    def read(
        self, file: BlobFile, page_offset: int, npages: int, on_done: DoneCallback,
        priority: int = 0,
    ) -> None:
        """Read a range, steering each segment to the best replica."""
        segments = self._segments(file, page_offset, npages)
        pending = {"count": len(segments)}

        def one_done(request: FabricRequest) -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                on_done()

        for blob_index, within, take in segments:
            address = self._pick_replica(file, blob_index)
            self.backends[address.backend].read(address.lba + within, take, one_done, priority)

    def _pick_replica(self, file: BlobFile, blob_index: int) -> BlobAddress:
        primary = file.primary[blob_index]
        if not (self.replicate and self.load_balance_reads):
            self.reads_to_primary += 1
            return primary
        shadow = file.shadow[blob_index]
        primary_load = self.backends[primary.backend].load_score
        shadow_load = self.backends[shadow.backend].load_score
        if shadow_load > primary_load:
            self.reads_to_primary += 1
            return primary
        if shadow_load < primary_load:
            self.reads_to_shadow += 1
            return shadow
        # Tied load scores: an unloaded (or uniformly loaded) rack
        # would otherwise send 100% of reads to primaries, understating
        # the load balancer.  Steer by cumulative reads so ties
        # alternate between the copies.
        if self.reads_to_shadow < self.reads_to_primary:
            self.reads_to_shadow += 1
            return shadow
        self.reads_to_primary += 1
        return primary
