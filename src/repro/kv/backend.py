"""Client-side handle to one remote SSD (NVMe-oF backend).

A :class:`RemoteBackend` wraps a tenant session, translates page-level
blob IO into fabric requests, and keeps the latest credit grant and
virtual view the target piggybacked on completions -- the signals the
allocator and the read load balancer consume (paper Sections 3.7/4.3).

An optional outstanding-IO cap provides the explicit *IO rate limiter*
for configurations whose client policy does not already do flow
control (the "vanilla" bars of Figure 13 run without it; the "+FC"
bars enable it via the credit policy).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.fabric.initiator import TenantSession
from repro.fabric.request import FabricRequest
from repro.ssd.commands import IoOp

IoCallback = Callable[[FabricRequest], None]


class RemoteBackend:
    """One (DB instance, remote SSD) pairing."""

    def __init__(self, name: str, session: TenantSession):
        self.name = name
        self.session = session
        #: Last credit amount granted by the target (0 = unknown).
        self.credit = 0
        #: Last per-SSD virtual view snapshot (None = not exposed).
        self.virtual_view: Optional[dict] = None
        self.reads = 0
        self.writes = 0
        self.trims = 0
        self.read_bytes = 0
        self.write_bytes = 0

    @property
    def outstanding(self) -> int:
        return self.session.inflight + self.session.queued

    @property
    def load_score(self) -> float:
        """Higher is *more* loaded; used to pick the least-loaded SSD.

        With credits exposed, the advertised headroom (credit minus
        what we already have outstanding) is the signal; otherwise fall
        back to raw outstanding IO.
        """
        if self.credit > 0:
            return self.outstanding - self.credit
        return float(self.outstanding)

    def read(self, lba: int, npages: int, on_complete: IoCallback, priority: int = 0) -> None:
        self.reads += 1
        self.read_bytes += npages * 4096
        self.session.submit(
            IoOp.READ, lba, npages, priority=priority, on_complete=self._wrap(on_complete)
        )

    def write(self, lba: int, npages: int, on_complete: IoCallback, priority: int = 0) -> None:
        self.writes += 1
        self.write_bytes += npages * 4096
        self.session.submit(
            IoOp.WRITE, lba, npages, priority=priority, on_complete=self._wrap(on_complete)
        )

    def trim(self, lba: int, npages: int) -> None:
        """Fire-and-forget deallocate of a freed blob's range."""
        self.trims += 1
        self.session.submit(IoOp.TRIM, lba, npages, on_complete=self._wrap(lambda req: None))

    def _wrap(self, on_complete: IoCallback) -> IoCallback:
        def observe(request: FabricRequest) -> None:
            if request.credit_grant > 0:
                self.credit = request.credit_grant
            if request.virtual_view is not None:
                self.virtual_view = request.virtual_view
            on_complete(request)

        return observe

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteBackend({self.name}, credit={self.credit}, out={self.outstanding})"
