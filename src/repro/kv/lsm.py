"""Log-structured merge tree over the blobstore (Appendix E).

The engine follows RocksDB's structure at a scale matched to the
simulated devices:

* **Memtable** -- recent updates, served from memory; a group-commit
  WAL makes each ``put`` durable (and is what back-pressures writers
  when the storage is congested).
* **SSTables** -- sorted runs persisted as blob files.  L0 tables may
  overlap; L1+ levels hold non-overlapping runs and grow by
  ``level_ratio`` per level.
* **Flush / compaction** -- when the memtable fills it flushes to L0;
  when L0 reaches the trigger (or a level overflows) a background
  compaction merges runs downward, issuing large sequential reads and
  writes -- the traffic that makes update-heavy YCSB workloads
  write-intensive.
* **Reads** -- memtable, then newest-to-oldest through the levels;
  per-table bloom filters skip almost all non-containing tables, so a
  point lookup typically costs one 4 KiB read.

Values carry sizes only (no payload bytes move through the simulator);
correctness is still testable because key membership is exact.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.kv.blobstore import BlobFile, Blobstore
from repro.kv.bloom import BloomFilter
from repro.sim.engine import Simulator

_table_ids = itertools.count(1)

PutCallback = Callable[[], None]
GetCallback = Callable[[bool], None]


@dataclass(frozen=True)
class LsmConfig:
    """Engine tuning (defaults scaled to the ~256 MiB simulated SSDs)."""

    record_bytes: int = 1024
    memtable_bytes: int = 256 * 1024
    #: Flush/compaction IO unit (pages).
    io_pages: int = 32
    l0_compaction_trigger: int = 4
    l0_stall_trigger: int = 12
    level_ratio: int = 4
    max_levels: int = 4
    bloom_fp_rate: float = 0.01
    #: WAL group-commit batch bound (pages).
    wal_batch_pages: int = 8
    #: CPU cost of a lookup served without IO (memtable hit, definite
    #: miss, in-memory scan).  Must be positive: a closed-loop client
    #: over a memtable-resident dataset would otherwise issue infinite
    #: operations without simulated time ever advancing.
    mem_read_us: float = 1.0

    def __post_init__(self) -> None:
        if self.record_bytes <= 0 or self.memtable_bytes < self.record_bytes:
            raise ValueError("invalid record/memtable sizes")
        if self.l0_stall_trigger < self.l0_compaction_trigger:
            raise ValueError("stall trigger must be >= compaction trigger")
        if self.level_ratio < 2 or self.max_levels < 2:
            raise ValueError("invalid level shape")
        if not 0.0 <= self.bloom_fp_rate < 1.0:
            raise ValueError("bloom FP rate must be in [0, 1)")
        if self.mem_read_us <= 0:
            raise ValueError("in-memory read cost must be positive")

    @property
    def records_per_page(self) -> int:
        return max(1, 4096 // self.record_bytes)


class SsTable:
    """One immutable sorted run with a per-table bloom filter."""

    def __init__(
        self, keys: List[int], file: BlobFile, level: int, bloom_fp_rate: float = 0.01
    ):
        self.table_id = next(_table_ids)
        self.keys = keys  # sorted
        self.keyset = frozenset(keys)
        self.bloom = BloomFilter.from_keys(keys, bloom_fp_rate)
        self.file = file
        self.level = level

    @property
    def min_key(self) -> int:
        return self.keys[0]

    @property
    def max_key(self) -> int:
        return self.keys[-1]

    @property
    def size_pages(self) -> int:
        return self.file.size_pages

    def covers(self, key: int) -> bool:
        return self.min_key <= key <= self.max_key

    def overlaps(self, other: "SsTable") -> bool:
        return self.min_key <= other.max_key and other.min_key <= self.max_key

    def page_of(self, key: int, records_per_page: int) -> int:
        index = bisect.bisect_left(self.keys, key)
        return index // records_per_page

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SsTable(#{self.table_id} L{self.level} [{self.min_key},{self.max_key}] n={len(self.keys)})"


@dataclass
class LsmStats:
    """Engine-level counters."""

    puts: int = 0
    gets: int = 0
    memtable_hits: int = 0
    table_reads: int = 0
    bloom_false_positives: int = 0
    flushes: int = 0
    compactions: int = 0
    stalled_puts: int = 0


class LsmTree:
    """One DB instance."""

    def __init__(
        self,
        name: str,
        store: Blobstore,
        sim: Simulator,
        config: Optional[LsmConfig] = None,
        rng: Optional[random.Random] = None,
    ):
        self.name = name
        self.store = store
        self.sim = sim
        self.config = config or LsmConfig()
        self.rng = rng or random.Random(0)
        self.memtable: Dict[int, bool] = {}
        self._memtable_bytes = 0
        self.immutable: Optional[Dict[int, bool]] = None
        self.levels: List[List[SsTable]] = [[] for _ in range(self.config.max_levels)]
        self.stats = LsmStats()
        # WAL state (group commit).
        self._wal_file = store.create(f"{name}/wal")
        store.extend(self._wal_file, self.config.io_pages)
        self._wal_cursor = 0
        self._wal_pending: Deque[Tuple[PutCallback, int]] = deque()
        self._wal_inflight = False
        # Flush / compaction / stall state.
        self._flushing = False
        self._compacting = False
        self._stall_queue: Deque[Tuple[int, PutCallback]] = deque()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: int, on_done: PutCallback) -> None:
        """Insert/update ``key``; ``on_done`` fires once WAL-durable."""
        if self._write_stalled():
            self.stats.stalled_puts += 1
            self._stall_queue.append((key, on_done))
            return
        self._apply_put(key, on_done)

    def _write_stalled(self) -> bool:
        return len(self.levels[0]) >= self.config.l0_stall_trigger or (
            self.immutable is not None and self._memtable_full()
        )

    def _memtable_full(self) -> bool:
        return self._memtable_bytes >= self.config.memtable_bytes

    def _apply_put(self, key: int, on_done: PutCallback) -> None:
        self.stats.puts += 1
        if key not in self.memtable:
            self._memtable_bytes += self.config.record_bytes
        self.memtable[key] = True
        self._wal_pending.append((on_done, key))
        self._wal_kick()
        if self._memtable_full() and self.immutable is None:
            self._rotate_memtable()

    # -- WAL group commit ------------------------------------------------
    def _wal_kick(self) -> None:
        if self._wal_inflight or not self._wal_pending:
            return
        config = self.config
        max_records = config.wal_batch_pages * config.records_per_page
        batch = [self._wal_pending.popleft() for _ in range(min(max_records, len(self._wal_pending)))]
        npages = max(
            1, (len(batch) * config.record_bytes + 4095) // 4096
        )
        if self._wal_cursor + npages > self._wal_file.size_pages:
            self._wal_cursor = 0  # circular log
        offset = self._wal_cursor
        self._wal_cursor += npages
        self._wal_inflight = True

        def committed() -> None:
            self._wal_inflight = False
            for on_done, _ in batch:
                on_done()
            self._wal_kick()

        self.store.write(self._wal_file, offset, npages, committed, priority=1)

    # -- memtable flush ---------------------------------------------------
    def _rotate_memtable(self) -> None:
        self.immutable = self.memtable
        self.memtable = {}
        self._memtable_bytes = 0
        if not self._flushing:
            self._start_flush()

    def _start_flush(self) -> None:
        assert self.immutable is not None
        self._flushing = True
        snapshot = self.immutable
        keys = sorted(snapshot)
        self.stats.flushes += 1
        self._write_table(
            keys, level=0, on_done=lambda table: self._flush_done(table)
        )

    def _flush_done(self, table: SsTable) -> None:
        self.levels[0].append(table)
        self.immutable = None
        self._flushing = False
        self._drain_stall_queue()
        if self._memtable_full():
            self._rotate_memtable()
        self._maybe_compact()

    def _drain_stall_queue(self) -> None:
        while self._stall_queue and not self._write_stalled():
            key, on_done = self._stall_queue.popleft()
            self._apply_put(key, on_done)

    # -- table writing ------------------------------------------------
    def _table_pages(self, nkeys: int) -> int:
        return max(1, (nkeys * self.config.record_bytes + 4095) // 4096)

    def _write_table(
        self, keys: List[int], level: int, on_done: Callable[[SsTable], None]
    ) -> None:
        """Persist a sorted run as a new blob file, chunk by chunk."""
        npages = self._table_pages(len(keys))
        file = self.store.create(f"{self.name}/sst-{next(_table_ids)}")
        self.store.extend(file, npages)
        table = SsTable(keys, file, level, bloom_fp_rate=self.config.bloom_fp_rate)
        config = self.config

        def write_chunk(offset: int) -> None:
            if offset >= npages:
                on_done(table)
                return
            take = min(config.io_pages, npages - offset)
            self.store.write(file, offset, take, lambda: write_chunk(offset + take))

        write_chunk(0)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _level_target_pages(self, level: int) -> int:
        base = self._table_pages(self.config.memtable_bytes // self.config.record_bytes)
        return base * (self.config.level_ratio ** level) * self.config.l0_compaction_trigger

    def _maybe_compact(self) -> None:
        if self._compacting:
            return
        if len(self.levels[0]) >= self.config.l0_compaction_trigger:
            self._start_compaction(0)
            return
        for level in range(1, self.config.max_levels - 1):
            used = sum(table.size_pages for table in self.levels[level])
            if used > self._level_target_pages(level):
                self._start_compaction(level)
                return

    def _start_compaction(self, level: int) -> None:
        self._compacting = True
        self.stats.compactions += 1
        if level == 0:
            sources = list(self.levels[0])
        else:
            sources = [self.levels[level][0]]
        next_level = min(level + 1, self.config.max_levels - 1)
        overlapping = [
            table
            for table in self.levels[next_level]
            if any(source.overlaps(table) for source in sources)
        ]
        inputs = sources + overlapping

        def merge_and_write() -> None:
            merged: set = set()
            for table in inputs:
                merged.update(table.keyset)
            keys = sorted(merged)
            if not keys:
                finish([])
                return
            self._write_table(keys, next_level, lambda table: finish([table]))

        def finish(new_tables: List[SsTable]) -> None:
            for table in sources:
                self.levels[level].remove(table)
            for table in overlapping:
                self.levels[next_level].remove(table)
            self.levels[next_level].extend(new_tables)
            self.levels[next_level].sort(key=lambda table: table.min_key)
            for table in inputs:
                self.store.delete(table.file)
            self._compacting = False
            self._drain_stall_queue()
            self._maybe_compact()

        self._read_tables_then(inputs, merge_and_write)

    def _read_tables_then(self, tables: List[SsTable], on_done: Callable[[], None]) -> None:
        """Sequentially read every input table (compaction ingest IO)."""
        pending = {"count": 0}
        started = {"all": False}

        def one_done() -> None:
            pending["count"] -= 1
            if pending["count"] == 0 and started["all"]:
                on_done()

        for table in tables:
            offset = 0
            while offset < table.size_pages:
                take = min(self.config.io_pages, table.size_pages - offset)
                pending["count"] += 1
                self.store.read(table.file, offset, take, one_done)
                offset += take
        started["all"] = True
        if pending["count"] == 0:
            on_done()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: int, on_done: GetCallback) -> None:
        """Point lookup; ``on_done(found)`` after any needed IO."""
        self.stats.gets += 1
        if key in self.memtable or (self.immutable is not None and key in self.immutable):
            self.stats.memtable_hits += 1
            self.sim.schedule(self.config.mem_read_us, on_done, True)
            return
        candidates = self._candidate_tables(key)
        self._probe(key, candidates, 0, on_done)

    def _candidate_tables(self, key: int) -> List[SsTable]:
        candidates = [table for table in reversed(self.levels[0]) if table.covers(key)]
        for level in range(1, self.config.max_levels):
            for table in self.levels[level]:
                if table.covers(key):
                    candidates.append(table)
                    break
        return candidates

    def _probe(self, key: int, tables: List[SsTable], index: int, on_done: GetCallback) -> None:
        while index < len(tables):
            table = tables[index]
            if not table.bloom.might_contain(key):
                # Definitely absent: the filter saves the data read.
                index += 1
                continue
            if key in table.keyset:
                self.stats.table_reads += 1
                page = table.page_of(key, self.config.records_per_page)
                self.store.read(table.file, page, 1, lambda: on_done(True), priority=1)
                return
            # Bloom false positive: a wasted data read, then move on.
            self.stats.bloom_false_positives += 1
            self.stats.table_reads += 1
            page = self.rng.randrange(table.size_pages)
            next_index = index + 1
            self.store.read(
                table.file,
                page,
                1,
                lambda: self._probe(key, tables, next_index, on_done),
                priority=1,
            )
            return
        self.sim.schedule(self.config.mem_read_us, on_done, False)

    # ------------------------------------------------------------------
    # Range scans (YCSB-E)
    # ------------------------------------------------------------------
    def scan(self, start_key: int, count: int, on_done: Callable[[List[int]], None]) -> None:
        """Return the ``count`` smallest keys >= ``start_key``.

        The key merge is computed from the in-memory indexes; each
        contributing SSTable is then read over the page span covering
        its contributed records (LSM scans are sequentialised range
        reads, which is why workload E is IO-heavy).
        """
        if count <= 0:
            raise ValueError("scan count must be positive")
        self.stats.gets += 1
        candidates: set = set()
        for source in (self.memtable, self.immutable or {}):
            for key in source:
                if key >= start_key:
                    candidates.add(key)
        touched_tables: List[Tuple[SsTable, int, int]] = []
        for level in self.levels:
            for table in level:
                if table.max_key < start_key:
                    continue
                first = bisect.bisect_left(table.keys, start_key)
                last = min(len(table.keys), first + count)
                if first >= len(table.keys):
                    continue
                for key in table.keys[first:last]:
                    candidates.add(key)
                touched_tables.append((table, first, last))
        result = sorted(candidates)[:count]
        if not result:
            self.sim.schedule(self.config.mem_read_us, on_done, [])
            return
        # Read the page span each contributing table covers.
        pending = {"count": 0}
        started = {"all": False}

        def one_done() -> None:
            pending["count"] -= 1
            if pending["count"] == 0 and started["all"]:
                on_done(result)

        upper = result[-1]
        per_page = self.config.records_per_page
        for table, first, last in touched_tables:
            # Clip the span to keys that made the final result.
            last = bisect.bisect_right(table.keys, upper, first, last)
            if last <= first:
                continue
            first_page = first // per_page
            last_page = (last - 1) // per_page
            npages = min(last_page - first_page + 1, table.size_pages - first_page)
            if npages <= 0:
                continue
            pending["count"] += 1
            self.stats.table_reads += 1
            self.store.read(table.file, first_page, npages, one_done)
        started["all"] = True
        if pending["count"] == 0:
            self.sim.schedule(self.config.mem_read_us, on_done, result)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        """No background work in flight or queued.

        A departing tenant must wait for this before deleting its
        files: a mid-flight flush or compaction still references (and
        will itself delete) table files, so tearing them down early
        would double-free their blobs.
        """
        return not (
            self._flushing
            or self._compacting
            or self._wal_inflight
            or self._wal_pending
            or self._stall_queue
            or self.immutable is not None
        )

    @property
    def total_tables(self) -> int:
        return sum(len(level) for level in self.levels)

    def contains(self, key: int) -> bool:
        """Synchronous membership check (tests/verification only)."""
        if key in self.memtable:
            return True
        if self.immutable is not None and key in self.immutable:
            return True
        return any(key in table.keyset for level in self.levels for table in level)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "/".join(str(len(level)) for level in self.levels)
        return f"LsmTree({self.name}, mem={len(self.memtable)} keys, levels={shape})"
