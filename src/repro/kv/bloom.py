"""A real Bloom filter for SSTable membership tests.

RocksDB attaches a bloom filter to every SSTable so point lookups skip
tables that cannot contain the key; the false-positive rate determines
how many wasted data reads a miss costs.  This is a standard k-hash
bit-array implementation (double hashing over two 64-bit halves of a
SHA-based mix), sized from a target false-positive rate.
"""

from __future__ import annotations

import math
from typing import Iterable

#: 64-bit mixing constants (splitmix64 finalizer).
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = 0xFFFFFFFFFFFFFFFF


def _splitmix64(value: int) -> int:
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * _MIX1) & _MASK
    value = ((value ^ (value >> 27)) * _MIX2) & _MASK
    return value ^ (value >> 31)


class BloomFilter:
    """Fixed-size Bloom filter over integer keys."""

    def __init__(self, expected_items: int, fp_rate: float = 0.01):
        if expected_items <= 0:
            raise ValueError("expected item count must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("false-positive rate must be in (0, 1)")
        self.expected_items = expected_items
        self.fp_rate = fp_rate
        # Standard sizing: m = -n ln(p) / (ln 2)^2, k = (m/n) ln 2.
        bits = max(8, int(-expected_items * math.log(fp_rate) / (math.log(2) ** 2)))
        self.num_bits = bits
        self.num_hashes = max(1, round(bits / expected_items * math.log(2)))
        self._bits = bytearray((bits + 7) // 8)
        self.items_added = 0

    def _positions(self, key: int) -> Iterable[int]:
        # Kirsch-Mitzenmacher double hashing: g_i = h1 + i*h2.
        h1 = _splitmix64(key)
        h2 = _splitmix64(h1) | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: int) -> None:
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)
        self.items_added += 1

    def might_contain(self, key: int) -> bool:
        """False means definitely absent; True means probably present."""
        return all(
            self._bits[position >> 3] & (1 << (position & 7))
            for position in self._positions(key)
        )

    @classmethod
    def from_keys(cls, keys, fp_rate: float = 0.01) -> "BloomFilter":
        bloom = cls(max(1, len(keys)), fp_rate)
        for key in keys:
            bloom.add(key)
        return bloom

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(bits={self.num_bits}, k={self.num_hashes}, "
            f"items={self.items_added})"
        )
