"""YCSB driver for one LSM instance.

Runs the paper's Section 5.6 methodology: load ``record_count``
records, then issue the workload mix closed-loop at a configurable
concurrency, recording per-operation latency (reads and updates
separately -- the figures report read latency) and total throughput.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.kv.lsm import LsmTree
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.throughput import ThroughputMonitor
from repro.workloads.ycsb import YcsbOp, YcsbSpec, YcsbWorkloadGenerator


class YcsbRunner:
    """Closed-loop YCSB client for one DB instance."""

    def __init__(
        self,
        tree: LsmTree,
        spec: YcsbSpec,
        record_count: int,
        rng: random.Random,
        concurrency: int = 4,
    ):
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        self.tree = tree
        self.sim = tree.sim
        self.spec = spec
        self.record_count = record_count
        self.concurrency = concurrency
        self.generator = YcsbWorkloadGenerator(spec, record_count, rng)
        self.read_latency = LatencyHistogram()
        self.update_latency = LatencyHistogram()
        self.ops = ThroughputMonitor()
        self.running = False
        self.loaded = False

    # ------------------------------------------------------------------
    # Load phase
    # ------------------------------------------------------------------
    def load(self, on_done: Callable[[], None], batch: int = 8) -> None:
        """Insert all records (the YCSB load phase), then ``on_done``."""
        state = {"next": 0, "inflight": 0, "done": False}

        def pump() -> None:
            while state["next"] < self.record_count and state["inflight"] < batch:
                key = state["next"]
                state["next"] += 1
                state["inflight"] += 1
                self.tree.put(key, one_done)
            if (
                state["next"] >= self.record_count
                and state["inflight"] == 0
                and not state["done"]
            ):
                state["done"] = True
                self.loaded = True
                on_done()

        def one_done() -> None:
            state["inflight"] -= 1
            pump()

        pump()

    # ------------------------------------------------------------------
    # Run phase
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.ops.start(self.sim.now)
        for _ in range(self.concurrency):
            self._next_op()

    def stop(self) -> None:
        self.running = False

    def begin_measurement(self) -> None:
        self.ops.start(self.sim.now)
        self.read_latency = LatencyHistogram()
        self.update_latency = LatencyHistogram()

    def _next_op(self) -> None:
        if not self.running:
            return
        op, key = self.generator.next_op()
        start = self.sim.now
        if op is YcsbOp.READ:
            self.tree.get(key, lambda found: self._op_done(start, self.read_latency))
        elif op in (YcsbOp.UPDATE, YcsbOp.INSERT):
            self.tree.put(key, lambda: self._op_done(start, self.update_latency))
        elif op is YcsbOp.SCAN:
            length = self.generator.next_scan_length()
            self.tree.scan(key, length, lambda keys: self._op_done(start, self.read_latency))
        else:  # read-modify-write: a get whose completion chains a put.
            self.tree.get(
                key,
                lambda found: self.tree.put(
                    key, lambda: self._op_done(start, self.update_latency)
                ),
            )

    def _op_done(self, start: float, histogram: LatencyHistogram) -> None:
        histogram.record(self.sim.now - start)
        self.ops.record(self.sim.now, 1)
        self._next_op()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self) -> Dict[str, object]:
        now = self.sim.now
        return {
            "name": self.tree.name,
            "workload": self.spec.name,
            "kops": self.ops.iops(now) / 1000.0,
            "read_latency": self.read_latency.summary(),
            "update_latency": self.update_latency.summary(),
            "lsm": {
                "flushes": self.tree.stats.flushes,
                "compactions": self.tree.stats.compactions,
                "memtable_hits": self.tree.stats.memtable_hits,
                "table_reads": self.tree.stats.table_reads,
                "stalled_puts": self.tree.stats.stalled_puts,
            },
        }
