"""Hierarchical blob allocator (paper Section 4.3).

Two levels:

* the **global allocator** owns each backend's storage region, divides
  it into *mega blobs* (large contiguous chunks; 4 GB in the paper,
  scaled down here with the device), and tracks availability with a
  bitmap;
* each DB instance runs a **local allocator** that carves mega blobs
  into *micro blobs* (256 KiB) and maintains a free list, only calling
  into the global allocator when its local pool runs dry.

Both levels are load-aware: given a choice of backends, they pick the
one whose SSD currently advertises the most credit (the least load).

Reclamation closes the loop rack-wide: the local allocator tracks
which mega every micro blob was carved from, and the moment a mega's
micros are all free again it is *coalesced* -- pulled out of the local
free pool and handed back to the global allocator -- so file churn
(LSM compaction deletes, tenant departure) returns capacity to the
rack instead of pinning every instance at its high-water mark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.workloads.patterns import AddressRegion


@dataclass(frozen=True)
class BlobAddress:
    """<NVMe transport identifier, start LBA, LBA count> of one blob."""

    backend: str
    lba: int
    npages: int

    def __post_init__(self) -> None:
        if self.lba < 0 or self.npages <= 0:
            raise ValueError("invalid blob address")


class _BackendPool:
    """Bitmap of mega-blob slots within one backend's region."""

    def __init__(self, region: AddressRegion, mega_pages: int):
        self.region = region
        self.mega_pages = mega_pages
        self.slots = region.npages // mega_pages
        if self.slots == 0:
            raise ValueError("region smaller than one mega blob")
        self.free = [True] * self.slots

    def allocate(self) -> Optional[int]:
        for index, available in enumerate(self.free):
            if available:
                self.free[index] = False
                return self.region.start + index * self.mega_pages
        return None

    def release(self, lba: int) -> None:
        index, misalignment = divmod(lba - self.region.start, self.mega_pages)
        if misalignment:
            # A misaligned free would flip a *neighboring* slot's bit
            # (integer division rounds toward the slot below), silently
            # corrupting the bitmap; reject it at the boundary instead.
            raise ValueError(
                f"misaligned mega blob free at lba {lba}: "
                f"{misalignment} pages past a {self.mega_pages}-page slot boundary"
            )
        if not 0 <= index < self.slots or self.free[index]:
            raise ValueError(f"bad mega blob free at lba {lba}")
        self.free[index] = True

    @property
    def available(self) -> int:
        return sum(self.free)


class GlobalBlobAllocator:
    """Rack-scale mega-blob allocation across a pool of backends."""

    def __init__(self, mega_pages: int = 2048, load_of: Optional[Callable[[str], float]] = None):
        """``load_of(backend)`` returns a load score (lower = less
        loaded); defaults to round-robin-ish zero load."""
        if mega_pages <= 0:
            raise ValueError("mega blob size must be positive")
        self.mega_pages = mega_pages
        self.load_of = load_of or (lambda backend: 0.0)
        self._pools: Dict[str, _BackendPool] = {}
        #: Lifetime counters (reclamation observability).
        self.megas_allocated = 0
        self.megas_freed = 0

    def register_backend(self, name: str, region: AddressRegion) -> None:
        if name in self._pools:
            raise ValueError(f"backend {name!r} already registered")
        self._pools[name] = _BackendPool(region, self.mega_pages)

    @property
    def backends(self) -> List[str]:
        return list(self._pools)

    def allocate_mega(self, exclude: Optional[set] = None) -> BlobAddress:
        """Allocate one mega blob from the least-loaded backend."""
        candidates = [
            name
            for name, pool in self._pools.items()
            if pool.available > 0 and (exclude is None or name not in exclude)
        ]
        if not candidates:
            raise RuntimeError("global blob pool exhausted")
        best = min(candidates, key=self.load_of)
        lba = self._pools[best].allocate()
        assert lba is not None
        self.megas_allocated += 1
        return BlobAddress(best, lba, self.mega_pages)

    def free_mega(self, address: BlobAddress) -> None:
        self._pools[address.backend].release(address.lba)
        self.megas_freed += 1

    def available_megas(self, backend: str) -> int:
        return self._pools[backend].available

    @property
    def total_available_megas(self) -> int:
        """Rack-wide mega blobs still unallocated (occupancy gauge)."""
        return sum(pool.available for pool in self._pools.values())

    @property
    def total_megas(self) -> int:
        return sum(pool.slots for pool in self._pools.values())


class LocalBlobAllocator:
    """Per-DB micro-blob allocation over locally held mega blobs."""

    def __init__(self, global_allocator: GlobalBlobAllocator, micro_pages: int = 64):
        if micro_pages <= 0:
            raise ValueError("micro blob size must be positive")
        if global_allocator.mega_pages % micro_pages != 0:
            raise ValueError("mega blob size must be a multiple of the micro blob size")
        self.global_allocator = global_allocator
        self.micro_pages = micro_pages
        self.micros_per_mega = global_allocator.mega_pages // micro_pages
        #: Free micro blobs, grouped per backend for placement control.
        self._free: Dict[str, List[BlobAddress]] = {}
        #: (backend, mega lba) -> the held mega's address.
        self._held: Dict[Tuple[str, int], BlobAddress] = {}
        #: (backend, mega lba) -> lbas of that mega's *free* micros.
        self._free_in_mega: Dict[Tuple[str, int], Set[int]] = {}
        #: (backend, micro lba) -> owning mega key, for every micro
        #: (free or live) carved from a currently held mega.
        self._mega_of: Dict[Tuple[str, int], Tuple[str, int]] = {}
        #: Lifetime counters (reclamation observability).
        self.megas_acquired = 0
        self.megas_released = 0

    def _refill(self, exclude: Optional[set] = None) -> None:
        mega = self.global_allocator.allocate_mega(exclude)
        key = (mega.backend, mega.lba)
        self._held[key] = mega
        self.megas_acquired += 1
        free_lbas = self._free_in_mega[key] = set()
        pieces = self._free.setdefault(mega.backend, [])
        for offset in range(0, mega.npages, self.micro_pages):
            lba = mega.lba + offset
            pieces.append(BlobAddress(mega.backend, lba, self.micro_pages))
            free_lbas.add(lba)
            self._mega_of[(mega.backend, lba)] = key

    def allocate_micro(
        self, exclude_backends: Optional[set] = None, prefer_least_loaded: bool = True
    ) -> BlobAddress:
        """One micro blob, optionally avoiding some backends (replica
        placement needs two *different* backends)."""
        exclude = exclude_backends or set()
        candidates = [name for name, pool in self._free.items() if pool and name not in exclude]
        if not candidates:
            self._refill(exclude)
            candidates = [
                name for name, pool in self._free.items() if pool and name not in exclude
            ]
        if prefer_least_loaded:
            best = min(candidates, key=self.global_allocator.load_of)
        else:
            best = candidates[0]
        micro = self._free[best].pop()
        self._free_in_mega[self._mega_of[(micro.backend, micro.lba)]].discard(micro.lba)
        return micro

    def free_micro(self, address: BlobAddress) -> None:
        key = self._mega_of.get((address.backend, address.lba))
        if key is None:
            raise ValueError(
                f"{address} is not a live micro blob of this allocator "
                "(double free, or its mega was already reclaimed)"
            )
        free_lbas = self._free_in_mega[key]
        if address.lba in free_lbas:
            raise ValueError(f"double free of micro blob {address}")
        free_lbas.add(address.lba)
        if len(free_lbas) == self.micros_per_mega:
            self._release_mega(key)
        else:
            self._free.setdefault(address.backend, []).append(address)

    def _release_mega(self, key: Tuple[str, int]) -> None:
        """Coalesce a wholly-free mega and hand it back to the rack."""
        backend, _ = key
        free_lbas = self._free_in_mega.pop(key)
        mega = self._held.pop(key)
        pool = self._free.get(backend)
        if pool:
            self._free[backend] = [
                micro for micro in pool if self._mega_of.get((backend, micro.lba)) != key
            ]
        for lba in free_lbas:
            del self._mega_of[(backend, lba)]
        self.global_allocator.free_mega(mega)
        self.megas_released += 1

    def release_all(self) -> int:
        """Return every held mega to the global allocator.

        Called when a DB instance departs.  All of its micro blobs must
        have been freed first (file deletion does that); a live micro
        means a leak in the caller, so it raises rather than silently
        recycling storage that is still referenced.
        """
        live = self.live_micros
        if live:
            raise RuntimeError(
                f"cannot release mega blobs: {live} micro blobs still live"
            )
        released = 0
        for key in sorted(self._held):
            self._release_mega(key)
            released += 1
        return released

    @property
    def free_micros(self) -> int:
        return sum(len(pool) for pool in self._free.values())

    @property
    def held_megas(self) -> int:
        return len(self._held)

    @property
    def live_micros(self) -> int:
        """Micro blobs handed out and not yet freed."""
        return self.held_megas * self.micros_per_mega - sum(
            len(lbas) for lbas in self._free_in_mega.values()
        )
