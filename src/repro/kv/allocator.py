"""Hierarchical blob allocator (paper Section 4.3).

Two levels:

* the **global allocator** owns each backend's storage region, divides
  it into *mega blobs* (large contiguous chunks; 4 GB in the paper,
  scaled down here with the device), and tracks availability with a
  bitmap;
* each DB instance runs a **local allocator** that carves mega blobs
  into *micro blobs* (256 KiB) and maintains a free list, only calling
  into the global allocator when its local pool runs dry.

Both levels are load-aware: given a choice of backends, they pick the
one whose SSD currently advertises the most credit (the least load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.workloads.patterns import AddressRegion


@dataclass(frozen=True)
class BlobAddress:
    """<NVMe transport identifier, start LBA, LBA count> of one blob."""

    backend: str
    lba: int
    npages: int

    def __post_init__(self) -> None:
        if self.lba < 0 or self.npages <= 0:
            raise ValueError("invalid blob address")


class _BackendPool:
    """Bitmap of mega-blob slots within one backend's region."""

    def __init__(self, region: AddressRegion, mega_pages: int):
        self.region = region
        self.mega_pages = mega_pages
        self.slots = region.npages // mega_pages
        if self.slots == 0:
            raise ValueError("region smaller than one mega blob")
        self.free = [True] * self.slots

    def allocate(self) -> Optional[int]:
        for index, available in enumerate(self.free):
            if available:
                self.free[index] = False
                return self.region.start + index * self.mega_pages
        return None

    def release(self, lba: int) -> None:
        index = (lba - self.region.start) // self.mega_pages
        if not 0 <= index < self.slots or self.free[index]:
            raise ValueError(f"bad mega blob free at lba {lba}")
        self.free[index] = True

    @property
    def available(self) -> int:
        return sum(self.free)


class GlobalBlobAllocator:
    """Rack-scale mega-blob allocation across a pool of backends."""

    def __init__(self, mega_pages: int = 2048, load_of: Optional[Callable[[str], float]] = None):
        """``load_of(backend)`` returns a load score (lower = less
        loaded); defaults to round-robin-ish zero load."""
        if mega_pages <= 0:
            raise ValueError("mega blob size must be positive")
        self.mega_pages = mega_pages
        self.load_of = load_of or (lambda backend: 0.0)
        self._pools: Dict[str, _BackendPool] = {}

    def register_backend(self, name: str, region: AddressRegion) -> None:
        if name in self._pools:
            raise ValueError(f"backend {name!r} already registered")
        self._pools[name] = _BackendPool(region, self.mega_pages)

    @property
    def backends(self) -> List[str]:
        return list(self._pools)

    def allocate_mega(self, exclude: Optional[set] = None) -> BlobAddress:
        """Allocate one mega blob from the least-loaded backend."""
        candidates = [
            name
            for name, pool in self._pools.items()
            if pool.available > 0 and (exclude is None or name not in exclude)
        ]
        if not candidates:
            raise RuntimeError("global blob pool exhausted")
        best = min(candidates, key=self.load_of)
        lba = self._pools[best].allocate()
        assert lba is not None
        return BlobAddress(best, lba, self.mega_pages)

    def free_mega(self, address: BlobAddress) -> None:
        self._pools[address.backend].release(address.lba)

    def available_megas(self, backend: str) -> int:
        return self._pools[backend].available


class LocalBlobAllocator:
    """Per-DB micro-blob allocation over locally held mega blobs."""

    def __init__(self, global_allocator: GlobalBlobAllocator, micro_pages: int = 64):
        if micro_pages <= 0:
            raise ValueError("micro blob size must be positive")
        if global_allocator.mega_pages % micro_pages != 0:
            raise ValueError("mega blob size must be a multiple of the micro blob size")
        self.global_allocator = global_allocator
        self.micro_pages = micro_pages
        #: Free micro blobs, grouped per backend for placement control.
        self._free: Dict[str, List[BlobAddress]] = {}
        self._held_megas: List[BlobAddress] = []

    def _refill(self, exclude: Optional[set] = None) -> None:
        mega = self.global_allocator.allocate_mega(exclude)
        self._held_megas.append(mega)
        pieces = self._free.setdefault(mega.backend, [])
        for offset in range(0, mega.npages, self.micro_pages):
            pieces.append(BlobAddress(mega.backend, mega.lba + offset, self.micro_pages))

    def allocate_micro(
        self, exclude_backends: Optional[set] = None, prefer_least_loaded: bool = True
    ) -> BlobAddress:
        """One micro blob, optionally avoiding some backends (replica
        placement needs two *different* backends)."""
        exclude = exclude_backends or set()
        candidates = [name for name, pool in self._free.items() if pool and name not in exclude]
        if not candidates:
            self._refill(exclude)
            candidates = [
                name for name, pool in self._free.items() if pool and name not in exclude
            ]
        if prefer_least_loaded:
            best = min(candidates, key=self.global_allocator.load_of)
        else:
            best = candidates[0]
        return self._free[best].pop()

    def free_micro(self, address: BlobAddress) -> None:
        self._free.setdefault(address.backend, []).append(address)

    @property
    def free_micros(self) -> int:
        return sum(len(pool) for pool in self._free.values())
