"""LSM key-value store over a blobstore (the paper's RocksDB case study).

Section 4.3 ports RocksDB onto a blobstore filesystem spread over a
pool of NVMe-oF backends, with three Gimbal-aware optimisations:

* a **hierarchical blob allocator** (rack-level mega blobs, local
  micro blobs) that picks the least-loaded SSD by credit
  (:mod:`repro.kv.allocator`),
* an **IO rate limiter** driven by the credit-based flow control
  (inherent in the tenant sessions' :class:`CreditClientPolicy`, with
  an explicit outstanding-IO limiter for non-Gimbal configurations;
  :mod:`repro.kv.backend`),
* a **replicated blobstore with a read load balancer** that steers
  each read to the replica whose SSD currently advertises more credit
  (:mod:`repro.kv.blobstore`).

:mod:`repro.kv.lsm` implements the log-structured merge tree itself
(memtable, sorted-run SSTables, levelled compaction, bloom-filtered
reads), and :mod:`repro.kv.runner` drives it with YCSB workloads.
"""

from repro.kv.allocator import BlobAddress, GlobalBlobAllocator, LocalBlobAllocator
from repro.kv.backend import RemoteBackend
from repro.kv.blobstore import BlobFile, Blobstore
from repro.kv.lsm import LsmConfig, LsmTree
from repro.kv.runner import YcsbRunner

__all__ = [
    "BlobAddress",
    "GlobalBlobAllocator",
    "LocalBlobAllocator",
    "RemoteBackend",
    "BlobFile",
    "Blobstore",
    "LsmConfig",
    "LsmTree",
    "YcsbRunner",
]
