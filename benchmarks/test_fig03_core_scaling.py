"""Benchmark: regenerate Figure 3 (throughput vs core count)."""

from conftest import run_once

from repro.harness.experiments import fig03_core_scaling as experiment


def test_fig03(benchmark):
    results = run_once(
        benchmark, experiment.run, measure_us=200_000.0, core_counts=(1, 2, 3, 4)
    )
    print()
    print(experiment.summarize(results))
    rows = {(r["host"], r["op"], r["cores"]): r["kiops"] for r in results["rows"]}
    # Paper shape 1: the server saturates 4KB reads with ~2 cores.
    assert rows[("server", "rnd-read", 2)] > 0.95 * rows[("server", "rnd-read", 4)]
    # Paper shape 2: the SmartNIC needs ~3 wimpy cores for the same load.
    assert rows[("smartnic", "rnd-read", 1)] < 0.6 * rows[("smartnic", "rnd-read", 4)]
    assert rows[("smartnic", "rnd-read", 3)] > 0.75 * rows[("smartnic", "rnd-read", 4)]
    # Paper shape 3: with enough cores both hosts reach the storage limit.
    assert rows[("smartnic", "rnd-read", 4)] > 0.85 * rows[("server", "rnd-read", 4)]
