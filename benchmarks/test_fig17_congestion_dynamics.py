"""Benchmark: regenerate Figure 17 (latency impulse under rising load)."""

from conftest import run_once

from repro.harness.experiments import fig17_congestion_dynamics as experiment


def test_fig17(benchmark):
    results = run_once(benchmark, experiment.run, phase_us=300_000.0, steps=5)
    print()
    print(experiment.summarize(results))
    latency_4k = results["latency_4k"]
    bandwidth = results["bandwidth_mbps"]
    assert latency_4k and bandwidth
    # Paper shape 1: latency at the end (overloaded) is several times
    # the unloaded start.
    early = latency_4k[1][1]
    late = max(v for _, v in latency_4k[-5:])
    assert late > 3.0 * early
    # Paper shape 2: bandwidth saturates -- the last phase adds load but
    # little throughput.
    phase = 300_000.0
    def mean_in(series, lo, hi):
        values = [v for t, v in series if lo <= t < hi]
        return sum(values) / len(values)

    second_last = mean_in(bandwidth, 3 * phase, 4 * phase)
    last = mean_in(bandwidth, 4 * phase, 5 * phase)
    assert last < 1.3 * second_last
