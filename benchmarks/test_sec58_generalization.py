"""Benchmark: regenerate Section 5.8 (generalisation to the Intel P3600)."""

from conftest import run_once

from repro.harness.experiments import sec58_generalization as experiment


def test_sec58(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        measure_us=800_000.0,
        warmup_us=400_000.0,
        workers_per_class=8,
    )
    print()
    print(experiment.summarize(results))
    rows = {r["condition"]: r for r in results["rows"]}
    # Paper shape: Gimbal adapts to the different device -- each class's
    # f-Util stays within a sane fairness band on both conditions
    # (paper: 0.58-0.90 across the four cells).
    for condition in ("clean", "fragmented"):
        row = rows[condition]
        assert 0.15 < row["read_futil"] < 3.0
        assert 0.15 < row["write_futil"] < 3.0
        # Neither class is starved outright.
        assert row["read_mbps"] > 25.0
        assert row["write_mbps"] > 25.0
