"""Benchmark: regenerate Figure 2 (unloaded latency, server vs SmartNIC)."""

from conftest import run_once

from repro.harness.experiments import fig02_unloaded_latency as experiment


def test_fig02(benchmark):
    results = run_once(benchmark, experiment.run, measure_us=150_000.0)
    print()
    print(experiment.summarize(results))
    rows = {(r["host"], r["op"], r["size_kb"]): r["avg_latency_us"] for r in results["rows"]}
    # Paper shape 1: latency grows with IO size on both hosts.
    assert rows[("smartnic", "rnd-read", 256)] > rows[("smartnic", "rnd-read", 4)]
    # Paper shape 2: the SmartNIC penalty is small for 4KB reads...
    small_gap = rows[("smartnic", "rnd-read", 4)] / rows[("server", "rnd-read", 4)]
    assert small_gap < 1.10
    # ...and grows for large IOs (paper: ~20% at 128/256KB).
    large_gap = rows[("smartnic", "rnd-read", 256)] / rows[("server", "rnd-read", 256)]
    assert large_gap > small_gap
