"""Benchmark: regenerate Figure 7 (fairness across mixed workloads)."""

from conftest import run_once

from repro.harness.experiments import fig07_fairness as experiment


def futil_spread(rows, sub, scheme):
    values = [r["f_util"] for r in rows if r["sub"] == sub and r["scheme"] == scheme]
    return max(values) - min(values)


def test_fig07(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        measure_us=900_000.0,
        warmup_us=500_000.0,
        workers_per_class=16,
    )
    print()
    print(experiment.summarize(results))
    rows = results["rows"]

    def cell(sub, scheme, cls):
        for r in rows:
            if r["sub"] == sub and r["scheme"] == scheme and r["class"] == cls:
                return r
        raise KeyError((sub, scheme, cls))

    # (a) Mixed sizes on clean: Gimbal's per-class f-Utils sit far
    # closer to 1 than the schemes with no per-IO cost normalisation
    # (paper: x8.7 less utilisation deviation than FlashFQ, x6.4 less
    # than Parda -- under those schemes the 128KB class grabs several
    # times its fair share).
    assert futil_spread(rows, "a", "gimbal") < 0.5 * futil_spread(rows, "a", "flashfq")
    assert futil_spread(rows, "a", "gimbal") < 0.7 * futil_spread(rows, "a", "parda")
    assert cell("a", "flashfq", "128KB")["f_util"] > 2.0
    assert abs(cell("a", "gimbal", "128KB")["f_util"] - 1.0) < 0.6
    # (c) Fragmented R/W: Gimbal's class f-Utils straddle 1 more tightly
    # than Parda's, whose reads starve (paper: x330 better deviation).
    assert futil_spread(rows, "c", "gimbal") < futil_spread(rows, "c", "parda")
    parda_read = cell("c", "parda", "read")["f_util"]
    gimbal_read = cell("c", "gimbal", "read")["f_util"]
    assert parda_read < 0.25 * gimbal_read
    # (b) Clean R/W: ReFlex write f-Util collapses versus Gimbal's.
    assert cell("b", "reflex", "write")["f_util"] < 0.5 * cell("b", "gimbal", "write")["f_util"]
