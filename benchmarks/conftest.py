"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down measurement window (see DESIGN.md's per-experiment index)
and prints the corresponding rows/series, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation.  Each benchmark also asserts the
paper's qualitative shape (who wins, roughly by how much), making the
suite a regression harness for the reproduction itself.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
