"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down measurement window (see DESIGN.md's per-experiment index)
and prints the corresponding rows/series, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation.  Each benchmark also asserts the
paper's qualitative shape (who wins, roughly by how much), making the
suite a regression harness for the reproduction itself.

``--jobs N`` fans each experiment's sweep points across N worker
processes (drivers whose ``run()`` accepts ``jobs``); results are
identical to a serial run, only wall-clock changes.
"""

from __future__ import annotations

import inspect

import pytest

_JOBS = 1


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per experiment sweep (deterministic; "
        "ignored by drivers without sweep support)",
    )


@pytest.hookimpl
def pytest_configure(config):
    global _JOBS
    _JOBS = config.getoption("--jobs")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    if _JOBS != 1 and "jobs" in inspect.signature(fn).parameters:
        kwargs.setdefault("jobs", _JOBS)
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
