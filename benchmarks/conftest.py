"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down measurement window (see DESIGN.md's per-experiment index)
and prints the corresponding rows/series, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation.  Each benchmark also asserts the
paper's qualitative shape (who wins, roughly by how much), making the
suite a regression harness for the reproduction itself.

``--jobs N`` fans each experiment's sweep points across N worker
processes (drivers whose ``run()`` accepts ``jobs``); results are
identical to a serial run, only wall-clock changes.

``--cache`` / ``--cache-dir DIR`` reuse sweep-point results from the
content-addressed result cache (:mod:`repro.harness.cache`), so a
repeat benchmark invocation replays cached figures instead of
resimulating; ``--no-cache`` forces recomputation even when the
``REPRO_CACHE`` environment toggle is set.  Cached or not, the
printed rows are byte-identical.
"""

from __future__ import annotations

import inspect

import pytest

_JOBS = 1
_CACHE = None


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per experiment sweep (deterministic; "
        "ignored by drivers without sweep support)",
    )
    parser.addoption(
        "--cache",
        action="store_true",
        dest="repro_cache",
        default=False,
        help="reuse sweep results from the repro result cache "
        "(default directory .repro-cache)",
    )
    parser.addoption(
        "--no-cache",
        action="store_true",
        dest="repro_no_cache",
        default=False,
        help="disable the repro result cache even if REPRO_CACHE is set",
    )
    parser.addoption(
        "--cache-dir",
        dest="repro_cache_dir",
        default=None,
        metavar="DIR",
        help="repro result-cache directory (implies --cache)",
    )
    parser.addoption(
        "--kernel-backend",
        dest="repro_kernel_backend",
        default=None,
        choices=("reference", "batch"),
        help="event-kernel backend the benchmarked experiments build "
        "their simulators with (default: reference, or the ambient "
        "REPRO_KERNEL_BACKEND)",
    )


@pytest.hookimpl
def pytest_configure(config):
    global _JOBS, _CACHE
    _JOBS = config.getoption("--jobs")
    backend = config.getoption("repro_kernel_backend")
    if backend is not None:
        import os

        # The environment is the one channel that reaches simulators
        # built inside suite worker processes too.
        os.environ["REPRO_KERNEL_BACKEND"] = backend
    if config.getoption("repro_no_cache"):
        _CACHE = False
    elif config.getoption("repro_cache_dir"):
        from repro.harness.cache import ResultCache

        _CACHE = ResultCache(config.getoption("repro_cache_dir"))
    elif config.getoption("repro_cache"):
        from repro.harness.cache import ResultCache

        _CACHE = ResultCache()
    else:
        _CACHE = None  # defer to the ambient REPRO_CACHE configuration


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    parameters = inspect.signature(fn).parameters
    if _JOBS != 1 and "jobs" in parameters:
        kwargs.setdefault("jobs", _JOBS)
    if _CACHE is not None and "cache" in parameters:
        kwargs.setdefault("cache", _CACHE)
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
