"""Benchmark: regenerate Figure 13 (virtual-view optimisations)."""

from conftest import run_once

from repro.harness.experiments import fig13_virtual_view as experiment


def test_fig13(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        workloads=("A", "B", "F"),
        instances=6,
        measure_us=500_000.0,
        warmup_us=250_000.0,
    )
    print()
    print(experiment.summarize(results))
    rows = {(r["workload"], r["variant"]): r for r in results["rows"]}
    # Paper shape (partially reproduced -- see EXPERIMENTS.md): the
    # credit-driven rate limiter cuts the p99.9 read tail on the
    # update-heavy workload, where rate-limiting the write flood is
    # what protects reads (paper: -28.2% averaged over all mixes).
    assert rows[("A", "+FC")]["read_p999_us"] < rows[("A", "vanilla")]["read_p999_us"]
    # The load balancer does not regress the update-heavy tail.
    assert rows[("A", "+FC+LB")]["read_p999_us"] < 1.25 * rows[("A", "+FC")]["read_p999_us"]
    # Throughput stays comparable across the variants.
    for workload in ("A", "B", "F"):
        assert rows[(workload, "+FC")]["kops"] > 0.7 * rows[(workload, "vanilla")]["kops"]
