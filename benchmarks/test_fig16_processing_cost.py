"""Benchmark: regenerate Figure 16 (bandwidth vs added per-IO cost)."""

from conftest import run_once

from repro.harness.experiments import fig16_processing_cost as experiment


def test_fig16(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        measure_us=200_000.0,
        added_costs=(0.0, 1.0, 5.0, 20.0, 80.0, 320.0),
    )
    print()
    print(experiment.summarize(results))
    rows = {(r["case"], r["added_cost_us"]): r["gbps"] for r in results["rows"]}
    # Paper shape 1: 4KB traffic collapses long before 128KB traffic as
    # per-IO cost is added (small IOs have microseconds of headroom).
    small_loss_at_20 = rows[("4KB-read", 20.0)] / rows[("4KB-read", 0.0)]
    large_loss_at_20 = rows[("128KB-read", 20.0)] / rows[("128KB-read", 0.0)]
    assert small_loss_at_20 < large_loss_at_20
    # Paper shape 2: at +320us everyone is processing-bound.
    assert rows[("128KB-read", 320.0)] < 0.6 * rows[("128KB-read", 0.0)]
    assert rows[("4KB-read", 320.0)] < 0.1 * rows[("4KB-read", 0.0)]
    # Paper shape 3: small added cost (1us) barely moves 128KB traffic.
    assert rows[("128KB-read", 1.0)] > 0.9 * rows[("128KB-read", 0.0)]
