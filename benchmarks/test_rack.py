"""Benchmark: rack-scale multi-JBOF churn (tenant population lifecycle)."""

from conftest import run_once

from repro.harness.experiments import rack as experiment


def test_rack(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        schemes=("gimbal", "vanilla"),
        rack=(2,),
        ssds_per_jbof=2,
        tenants=48,
        horizon_us=400_000.0,
    )
    print()
    print(experiment.summarize(results))
    rows = {row["scheme"]: row for row in results["rows"]}
    # The full churn schedule executed on both racks, and every mega
    # blob a departing tenant held went back to the rack allocator.
    for row in rows.values():
        assert row["tenants_run"] == 48
        assert row["megas_leaked"] == 0
        assert row["megas_allocated"] > 0
        assert row["peak_tenants"] < 48  # churn, not a static fleet
        assert 0.0 < row["jain"] <= 1.0
    # Gimbal's credit flow control throttles submission, so the
    # unmanaged rack pushes more raw operations through.  (Per-tenant
    # Jain over a *heterogeneous* churning population mostly measures
    # the workload mix, so no cross-scheme fairness ratio is gated
    # here -- that comparison lives in fig07/fig13 where demand is
    # controlled.)
    assert rows["vanilla"]["total_kops"] > rows["gimbal"]["total_kops"]
    # Load-balanced reads actually reach the shadow replicas.
    assert rows["gimbal"]["reads_to_shadow"] > 0
