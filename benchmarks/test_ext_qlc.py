"""Benchmark: the Section 6 extension -- Gimbal's techniques on QLC NAND."""

from conftest import run_once

from repro.harness.experiments import ext_qlc as experiment


def test_qlc_extension(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        measure_us=600_000.0,
        warmup_us=300_000.0,
        workers_per_class=8,
    )
    print()
    print(experiment.summarize(results))
    rows = {r["scheme"]: r for r in results["rows"]}
    # Gimbal restores the read share the QLC device's heavier GC takes
    # away under the unmanaged target...
    assert rows["gimbal"]["read_mbps"] > 1.15 * rows["vanilla"]["read_mbps"]
    # ...while keeping average read latency below the work-conserving
    # schemes.
    assert rows["gimbal"]["read_avg_us"] < rows["flashfq"]["read_avg_us"]
    # Writers still make progress (no starvation).
    assert rows["gimbal"]["write_mbps"] > 20.0
