"""Benchmark: regenerate Figure 6 (utilisation under uniform tenants)."""

from conftest import run_once

from repro.harness.experiments import fig06_utilization as experiment


def test_fig06(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        measure_us=700_000.0,
        warmup_us=400_000.0,
        num_workers=16,
    )
    print()
    print(experiment.summarize(results))
    rows = {(r["case"], r["scheme"]): r for r in results["rows"]}
    # Paper shape 1: ReFlex's static worst-case write model collapses
    # clean-SSD write throughput (x6.6 against Gimbal in the paper).
    assert (
        rows[("C-W", "gimbal")]["aggregate_mbps"]
        > 3.0 * rows[("C-W", "reflex")]["aggregate_mbps"]
    )
    # Paper shape 2: Gimbal tracks FlashFQ's aggregate bandwidth on the
    # fragmented read case (both near device max).
    assert (
        rows[("F-R", "gimbal")]["aggregate_mbps"]
        > 0.6 * rows[("F-R", "flashfq")]["aggregate_mbps"]
    )
    # Paper shape 3: Gimbal's flow control keeps fragmented-write
    # latency far below the uncontrolled schemes.
    assert (
        rows[("F-W", "gimbal")]["avg_latency_us"]
        < 0.7 * rows[("F-W", "flashfq")]["avg_latency_us"]
    )
