"""Benchmark: regenerate Figures 11/12 (scaling DB instance count)."""

from conftest import run_once

from repro.harness.experiments import fig11_12_scaling as experiment


def test_fig11_12(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        workloads=("A", "C"),
        instance_counts=(1, 2, 4, 6),
        measure_us=500_000.0,
        warmup_us=250_000.0,
    )
    print()
    print(experiment.summarize(results))
    rows = {(r["workload"], r["instances"]): r for r in results["rows"]}
    # Paper shape 1: throughput grows with the number of instances
    # before saturation.
    assert rows[("A", 4)]["kops"] > 1.5 * rows[("A", 1)]["kops"]
    assert rows[("C", 6)]["kops"] > rows[("C", 1)]["kops"]
    # Paper shape 2: consolidation raises read latency for the
    # update-heavy workload.
    assert rows[("A", 6)]["read_avg_us"] > rows[("A", 1)]["read_avg_us"]
