"""Benchmark: regenerate Figure 4 (multi-tenant interference)."""

from conftest import run_once

from repro.harness.experiments import fig04_interference as experiment


def test_fig04(benchmark):
    results = run_once(benchmark, experiment.run, measure_us=400_000.0)
    print()
    print(experiment.summarize(results))
    rows = {r["neighbour"]: r for r in results["rows"]}
    # Paper shape 1: higher intensity wins -- the QD128 neighbour takes
    # much more than the QD32 victim.
    qd128 = rows["4KB-RD-QD128"]
    assert qd128["neighbour_mbps"] > 1.5 * qd128["victim_mbps"]
    # Paper shape 2: a deeper 128KB neighbour flips from loser to winner.
    assert (
        rows["128KB-RD-QD8"]["neighbour_mbps"] > rows["128KB-RD-QD1"]["neighbour_mbps"]
    )
    assert rows["128KB-RD-QD1"]["neighbour_mbps"] < rows["128KB-RD-QD1"]["victim_mbps"]
    # Paper shape 3: a write neighbour costs the victim a large share of
    # its matched-read baseline.
    baseline = rows["4KB-RD-QD32"]["victim_mbps"]
    assert rows["4KB-WR-QD32"]["victim_mbps"] < 0.8 * baseline
