"""Benchmark: regenerate Figures 19-23 (Appendix D characterisation)."""

from conftest import run_once

from repro.harness.experiments import fig19_23_appendix_d as experiment


def test_fig19_23(benchmark):
    results = run_once(benchmark, experiment.run, measure_us=250_000.0)
    print()
    print(experiment.summarize(results))
    # Figure 19: the double-QD stream takes more bandwidth at every size.
    for row in results["fig19"]:
        assert row["intense_mbps"] > row["mild_mbps"]
    # Figure 20: large neighbours dominate the 4KB stream.
    by_size = {r["neighbour_kb"]: r for r in results["fig20"]}
    assert by_size[64]["stream2_mbps"] > 3.0 * by_size[64]["stream1_mbps"]
    # Figure 21: mixing with writes costs reads a large share.
    for row in results["fig21"]:
        assert row["mixed_mbps"] < 0.8 * row["standalone_mbps"]
    # Figures 22/23: background traffic inflates probe latency, and the
    # effect saturates once the background stream hits its bandwidth cap.
    fig22 = [r for r in results["fig22_23"] if r["fig"] == "22"]
    baseline = fig22[0]["avg_us"]
    assert fig22[-1]["avg_us"] > 1.5 * baseline
