"""Benchmark: regenerate Figure 8 (latency percentiles under mixed R/W)."""

from conftest import run_once

from repro.harness.experiments import fig08_latency as experiment


def test_fig08(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        measure_us=900_000.0,
        warmup_us=500_000.0,
        workers_per_class=16,
    )
    print()
    print(experiment.summarize(results))
    rows = {(r["case"], r["scheme"], r["op"]): r for r in results["rows"]}
    # Paper shape 1: on the clean mixed workload Gimbal's read tail is
    # far below the uncontrolled schemes (credits bound outstanding IO).
    assert (
        rows[("clean-128KB", "gimbal", "read")]["p99_us"]
        < 0.5 * rows[("clean-128KB", "flashfq", "read")]["p99_us"]
    )
    # Paper shape 2: ReFlex's unthrottled clean-SSD writes see tail
    # latencies an order of magnitude above Gimbal's.
    assert (
        rows[("clean-128KB", "reflex", "write")]["p999_us"]
        > 3.0 * rows[("clean-128KB", "gimbal", "write")]["p999_us"]
    )
    # Paper shape 3: on the fragmented mix Gimbal cuts average read and
    # write latency well below the work-conserving schemes...
    assert (
        rows[("frag-4KB", "gimbal", "read")]["avg_us"]
        < 0.6 * rows[("frag-4KB", "flashfq", "read")]["avg_us"]
    )
    assert (
        rows[("frag-4KB", "gimbal", "write")]["p99_us"]
        < 0.8 * rows[("frag-4KB", "flashfq", "write")]["p99_us"]
    )
    # ...while sitting above Parda's write latency (paper: x3.4), whose
    # low latency comes at the cost of starving reads entirely.
    parda_write = rows[("frag-4KB", "parda", "write")]["avg_us"]
    gimbal_write = rows[("frag-4KB", "gimbal", "write")]["avg_us"]
    assert parda_write < gimbal_write < 9.0 * parda_write