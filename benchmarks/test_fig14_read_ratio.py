"""Benchmark: regenerate Figure 14 (4KB performance vs read ratio)."""

from conftest import run_once

from repro.harness.experiments import fig14_read_ratio as experiment


def test_fig14(benchmark):
    results = run_once(benchmark, experiment.run, duration_us=300_000.0)
    print()
    print(experiment.summarize(results))
    rows = {(r["condition"], r["read_ratio"]): r for r in results["rows"]}
    # Paper shape 1: the fragmented device's write-heavy end reaches
    # only a small fraction of the clean device's (paper: ~17%).
    assert (
        rows[("fragmented", 0.0)]["write_mbps"] < 0.9 * rows[("clean", 0.0)]["write_mbps"]
    )
    # Paper shape 2: adding writes to a read-only fragmented stream
    # costs a disproportionate share of total IOPS.
    read_only = rows[("fragmented", 1.0)]["kiops"]
    with_writes = rows[("fragmented", 0.9)]["kiops"]
    assert with_writes < 0.85 * read_only
    # Paper shape 3: the clean device outperforms the fragmented one at
    # every mixed ratio.
    for ratio in (0.2, 0.4, 0.5, 0.6, 0.8):
        assert rows[("clean", ratio)]["kiops"] >= rows[("fragmented", ratio)]["kiops"]
