"""Benchmark: regenerate Table 1 (CPU overhead vs vanilla SPDK)."""

from conftest import run_once

from repro.harness.experiments import table1_overheads as experiment


def test_table1(benchmark):
    results = run_once(benchmark, experiment.run, measure_us=150_000.0)
    print()
    print(experiment.summarize(results))
    # Paper shape 1: Gimbal adds scheduler cycles on both paths
    # (37.5-62.5% in the paper).
    for row in results["cycles"]:
        assert row["gimbal_cycles"] > row["vanilla_cycles"]
        assert 3.0 < row["overhead_pct"] < 120.0
        # The paper's absolute deltas: +20 cycles on submit, +6-8 on
        # complete (Table 1a at 125 cycles/us).
        added = row["gimbal_cycles"] - row["vanilla_cycles"]
        assert 2.0 < added < 60.0
    # Paper shape 2: NULL-device IOPS loss is modest (9-12% in the
    # paper; the 4-core case may hit the 100 Gbps wire limit first, in
    # which case both schemes tie).
    for row in results["null_iops"]:
        assert -5.0 <= row["loss_pct"] < 30.0
    assert results["null_iops"][0]["loss_pct"] > 0.0
    # Paper shape 3: one vanilla core drives high six-figure IOPS
    # against the NULL backend (~937 KIOPS in the paper).
    single_core = results["null_iops"][0]
    assert 600.0 < single_core["vanilla_kiops"] < 1200.0
    # Paper shape 4: four cores scale the NULL-device throughput.
    assert results["null_iops"][1]["gimbal_kiops"] > 2.0 * results["null_iops"][0]["gimbal_kiops"]
