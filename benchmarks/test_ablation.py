"""Benchmark: ablation study of Gimbal's four design choices.

All four variants run and print; the assertions pin down the
load-bearing mechanism on this substrate -- the virtual slots.
Removing them is catastrophic in two distinct ways:

* mixed IO sizes: without the slot bound, the 128 KiB class grabs
  several times its fair per-worker share;
* mixed read/write on clean devices: without the outstanding-IO bound
  the p99 latency multiplies and the write class collapses.

The threshold/bucket/cost ablations degrade more modestly here (their
failure modes depend on device behaviours our model reproduces more
gently); their rows are printed for inspection and EXPERIMENTS.md
discusses them.
"""

from conftest import run_once

from repro.harness.experiments import ablations as experiment


def test_ablations(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        measure_us=600_000.0,
        warmup_us=300_000.0,
        workers=8,
    )
    print()
    print(experiment.summarize(results))
    rows = {(r["case"], r["variant"]): r for r in results["rows"]}

    # Virtual slots, mixed sizes: with slots the per-class shares are
    # near-equal; without them the large class dominates.
    full_sizes = rows[("sizes-clean", "full")]["by_group_mbps"]
    noslot_sizes = rows[("sizes-clean", "no-slots")]["by_group_mbps"]
    assert noslot_sizes["128KB"] > 2.0 * full_sizes["128KB"]
    assert abs(full_sizes["128KB"] / 2 - full_sizes["4KB"] / 8) < 0.3 * (
        full_sizes["4KB"] / 8
    )

    # Virtual slots, clean R/W: without the bound the tail multiplies
    # and writers collapse.
    assert (
        rows[("rw-clean", "no-slots")]["p99_us"]
        > 1.5 * rows[("rw-clean", "full")]["p99_us"]
    )
    assert (
        rows[("rw-clean", "no-slots")]["by_group_mbps"]["write"]
        < 0.8 * rows[("rw-clean", "full")]["by_group_mbps"]["write"]
    )

    # Every variant still moves data (the ablations degrade, not break).
    for row in results["rows"]:
        assert row["total_mbps"] > 50.0