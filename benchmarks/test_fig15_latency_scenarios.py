"""Benchmark: regenerate Figure 15 (read latency under four scenarios)."""

from conftest import run_once

from repro.harness.experiments import fig15_latency_scenarios as experiment


def test_fig15(benchmark):
    results = run_once(benchmark, experiment.run, duration_us=200_000.0)
    print()
    print(experiment.summarize(results))
    rows = {(r["scenario"], r["size_kb"]): r["avg_latency_us"] for r in results["rows"]}
    # Paper shape 1: every perturbation inflates latency versus vanilla
    # for large IOs.
    for scenario in ("70/30-rw", "qd8"):
        assert rows[(scenario, 128)] > rows[("vanilla", 128)]
    # Paper shape 2: latency grows with IO size in every scenario.
    for scenario in ("vanilla", "fragmented", "70/30-rw", "qd8"):
        assert rows[(scenario, 256)] > rows[(scenario, 4)]
    # Paper shape 3: QD8 self-load roughly doubles large-IO latency.
    assert rows[("qd8", 256)] > 1.5 * rows[("vanilla", 256)]
