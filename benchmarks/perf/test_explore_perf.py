"""Adaptive exploration benchmark and fidelity gate.

The surrogate-guided engine (:mod:`repro.harness.adaptive`) exists to
answer grid-scale questions at a fraction of the grid's cost.  This
gate pins down all three halves of that claim against
``BASELINE_EXPLORE.json`` (the frozen full-grid ground truth; see
``regenerate_explore.py``):

* **Cost** -- the adaptive run may simulate at most the frozen
  ``budget`` fraction of the grid (20%).
* **Fidelity** -- every frozen crossover must be recovered as an
  *observed* (simulated-bracket) crossover in the same group, with the
  adaptive estimate inside the frozen bracket widened by one grid step
  on each side; and the adaptive run must not report spurious observed
  crossovers in groups the full grid says are flat.  Held-out relative
  RMSE (every prediction scored before its point was simulated) must
  stay under the frozen ``error_bound``.
* **Identity** -- every point the engine simulated must be
  byte-identical to executing that point directly through
  ``run_sweep`` (the engine reuses per-point seeds, labels and the
  ordinary dispatch path; this catches any drift).

Both surrogate backends are gated: the numpy bagged-tree model when
numpy is importable, and the pure-Python k-NN fallback always -- so a
numpy-less environment exercises (and must pass with) the fallback
alone.  The run is deterministic end to end, which is what makes exact
crossover-set comparison safe to assert in CI.

``BENCH_explore.json`` at the repo root records the raw numbers.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path

from repro.harness.adaptive import explore
from repro.harness.experiments.fig04_interference import explore_space
from repro.harness.parallel import run_sweep
from repro.harness.surrogate import have_numpy

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = Path(__file__).resolve().parent / "BASELINE_EXPLORE.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_explore.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")


def _axis_interval(axis_values, lo, hi):
    """The frozen bracket [lo, hi] widened by one grid step each side."""
    lo_pos = axis_values.index(lo)
    hi_pos = axis_values.index(hi)
    return (
        axis_values[max(0, lo_pos - 1)],
        axis_values[min(len(axis_values) - 1, hi_pos + 1)],
    )


def _check_backend(baseline, backend):
    space = explore_space()
    started = time.perf_counter()
    result = explore(
        space,
        budget=baseline["budget"],
        target_error=0.02,
        cache=False,
        bootstrap=False,
        backend=backend,
    )
    wall_s = time.perf_counter() - started

    # Cost half: the budget is the whole point.
    assert result.fraction_simulated <= baseline["budget"] + 1e-9, (
        f"{backend}: simulated {result.simulated_count}/{result.grid_points} "
        f"= {result.fraction_simulated:.1%}, over the {baseline['budget']:.0%} budget"
    )

    # Fidelity half 1: every frozen crossover recovered, within tolerance.
    axis_values = baseline["axes"][baseline["crossovers"][0]["along"]]
    observed = [c for c in result.crossovers if c.get("observed")]
    by_group = {tuple(sorted(c["group"].items())): c for c in observed}
    for frozen in baseline["crossovers"]:
        key = tuple(sorted(frozen["group"].items()))
        assert key in by_group, (
            f"{backend}: frozen crossover in group {frozen['group']} "
            f"(~{frozen['estimate']}) was not recovered"
        )
        lo, hi = _axis_interval(axis_values, frozen["lo"], frozen["hi"])
        estimate = by_group[key]["estimate"]
        assert lo <= estimate <= hi, (
            f"{backend}: group {frozen['group']} estimate {estimate} outside "
            f"tolerance [{lo}, {hi}] around frozen {frozen['estimate']}"
        )
    # Fidelity half 2: no spurious observed crossovers in flat groups.
    frozen_groups = {
        tuple(sorted(c["group"].items())) for c in baseline["crossovers"]
    }
    spurious = [c for c in observed if tuple(sorted(c["group"].items())) not in frozen_groups]
    assert not spurious, f"{backend}: spurious observed crossovers: {spurious}"

    # Fidelity half 3: honest held-out error under the declared bound.
    assert result.heldout, f"{backend}: no held-out predictions were recorded"
    for target, stats in result.heldout.items():
        assert stats["rel_rmse"] <= baseline["error_bound"], (
            f"{backend}: held-out relative RMSE for {target} is "
            f"{stats['rel_rmse']:.3f}, over the declared {baseline['error_bound']}"
        )

    # Identity half: engine-simulated points == direct run_sweep, bytes.
    combos = space.combos()
    by_label = {space.label(combo): index for index, combo in enumerate(combos)}
    sample = result.simulated_labels[:: max(1, len(result.simulated_labels) // 2)][:2]
    points = [
        space.point(position, combos[by_label[label]])
        for position, label in enumerate(sample)
    ]
    direct = run_sweep(points, jobs=1, cache=False)
    for label, value in zip(sample, direct):
        assert pickle.dumps(result.results[label]) == pickle.dumps(value), (
            f"{backend}: point {label!r} differs between the adaptive engine "
            "and a direct run_sweep execution"
        )

    return {
        "backend": result.backend,
        "wall_s": round(wall_s, 3),
        "simulated": result.simulated_count,
        "grid_points": result.grid_points,
        "fraction_simulated": round(result.fraction_simulated, 4),
        "rounds": result.rounds,
        "stopped_on": result.stopped_on,
        "heldout": result.heldout,
        "crossovers": [
            {k: c[k] for k in ("group", "lo", "hi", "estimate", "observed")}
            for c in result.crossovers
        ],
    }


def test_adaptive_explore_recovers_frozen_crossovers():
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    backends = ["knn"]
    if have_numpy():
        backends.insert(0, "tree")

    runs = [_check_backend(baseline, backend) for backend in backends]

    report = {
        "suite": "explore",
        "quick": QUICK,
        "space": baseline["space"],
        "grid_points": baseline["grid_points"],
        "budget": baseline["budget"],
        "error_bound": baseline["error_bound"],
        "full_grid_wall_s": baseline["full_grid_wall_s"],
        "numpy_available": have_numpy(),
        "frozen_crossovers": len(baseline["crossovers"]),
        "runs": runs,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    # The efficiency headline: screening the grid adaptively must beat
    # exhausting it. Wall-clock scales with simulated fraction, so the
    # budget assertion above is the gate; this just records the ratio.
    for run in runs:
        assert run["simulated"] < baseline["grid_points"]
