"""Aged-device fio replay benchmark (report-only).

The fidelity layers put extra Python on the hot path: every FTL
interaction consults the mapping cache, GC runs the retirement and
static wear-levelling passes, and map misses charge channel time.
This benchmark replays the ``test_e2e_perf`` fio workload on an aged,
fidelity-enabled device (age 0.8, thrashing 8-page mapping cache,
finite endurance, static wear levelling on) and reports the
wall-clock cost relative to the same replay on the reference clean
device in the same process.

Report-only by design: the interesting number is the *overhead
ratio*, and what a regression would mean depends on what the change
bought (a ratio gate would punish any future fidelity feature).  The
numbers land in ``BENCH_aging.json`` at the repo root, alongside the
gated suites' artifacts.  Quick mode (``REPRO_PERF_QUICK=1``) shrinks
the windows for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.harness.testbed import Testbed, TestbedConfig
from repro.obs import KernelProbe
from repro.ssd import SsdGeometry
from repro.workloads import FioSpec

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT_PATH = REPO_ROOT / "BENCH_aging.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")
MEASURE_US = 100_000.0 if QUICK else 500_000.0
WARMUP_US = 50_000.0

#: Same enterprise-style geometry as the aging experiment: enough
#: spare blocks for retirement to actually run during the replay.
GEOMETRY = SsdGeometry(
    num_channels=8, blocks_per_channel=44, pages_per_block=256, overprovision=0.25
)

AGED_OVERRIDES = {
    "map_cache_pages": 8,
    "endurance_cycles": 2000,
    "static_wear_threshold": 200,
}


def _replay(config: TestbedConfig) -> dict:
    testbed = Testbed(config)
    testbed.add_worker(
        FioSpec("w0", io_pages=1, queue_depth=32, read_ratio=0.7), region_pages=8192
    )
    probe = KernelProbe()
    testbed.sim.probe = probe
    start = time.perf_counter()
    results = testbed.run(warmup_us=WARMUP_US, measure_us=MEASURE_US)
    wall_s = time.perf_counter() - start
    device = testbed.devices["ssd0"]
    cache = device.ftl.map_cache
    return {
        "wall_seconds": round(wall_s, 3),
        "kernel_events_per_wall_sec": round(probe.fired_total / wall_s),
        "sim_us_per_wall_sec": round((WARMUP_US + MEASURE_US) / wall_s),
        "simulated_iops": round(results["workers"][0]["iops"]),
        "bandwidth_mbps": round(results["total_bandwidth_mbps"], 2),
        "write_amplification": round(device.ftl.stats.write_amplification, 3),
        "map_hit_rate": round(cache.hit_rate, 4) if cache is not None else 1.0,
        "retired_blocks": device.ftl.retired_blocks,
        "wl_migrations": device.ftl.stats.wl_migrations,
    }


def test_aged_fio_replay_report():
    reference = _replay(
        TestbedConfig(scheme="vanilla", condition="clean", geometry=GEOMETRY)
    )
    aged = _replay(
        TestbedConfig(
            scheme="vanilla",
            condition="aged",
            device_age=0.8,
            geometry=GEOMETRY,
            profile_overrides=AGED_OVERRIDES,
        )
    )
    overhead = (
        reference["sim_us_per_wall_sec"] / aged["sim_us_per_wall_sec"]
        if aged["sim_us_per_wall_sec"]
        else float("inf")
    )
    report = {
        "suite": "aging",
        "quick": QUICK,
        "cpu_count": os.cpu_count(),
        "measure_us": MEASURE_US,
        "clean_reference": reference,
        "aged_fidelity": aged,
        "fidelity_overhead_ratio": round(overhead, 3),
        "gate": "report-only",
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    # Sanity only (not a perf gate): the aged run must really have
    # exercised the fidelity machinery it claims to measure.
    assert aged["map_hit_rate"] < 1.0
    assert aged["write_amplification"] > 1.0
