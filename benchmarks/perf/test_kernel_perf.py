"""Kernel event-throughput benchmark and regression gate.

Times the live kernel (:class:`repro.sim.Simulator`) against the
frozen pre-optimisation replica (:mod:`baseline_kernel`) on three
event-pattern scenarios, in the same process and interleaved
best-of-N, then:

* writes ``BENCH_kernel.json`` at the repo root with both rates and
  the speedup ratio per scenario (the ``chain`` scenario is still the
  headline number reported for dashboards);
* fails if *any* scenario's speedup regressed more than 30% below its
  committed reference in ``benchmarks/perf/BASELINE.json`` -- each
  scenario is an individual gate entry, so a regression in e.g. the
  drain path can no longer hide behind a healthy headline.

Ratios, not raw rates, are gated: a slower CI machine slows both
kernels alike, so the ratio is machine-independent.

Quick mode (``REPRO_PERF_QUICK=1``) shrinks the event counts and
rounds for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import baseline_kernel
from repro.sim import Simulator

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = Path(__file__).resolve().parent / "BASELINE.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_kernel.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")
ROUNDS = 3 if QUICK else 5
EVENTS = 60_000 if QUICK else 400_000
#: Committed ratios are measured at the full event count; quick mode's
#: shorter runs amortize per-run setup less and shrink the drain
#: scenario's sort advantage, so it gets a wider band.
REGRESSION_TOLERANCE = 0.45 if QUICK else 0.30


# ----------------------------------------------------------------------
# Scenarios: each takes a simulator (either kernel) and a target event
# count, does the same arithmetic work on both, and returns the number
# of events fired.  No RNG: both kernels must see identical schedules.
# ----------------------------------------------------------------------
def scenario_chain(sim, n_events: int) -> int:
    """Self-rescheduling timers -- the shape of closed-loop IO.

    512 concurrent timers matches the heap depth of the paper's
    multi-tenant runs (e.g. Figure 7's 32 tenants at QD32 keep on the
    order of a thousand events outstanding).
    """
    timers = 512
    state = {"fired": 0}

    def tick(period):
        state["fired"] += 1
        sim.schedule(period, tick, period)

    for index in range(timers):
        sim.schedule(0.1 + index * 0.01, tick, 1.0 + index * 0.03)
    sim.run(max_events=n_events)
    return state["fired"]


def scenario_drain(sim, n_events: int) -> int:
    """Pre-scheduled burst drained in one run() -- a device queue flush."""
    state = {"fired": 0}

    def fire():
        state["fired"] += 1

    for index in range(n_events):
        # Deterministic pseudo-shuffled times exercise heap sifting.
        sim.at(float((index * 7919) % n_events) + 0.5, fire)
    sim.run()
    return state["fired"]


def scenario_cancel(sim, n_events: int) -> int:
    """Schedule/cancel churn -- the shape of timeout-guarded IO."""
    state = {"fired": 0}

    def fire():
        state["fired"] += 1

    cancelled = 0
    batch = 1000
    scheduled = 0
    while scheduled < n_events:
        events = [sim.schedule(1.0 + (i % 97) * 0.11, fire) for i in range(batch)]
        for event in events[::2]:
            event.cancel()
            cancelled += 1
        sim.run(until_us=sim.now + 50.0)
        scheduled += batch
    sim.run()
    return state["fired"] + cancelled


SCENARIOS = {
    "chain": scenario_chain,
    "drain": scenario_drain,
    "cancel": scenario_cancel,
}

#: The acceptance metric: closed-loop timer chains dominate real runs.
HEADLINE = "chain"


def _best_rate(make_sim, scenario, n_events: int, rounds: int) -> float:
    """Best events/second over ``rounds`` runs (fresh simulator each)."""
    best = 0.0
    for _ in range(rounds):
        sim = make_sim()
        start = time.perf_counter()
        fired = scenario(sim, n_events)
        elapsed = time.perf_counter() - start
        best = max(best, fired / elapsed)
    return best


def measure() -> dict:
    results = {}
    for name, scenario in SCENARIOS.items():
        # Interleave the two kernels round by round so ambient machine
        # noise (thermal, cache pressure) hits both equally.
        baseline_best = 0.0
        current_best = 0.0
        for _ in range(ROUNDS):
            baseline_best = max(
                baseline_best, _best_rate(baseline_kernel.Simulator, scenario, EVENTS, 1)
            )
            current_best = max(current_best, _best_rate(Simulator, scenario, EVENTS, 1))
        results[name] = {
            "baseline_events_per_sec": round(baseline_best),
            "current_events_per_sec": round(current_best),
            "speedup": round(current_best / baseline_best, 3),
        }
    return results


def test_kernel_throughput():
    scenarios = measure()
    headline = scenarios[HEADLINE]["speedup"]
    report = {
        "suite": "kernel",
        "quick": QUICK,
        "events_per_scenario": EVENTS,
        "rounds": ROUNDS,
        "headline_scenario": HEADLINE,
        "headline_speedup": headline,
        "scenarios": scenarios,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))

    # Both kernels must do identical logical work.
    for name, scenario in SCENARIOS.items():
        assert scenario(baseline_kernel.Simulator(), 10_000) == scenario(
            Simulator(), 10_000
        ), f"scenario {name} diverged between kernels"

    # Regression gate: every scenario against its own committed ratio.
    committed = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    references = committed["kernel"]["scenario_speedups"]
    failures = []
    for name, reference in references.items():
        measured = scenarios[name]["speedup"]
        floor = reference * (1.0 - REGRESSION_TOLERANCE)
        if measured < floor:
            failures.append(
                f"{name}: measured {measured:.2f}x vs committed "
                f"{reference:.2f}x (floor {floor:.2f}x)"
            )
    assert not failures, (
        "kernel speedup regressed; see BENCH_kernel.json\n  "
        + "\n  ".join(failures)
    )
