"""End-to-end wall-clock benchmarks: fio replay and an interference run.

Two representative workloads timed with the live kernel:

* ``fio_replay`` -- one closed-loop 4 KiB random-read worker (QD32)
  against a single SSD through the full NVMe-oF path, reporting
  simulated IOs and kernel events per wall-clock second;
* ``fig04`` -- the complete Figure 4 interference sweep at a reduced
  window, reporting wall seconds serial and with ``jobs=4`` (results
  are asserted identical, so the parallel column is pure wall-clock).

Raw wall-clock rates are machine-dependent, so ``BENCH_e2e.json`` is
informational -- the machine-independent regression gate lives in
``test_kernel_perf.py``.  Quick mode (``REPRO_PERF_QUICK=1``) shrinks
the windows for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.harness.experiments import fig04_interference as fig04
from repro.harness.testbed import Testbed, TestbedConfig
from repro.obs import KernelProbe
from repro.workloads import FioSpec

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT_PATH = REPO_ROOT / "BENCH_e2e.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")
FIO_MEASURE_US = 100_000.0 if QUICK else 500_000.0
FIG04_MEASURE_US = 30_000.0 if QUICK else 150_000.0

_report: dict = {"suite": "e2e", "quick": QUICK, "cpu_count": os.cpu_count()}


def _flush_report() -> None:
    OUTPUT_PATH.write_text(json.dumps(_report, indent=2) + "\n", encoding="utf-8")


def test_fio_replay_rate():
    testbed = Testbed(TestbedConfig(scheme="vanilla", condition="clean"))
    testbed.add_worker(
        FioSpec("w0", io_pages=1, queue_depth=32, read_ratio=1.0), region_pages=8192
    )
    probe = KernelProbe()
    testbed.sim.probe = probe
    start = time.perf_counter()
    results = testbed.run(warmup_us=50_000.0, measure_us=FIO_MEASURE_US)
    wall_s = time.perf_counter() - start
    iops = results["workers"][0]["iops"]
    _report["fio_replay"] = {
        "measure_us": FIO_MEASURE_US,
        "wall_seconds": round(wall_s, 3),
        "kernel_events_per_wall_sec": round(probe.fired_total / wall_s),
        "simulated_iops": round(iops),
        "sim_us_per_wall_sec": round((50_000.0 + FIO_MEASURE_US) / wall_s),
    }
    _flush_report()
    assert results["workers"][0]["bandwidth_mbps"] > 0


def test_fig04_interference_wall_clock():
    start = time.perf_counter()
    serial = fig04.run(measure_us=FIG04_MEASURE_US)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = fig04.run(measure_us=FIG04_MEASURE_US, jobs=4)
    parallel_s = time.perf_counter() - start

    _report["fig04"] = {
        "measure_us": FIG04_MEASURE_US,
        "serial_wall_seconds": round(serial_s, 3),
        "jobs4_wall_seconds": round(parallel_s, 3),
        "jobs4_speedup": round(serial_s / parallel_s, 3),
    }
    _flush_report()
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
