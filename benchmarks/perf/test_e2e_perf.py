"""End-to-end wall-clock benchmarks: fio replay and an interference run.

Two representative workloads timed with the live kernel:

* ``fio_replay`` -- one closed-loop 4 KiB random-read worker (QD32)
  against a single SSD through the full NVMe-oF path, reporting
  simulated IOs and kernel events per wall-clock second;
* ``fig04`` -- the complete Figure 4 interference sweep at a reduced
  window, reporting wall seconds serial and with ``jobs=4`` (results
  are asserted identical, so the parallel column is pure wall-clock).
  The report records how many workers the machine actually granted;
  the parallel-speedup expectation is enforced only when that is >= 2
  and recorded as skipped (with the reason) when jobs clamp to 1.

Raw wall-clock rates are machine-dependent, so the fio-replay gate
follows the ratio scheme of ``test_kernel_perf.py``: the measured
event rate is normalized by the frozen pre-optimisation kernel's
chain-scenario rate measured live in the same process, and that
normalized rate is compared against the pre-fast-path tree's
normalized rate frozen in ``BASELINE_E2E.json``.  The datapath fast
path must keep the replay at least ``required_speedup`` times the
pre-fast-path rate (with a noise tolerance), while the *simulated*
results -- IOPS and every latency figure -- stay bit-identical.

``BENCH_e2e.json`` at the repo root records the raw numbers for the
run.  Quick mode (``REPRO_PERF_QUICK=1``) shrinks the windows for CI
smoke runs and widens the tolerance accordingly.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import baseline_kernel
import pytest
from test_kernel_perf import scenario_chain

from repro.harness.experiments import fig04_interference as fig04
from repro.harness.testbed import Testbed, TestbedConfig
from repro.obs import KernelProbe
from repro.workloads import FioSpec

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = Path(__file__).resolve().parent / "BASELINE_E2E.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_e2e.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")
FIO_MEASURE_US = 100_000.0 if QUICK else 500_000.0
FIG04_MEASURE_US = 30_000.0 if QUICK else 150_000.0
FIO_REPS = 2 if QUICK else 3
#: Fraction of the required speedup that must survive measurement
#: noise.  Quick mode's shorter window amortizes per-run setup less,
#: so it gets more headroom.
SPEEDUP_TOLERANCE = 0.75 if QUICK else 0.85
#: Events per IO on the read path (network arrival, submit booking,
#: device completion, completion booking, client arrival).
EVENTS_PER_IO = 5

_report: dict = {"suite": "e2e", "quick": QUICK, "cpu_count": os.cpu_count()}


def _flush_report() -> None:
    OUTPUT_PATH.write_text(json.dumps(_report, indent=2) + "\n", encoding="utf-8")


def _chain_rate() -> float:
    """Best-of-2 event rate of the frozen baseline kernel's chain scenario."""
    best = 0.0
    for _ in range(2):
        sim = baseline_kernel.Simulator()
        start = time.perf_counter()
        fired = scenario_chain(sim, 60_000 if QUICK else 400_000)
        best = max(best, fired / (time.perf_counter() - start))
    return best


def _fio_replay_once() -> tuple[float, int, float]:
    """One replay run: (wall seconds, events fired, measured IOPS)."""
    testbed = Testbed(TestbedConfig(scheme="vanilla", condition="clean"))
    testbed.add_worker(
        FioSpec("w0", io_pages=1, queue_depth=32, read_ratio=1.0), region_pages=8192
    )
    probe = KernelProbe()
    testbed.sim.probe = probe
    start = time.perf_counter()
    results = testbed.run(warmup_us=50_000.0, measure_us=FIO_MEASURE_US)
    wall_s = time.perf_counter() - start
    return wall_s, probe.fired_total, results["workers"][0]["iops"]


def test_fio_replay_rate():
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    reference = baseline["fio_replay"]

    best_rate = 0.0
    best = None
    for _ in range(FIO_REPS):
        wall_s, fired, iops = _fio_replay_once()
        rate = fired / wall_s
        if rate > best_rate:
            best_rate = rate
            best = (wall_s, fired, iops)
    wall_s, fired, iops = best
    chain_rate = _chain_rate()

    normalized = best_rate / chain_rate
    speedup = normalized / reference["normalized_rate"]
    _report["fio_replay"] = {
        "measure_us": FIO_MEASURE_US,
        "wall_seconds": round(wall_s, 3),
        "kernel_events_per_wall_sec": round(best_rate),
        "ios_per_wall_sec": round(best_rate / EVENTS_PER_IO),
        "simulated_iops": round(iops),
        "sim_us_per_wall_sec": round((50_000.0 + FIO_MEASURE_US) / wall_s),
        "chain_events_per_sec": round(chain_rate),
        "normalized_rate": round(normalized, 4),
        "speedup_vs_pre_fast_path": round(speedup, 3),
    }
    _flush_report()

    # The fast path must not change what is simulated, only how fast the
    # simulation runs: the measured-window IOPS is exact and frozen.
    expected_iops = (
        reference["simulated_iops_quick"] if QUICK else reference["simulated_iops"]
    )
    assert round(iops) == expected_iops, (
        f"simulated IOPS changed: {round(iops)} != {expected_iops} -- "
        "the fast path altered simulation results, not just wall-clock speed"
    )

    required = baseline["required_speedup"] * SPEEDUP_TOLERANCE
    assert speedup >= required, (
        f"fio-replay speedup vs pre-fast-path tree is {speedup:.2f}x "
        f"(normalized {normalized:.4f} vs baseline "
        f"{reference['normalized_rate']:.4f}), below the gated "
        f"{baseline['required_speedup']}x (tolerance-adjusted floor "
        f"{required:.2f}x)"
    )


#: Minimum fig04 speedup expected from a real multi-worker fan-out.
#: Modest on purpose: the sweep has only six points of uneven cost, so
#: perfect scaling is not on the table even with four cores.
FIG04_REQUIRED_SPEEDUP = 1.2


def test_fig04_interference_wall_clock():
    start = time.perf_counter()
    serial = fig04.run(measure_us=FIG04_MEASURE_US)
    serial_s = time.perf_counter() - start

    jobs_requested = 4
    cpu_count = os.cpu_count() or 1
    jobs_effective = min(jobs_requested, cpu_count)
    start = time.perf_counter()
    parallel = fig04.run(measure_us=FIG04_MEASURE_US, jobs=jobs_requested)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s
    gated = jobs_effective >= 2
    _report["fig04"] = {
        "measure_us": FIG04_MEASURE_US,
        "serial_wall_seconds": round(serial_s, 3),
        "jobs_requested": jobs_requested,
        "jobs_effective": jobs_effective,
        "parallel_wall_seconds": round(parallel_s, 3),
        "parallel_speedup": round(speedup, 3),
        "speedup_gate": (
            f"enforced: >= {FIG04_REQUIRED_SPEEDUP * SPEEDUP_TOLERANCE:.2f}x"
            if gated
            else f"skipped: os.cpu_count()={cpu_count} clamps jobs to 1 on "
            "this machine -- a per-sweep pool of one worker measures only "
            "fan-out overhead"
        ),
    }
    _flush_report()

    # Results never depend on the worker count.
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)

    if not gated:
        # The same reason lands in the JSON artifact above and in the
        # pytest summary, so CI runs on small runners are
        # self-explaining in both places.
        pytest.skip(
            f"fig04 speedup gate skipped ({_report['fig04']['speedup_gate']}); "
            f"measured {speedup:.3f}x"
        )
    required = FIG04_REQUIRED_SPEEDUP * SPEEDUP_TOLERANCE
    assert speedup >= required, (
        f"fig04 jobs={jobs_effective} speedup is {speedup:.2f}x, below the "
        f"gated {FIG04_REQUIRED_SPEEDUP}x (tolerance-adjusted floor {required:.2f}x)"
    )
