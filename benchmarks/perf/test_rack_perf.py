"""Rack-churn wall-clock benchmark over the sharded execution layer.

Times a mid-size churn schedule (dozens of tenants arriving, running
and departing over a 2-JBOF rack) through the conservative sharded
path (``repro.sim.shard``), aggregating events fired across every
shard kernel, and records the result in ``BENCH_rack.json`` at the
repo root: total and per-shard event counts, window/message totals,
barrier stall, and the event rate normalized by the frozen
pre-optimisation kernel's chain-scenario rate measured in the same
process (machine-independent, gated against
``benchmarks/perf/BASELINE.json``).

Gates:

* correctness -- the run must be deterministic (two identical sharded
  schedules produce byte-identical outcomes) and hand every mega blob
  back to the rack allocator;
* normalized throughput -- the chain-normalized rack rate must stay
  above the committed floor;
* shard scaling -- on machines with >= 4 cores, a 4-JBOF rack at 4
  process shards must beat the same rack at 1 shard by >= 1.8x
  events/s.  Below 4 cores the gate is skipped but *recorded*: the
  report carries ``cpu_count`` and the skip reason, so a CI machine
  silently downgrading to the skip path is visible in the artifact.

Quick mode (``REPRO_PERF_QUICK=1``) shrinks the population for CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import baseline_kernel
from test_kernel_perf import scenario_chain

from repro.harness.kvcluster import KvCluster, KvClusterConfig
from repro.obs import KernelProbe
from repro.workloads.population import TenantPopulation

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = Path(__file__).resolve().parent / "BASELINE.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_rack.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")
TENANTS = 12 if QUICK else 32
HORIZON_US = 200_000.0 if QUICK else 400_000.0
#: Headline fan-out: one shard per JBOF of the 2-JBOF rack.
SHARDS = 2
#: Normalized rates vary more than kernel-vs-kernel ratios (the rack
#: path exercises allocators, LSM trees and the window protocol), so
#: the floor is wide; it catches collapses, not noise.
REGRESSION_TOLERANCE = 0.60
#: Required speedup of 4 process shards over 1 shard on a 4-JBOF rack.
SCALING_FLOOR = 1.8
SCALING_MIN_CORES = 4


def _chain_rate() -> float:
    """Best-of-2 event rate of the frozen baseline kernel's chain scenario."""
    best = 0.0
    for _ in range(2):
        sim = baseline_kernel.Simulator()
        start = time.perf_counter()
        fired = scenario_chain(sim, 60_000 if QUICK else 400_000)
        best = max(best, fired / (time.perf_counter() - start))
    return best


def _churn_once(
    shards: int = SHARDS,
    mode: str = "auto",
    jbofs: int = 2,
    tenants: int = TENANTS,
    horizon_us: float = HORIZON_US,
):
    """One full churn schedule: (outcome, shard report or None, events, wall)."""
    cluster = KvCluster(
        KvClusterConfig(
            scheme="gimbal",
            condition="clean",
            num_jbofs=jbofs,
            ssds_per_jbof=2,
            seed=11,
        ),
        shards=shards or None,
        shard_mode=mode,
        shard_probes=bool(shards),
    )
    probe = None
    if not shards:
        probe = KernelProbe(detailed=False)
        cluster.sim.probe = probe
    specs = TenantPopulation(
        tenants=tenants, horizon_us=horizon_us, churn=0.8, seed=5
    ).generate()
    start = time.perf_counter()
    outcome = cluster.run_population(specs)
    wall = time.perf_counter() - start
    if shards:
        report = cluster.shard_report  # finalized by run_population
        events = report["events_fired"]
    else:
        report = None
        events = probe.fired_total
    return outcome, report, events, wall


def _measure_scaling() -> dict:
    """4 process shards vs 1 shard on a 4-JBOF rack (events/s ratio)."""
    rates = {}
    for shards, mode in ((1, "inline"), (4, "processes")):
        _, _, events, wall = _churn_once(
            shards=shards,
            mode=mode,
            jbofs=4,
            tenants=TENANTS,
            horizon_us=HORIZON_US / 2,
        )
        rates[shards] = events / wall
    return {
        "gated": True,
        "cpu_count": os.cpu_count(),
        "rate_1_shard": round(rates[1], 1),
        "rate_4_shards": round(rates[4], 1),
        "speedup": round(rates[4] / rates[1], 3),
        "floor": SCALING_FLOOR,
    }


def test_rack_churn_event_rate():
    first, report, events, wall = _churn_once()
    second, _, _, _ = _churn_once()

    # Correctness gates: reclamation and determinism of the sharded path.
    assert first["megas_leaked"] == 0
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    cores = os.cpu_count() or 1
    if cores >= SCALING_MIN_CORES:
        scaling = _measure_scaling()
    else:
        scaling = {
            "gated": False,
            "cpu_count": cores,
            "reason": f"needs >= {SCALING_MIN_CORES} cores for 4 process shards",
        }

    rate = events / wall
    chain = _chain_rate()
    out = {
        "suite": "rack",
        "quick": QUICK,
        "cpu_count": cores,
        "tenants": TENANTS,
        "horizon_us": HORIZON_US,
        "shards": first["shard"]["shards"],
        "shard_mode": "processes" if cores > 1 else "inline",
        "shard_windows": first["shard"]["windows"],
        "shard_messages": first["shard"]["messages"],
        "events_by_shard": report["events_by_shard"],
        "barrier_stall_s": round(report["barrier_stall_s"], 3),
        "events_fired": events,
        "wall_seconds": round(wall, 3),
        "events_per_second": round(rate, 1),
        "baseline_chain_rate": round(chain, 1),
        "normalized_rate": round(rate / chain, 4),
        "megas_allocated": first["megas_allocated"],
        "peak_tenants": first["peak_tenants"],
        "drained_us": first["drained_us"],
        "scaling": scaling,
    }
    OUTPUT_PATH.write_text(json.dumps(out, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(out, indent=2))
    assert events > 0 and rate > 0
    assert events == sum(report["events_by_shard"])

    # Normalized-throughput gate against the committed floor.
    committed = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    reference = committed["rack"]["normalized_rate"]
    floor = reference * (1.0 - REGRESSION_TOLERANCE)
    assert out["normalized_rate"] >= floor, (
        f"rack normalized rate {out['normalized_rate']:.4f} fell below "
        f"floor {floor:.4f} (committed {reference:.4f}); see BENCH_rack.json"
    )

    # Shard-scaling gate (recorded skip below SCALING_MIN_CORES).
    if scaling["gated"]:
        assert scaling["speedup"] >= SCALING_FLOOR, (
            f"4-shard rack only {scaling['speedup']:.2f}x over 1 shard "
            f"(floor {SCALING_FLOOR}x); see BENCH_rack.json"
        )
