"""Rack-churn wall-clock benchmark: events/s through a full tenant lifecycle.

Times a mid-size churn schedule (dozens of tenants arriving, running
and departing over a 2-JBOF rack) with the kernel probe attached, and
records the event throughput in ``BENCH_rack.json`` at the repo root.
Raw rates are machine-dependent, so the report also carries the rate
normalized by the frozen pre-optimisation kernel's chain-scenario rate
measured in the same process (the scheme ``test_kernel_perf.py``
uses); the normalized number is comparable across machines and can be
frozen into a baseline once enough runs exist.

The hard gates here are correctness, not speed: the run must be
deterministic (two identical schedules produce byte-identical
results) and must hand every mega blob back to the rack allocator.
Quick mode (``REPRO_PERF_QUICK=1``) shrinks the population for CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import baseline_kernel
from test_kernel_perf import scenario_chain

from repro.harness.kvcluster import KvCluster, KvClusterConfig
from repro.obs import KernelProbe
from repro.workloads.population import TenantPopulation

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT_PATH = REPO_ROOT / "BENCH_rack.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")
TENANTS = 12 if QUICK else 32
HORIZON_US = 200_000.0 if QUICK else 400_000.0


def _chain_rate() -> float:
    """Best-of-2 event rate of the frozen baseline kernel's chain scenario."""
    best = 0.0
    for _ in range(2):
        sim = baseline_kernel.Simulator()
        start = time.perf_counter()
        fired = scenario_chain(sim, 60_000 if QUICK else 400_000)
        best = max(best, fired / (time.perf_counter() - start))
    return best


def _churn_once() -> tuple[dict, int, float]:
    """One full churn schedule: (outcome, events fired, wall seconds)."""
    cluster = KvCluster(
        KvClusterConfig(
            scheme="gimbal",
            condition="clean",
            num_jbofs=2,
            ssds_per_jbof=2,
            seed=11,
        )
    )
    probe = KernelProbe(detailed=False)
    cluster.sim.probe = probe
    specs = TenantPopulation(
        tenants=TENANTS, horizon_us=HORIZON_US, churn=0.8, seed=5
    ).generate()
    start = time.perf_counter()
    outcome = cluster.run_population(specs)
    wall = time.perf_counter() - start
    return outcome, probe.fired_total, wall


def test_rack_churn_event_rate():
    first, events, wall = _churn_once()
    second, _, _ = _churn_once()

    # Correctness gates: reclamation and determinism.
    assert first["megas_leaked"] == 0
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    rate = events / wall
    chain = _chain_rate()
    report = {
        "suite": "rack",
        "quick": QUICK,
        "cpu_count": os.cpu_count(),
        "tenants": TENANTS,
        "horizon_us": HORIZON_US,
        "events_fired": events,
        "wall_seconds": round(wall, 3),
        "events_per_second": round(rate, 1),
        "baseline_chain_rate": round(chain, 1),
        "normalized_rate": round(rate / chain, 4),
        "megas_allocated": first["megas_allocated"],
        "peak_tenants": first["peak_tenants"],
        "drained_us": first["drained_us"],
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    assert events > 0 and rate > 0
