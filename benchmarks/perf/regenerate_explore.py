"""Regenerate ``BASELINE_EXPLORE.json`` -- the frozen ground truth the
explore perf gate compares adaptive runs against.

Runs the fig04 interference exploration grid *exhaustively* (every
point, no surrogate) and freezes the crossovers
:func:`repro.harness.adaptive.find_crossovers` extracts from the
actual signals.  The simulation is deterministic and machine
independent, so the file only needs regenerating when the simulator's
physics, the driver's grid, or the crossover definition changes:

    PYTHONPATH=src python benchmarks/perf/regenerate_explore.py

``error_bound`` is the held-out relative-RMSE ceiling the gate holds
adaptive runs to; raise it only with a written justification in the
commit -- it is the claim the docs make about surrogate quality.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.harness.adaptive import find_crossovers
from repro.harness.experiments.fig04_interference import explore_space
from repro.harness.parallel import run_sweep
from repro.harness.surrogate import flatten_numeric

BASELINE_PATH = Path(__file__).resolve().parent / "BASELINE_EXPLORE.json"

#: Gate parameters frozen alongside the ground truth.
BUDGET = 0.2           # adaptive runs may simulate at most this grid fraction
ERROR_BOUND = 0.55     # held-out relative RMSE ceiling per target


def main() -> None:
    space = explore_space()
    combos = space.combos()
    started = time.perf_counter()
    points = [space.point(index, combo) for index, combo in enumerate(combos)]
    values = run_sweep(points, jobs=1, cache=False, name="explore-baseline")
    wall_s = time.perf_counter() - started
    signals = {
        index: space.crossover.signal(flatten_numeric(value))
        for index, value in enumerate(values)
    }
    crossovers = find_crossovers(space, signals)
    baseline = {
        "space": space.name,
        "axes": space.axes,
        "fixed": space.fixed,
        "root_seed": space.root_seed,
        "grid_points": len(combos),
        "full_grid_wall_s": round(wall_s, 3),
        "budget": BUDGET,
        "error_bound": ERROR_BOUND,
        "crossovers": crossovers,
    }
    BASELINE_PATH.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {BASELINE_PATH} ({len(crossovers)} crossovers, "
          f"{len(combos)} grid points, full grid {wall_s:.1f}s)")
    for crossover in crossovers:
        print(f"  {crossover['group']}: {crossover['along']} "
              f"~= {crossover['estimate']} "
              f"(between {crossover['lo']} and {crossover['hi']})")


if __name__ == "__main__":
    main()
