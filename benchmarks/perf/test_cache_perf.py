"""Result-cache benchmark and regression gate: cold vs warm sweeps.

Runs the Figure 2 sweep at the golden-test configuration twice against
a fresh cache directory -- once cold (every point simulated and
stored), once warm (every point served from disk) -- then:

* writes ``BENCH_cache.json`` at the repo root with both wall times,
  the warm/cold speedup, and the hit/miss counters;
* asserts the warm run returned byte-identical results;
* fails if the warm speedup regressed below the floor derived from
  ``benchmarks/perf/BASELINE.json``.

As with the kernel gate, a ratio is gated rather than raw seconds: a
slower machine slows the cold simulation and the warm JSON reads
together, and the cold leg (seconds of simulation vs milliseconds of
disk reads) dominates the ratio on any hardware.

Quick mode (``REPRO_PERF_QUICK=1``) shrinks the measurement window for
CI smoke runs.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.harness.cache import ResultCache
from repro.harness.experiments import fig02_unloaded_latency as fig02

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = Path(__file__).resolve().parent / "BASELINE.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_cache.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")
MEASURE_US = 10_000.0 if QUICK else 20_000.0
REGRESSION_TOLERANCE = 0.75


def test_cache_cold_vs_warm():
    workdir = tempfile.mkdtemp(prefix="repro-cache-bench-")
    try:
        cache = ResultCache(Path(workdir) / "cache")

        start = time.perf_counter()
        cold = fig02.run(measure_us=MEASURE_US, cache=cache)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = fig02.run(measure_us=MEASURE_US, cache=cache)
        warm_s = time.perf_counter() - start

        speedup = cold_s / max(warm_s, 1e-9)
        report = {
            "suite": "cache",
            "quick": QUICK,
            "measure_us": MEASURE_US,
            "points": cache.stats.misses,
            "cold_wall_seconds": round(cold_s, 3),
            "warm_wall_seconds": round(warm_s, 4),
            "warm_speedup": round(speedup, 1),
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "bytes_written": cache.stats.bytes_written,
            "bytes_read": cache.stats.bytes_read,
            "seconds_saved": round(cache.stats.seconds_saved, 3),
        }
        OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print()
        print(json.dumps(report, indent=2))

        # Warm must replay the cold run exactly, from cache alone.
        assert json.dumps(warm, sort_keys=True) == json.dumps(cold, sort_keys=True)
        assert cache.stats.hits == cache.stats.misses > 0

        committed = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        reference = committed["cache"]["warm_speedup"]
        floor = reference * (1.0 - REGRESSION_TOLERANCE)
        assert speedup >= floor, (
            f"warm-cache speedup regressed: measured {speedup:.1f}x vs committed "
            f"{reference:.1f}x (floor {floor:.1f}x); see BENCH_cache.json"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
