"""Batch-backend throughput benchmark and regression gate.

Times the numpy batch-advance backend (:mod:`repro.sim.batch`)
against the pure-Python reference kernel on three event-population
shapes, in the same process and interleaved best-of-N:

* ``storm`` -- homogeneous completion storm: eight devices, each a
  deep closed-loop FCFS queue registered as one **bulk** population.
  This is the shape the backend exists for; the gate requires the
  ISSUE's >=3x floor *and* no regression against the frozen ratio.
* ``mixed`` -- one bulk device interleaved with plain heap timers:
  array deliveries are repeatedly cut short at heap events.  Gate:
  no regression (the batch backend must not lose on mixed work).
* ``idle`` -- sparse, far-apart completions on mostly-empty devices:
  exercises the small-backlog spill to the heap and the analytic idle
  fast-forward.  Gate: no regression.

Writes ``BENCH_batch.json`` at the repo root.  Ratios, not raw rates,
are gated: a slower CI machine slows both backends alike.  Quick mode
(``REPRO_PERF_QUICK=1``) shrinks the event counts for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

np = pytest.importorskip("numpy", reason="batch backend requires the [fast] extra")

from repro.sim import Simulator
from repro.sim.batch import BatchSimulator

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = Path(__file__).resolve().parent / "BASELINE.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_batch.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")
ROUNDS = 3
EVENTS = 60_000 if QUICK else 400_000
#: Committed ratios are measured at the full event count; quick mode's
#: shorter backlogs amortize the batch machinery less (storm drops
#: from ~25x to ~19x at 60k events), so it gets a wider band.  The
#: hard REQUIRED_SPEEDUP floors below are never widened.
REGRESSION_TOLERANCE = 0.45 if QUICK else 0.30

#: The ISSUE's machine-independent floors, gated in addition to the
#: frozen-ratio regression check.
REQUIRED_SPEEDUP = {"storm": 3.0, "mixed": 0.9, "idle": 0.85}


# ----------------------------------------------------------------------
# Scenarios.  Each takes a simulator (either backend) and an event
# budget, does identical logical work on both, and returns the number
# of completions fired.  Callbacks branch on delivery length so the
# reference backend's per-event deliveries stay on a scalar fast path
# (an honest producer would do the same).
# ----------------------------------------------------------------------
def _bulk_fcfs_device(sim, service_us, label):
    """One closed-loop FCFS device as a bulk population.

    Every delivered completion is resubmitted behind the device's FCFS
    horizon: ``h_i = max(h_{i-1}, t_i) + service`` -- solved in closed
    form for whole delivery batches with a prefix-max.
    """
    state = {"fired": 0, "horizon": 0.0}

    def complete(times, slots):
        k = len(times)
        state["fired"] += k
        if k == 1:
            h = state["horizon"]
            t = times[0]
            h = (h if h > t else t) + service_us
            state["horizon"] = h
            pop.add(h, slots[0])
            return
        t = np.asarray(times)
        idx = np.arange(1, k + 1, dtype=np.float64) * service_us
        shifted = t - idx
        shifted[0] = max(shifted[0], state["horizon"] - service_us)
        horizons = np.maximum.accumulate(shifted) + idx
        state["horizon"] = float(horizons[-1])
        pop.add_many(horizons, slots)

    pop = sim.population(complete, bulk=True, label=label)
    return pop, state


def scenario_storm(sim, n_events: int) -> int:
    """Eight deep closed-loop devices, nothing but bulk completions."""
    devices = 8
    outstanding = 4096
    service_us = 2.0
    total = 0
    states = []
    for d in range(devices):
        pop, state = _bulk_fcfs_device(sim, service_us, f"dev{d}")
        k = outstanding
        horizons = np.arange(1, k + 1, dtype=np.float64) * service_us + d * 1e-3
        state["horizon"] = float(horizons[-1])
        pop.add_many(horizons, np.arange(k))
        states.append(state)
    sim.run(max_events=n_events)
    for state in states:
        total += state["fired"]
    return total


def scenario_mixed(sim, n_events: int) -> int:
    """One bulk device against periodic heap timers.

    The timers slice every array delivery: the backend must win (or at
    least not lose) even when regions are tens of events long.
    """
    outstanding = 4096
    service_us = 2.0
    pop, state = _bulk_fcfs_device(sim, service_us, "dev")
    horizons = np.arange(1, outstanding + 1, dtype=np.float64) * service_us
    state["horizon"] = float(horizons[-1])
    pop.add_many(horizons, np.arange(outstanding))

    ticks = {"fired": 0}

    def tick(period):
        ticks["fired"] += 1
        sim.schedule(period, tick, period)

    for index in range(64):
        sim.schedule(0.1 + index * 0.01, tick, 50.0 + index * 0.3)
    sim.run(max_events=n_events)
    return state["fired"] + ticks["fired"]


def scenario_idle(sim, n_events: int) -> int:
    """Sparse completions on mostly-idle devices.

    The backlog never reaches the bulk threshold, so the batch backend
    must spill to the heap and track the reference kernel instead of
    grand-sorting per handful of events.
    """
    devices = 4
    outstanding = 8
    service_us = 100.0
    total = 0
    states = []
    for d in range(devices):
        pop, state = _bulk_fcfs_device(sim, service_us, f"idle{d}")
        k = outstanding
        horizons = np.arange(1, k + 1, dtype=np.float64) * service_us + d * 0.25
        state["horizon"] = float(horizons[-1])
        pop.add_many(horizons, np.arange(k))
        states.append(state)
    sim.run(max_events=n_events)
    for state in states:
        total += state["fired"]
    return total


SCENARIOS = {
    "storm": scenario_storm,
    "mixed": scenario_mixed,
    "idle": scenario_idle,
}


def _best_rate(make_sim, scenario, n_events: int) -> float:
    sim = make_sim()
    start = time.perf_counter()
    fired = scenario(sim, n_events)
    elapsed = time.perf_counter() - start
    return fired / elapsed


def measure() -> dict:
    results = {}
    for name, scenario in SCENARIOS.items():
        budget = EVENTS if name != "idle" else EVENTS // 4
        reference_best = 0.0
        batch_best = 0.0
        # Interleave round by round so machine noise hits both equally.
        for _ in range(ROUNDS):
            reference_best = max(
                reference_best, _best_rate(Simulator, scenario, budget)
            )
            batch_best = max(batch_best, _best_rate(BatchSimulator, scenario, budget))
        results[name] = {
            "reference_events_per_sec": round(reference_best),
            "batch_events_per_sec": round(batch_best),
            "speedup": round(batch_best / reference_best, 3),
        }
    return results


def test_batch_backend_throughput():
    # Both backends must do identical logical work.
    for name, scenario in SCENARIOS.items():
        assert scenario(Simulator(), 20_000) == scenario(
            BatchSimulator(), 20_000
        ), f"scenario {name} diverged between backends"

    scenarios = measure()
    report = {
        "suite": "batch",
        "quick": QUICK,
        "events_per_scenario": EVENTS,
        "rounds": ROUNDS,
        "required_speedups": REQUIRED_SPEEDUP,
        "scenarios": scenarios,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))

    committed = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    references = committed["batch"]["scenario_speedups"]
    failures = []
    for name, reference in references.items():
        measured = scenarios[name]["speedup"]
        required = REQUIRED_SPEEDUP[name]
        floor = max(required, reference * (1.0 - REGRESSION_TOLERANCE))
        if measured < floor:
            failures.append(
                f"{name}: measured {measured:.2f}x vs floor {floor:.2f}x "
                f"(required {required:.2f}x, committed {reference:.2f}x)"
            )
    assert not failures, (
        "batch backend speedup below floor; see BENCH_batch.json\n  "
        + "\n  ".join(failures)
    )
