"""Suite orchestration benchmark and regression gate.

Times the same experiment subset twice:

* **serial-experiment baseline** -- :func:`run_suite_serial`: each
  driver's ``run()`` executes to completion before the next starts,
  fanning its own sweep across a fresh per-sweep executor (the
  pre-orchestrator behaviour);
* **orchestrated** -- :func:`run_suite`: every experiment's points on
  one shared persistent pool, cost-model LPT dispatch, streaming
  expansion and completion-order consumption.

The gate has two halves.  The identity half always runs: per-experiment
results must be byte-identical between the two paths (scheduling must
never change what is computed).  The speedup half -- orchestrated at
least ``required_speedup`` times faster than the baseline, from
``BASELINE_SUITE.json``, noise-tolerance-adjusted like the other perf
gates -- only applies when the machine actually grants >= 2 worker
processes.  On a single-core runner the orchestrator's one-worker
bypass keeps everything in-process, so instead of skipping silently
the gate asserts orchestration costs essentially nothing over the
serial baseline (>= 0.95x, tolerance-adjusted): cost-model planning
and streaming accounting must not tax the degenerate case.

``BENCH_suite.json`` at the repo root records the raw numbers.  Quick
mode (``REPRO_PERF_QUICK=1``) shrinks the measurement windows for CI
smoke runs and widens the tolerance accordingly.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.harness.orchestrator import ExperimentSpec, run_suite, run_suite_serial

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = Path(__file__).resolve().parent / "BASELINE_SUITE.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_suite.json"

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")
SPEEDUP_TOLERANCE = 0.75 if QUICK else 0.85

#: A subset of the evaluation with contrasting shapes: a wide cheap
#: sweep (fig02, 24 points), a narrow expensive one (fig04, 6 points),
#: a medium sweep (fig14, 18 points), and two short ones (table1,
#: table2) whose points batch.  Windows are scaled so the whole
#: baseline leg stays in benchmark territory, not CI-smoke territory.
def _specs() -> list:
    scale = 0.3 if QUICK else 1.0
    return [
        ExperimentSpec(
            "fig02",
            "repro.harness.experiments.fig02_unloaded_latency",
            {"measure_us": 50_000.0 * scale},
        ),
        ExperimentSpec(
            "fig04",
            "repro.harness.experiments.fig04_interference",
            {"measure_us": 80_000.0 * scale},
        ),
        ExperimentSpec(
            "fig14",
            "repro.harness.experiments.fig14_read_ratio",
            {"duration_us": 50_000.0 * scale},
        ),
        ExperimentSpec(
            "table1",
            "repro.harness.experiments.table1_overheads",
            {"measure_us": 40_000.0 * scale},
        ),
        ExperimentSpec("table2", "repro.harness.experiments.table2_comparison", {}),
    ]


def test_orchestrated_suite_vs_serial_baseline():
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    specs = _specs()
    jobs = os.cpu_count() or 1

    start = time.perf_counter()
    serial_results = run_suite_serial(specs, jobs=jobs, cache=False)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    suite = run_suite(specs, jobs=jobs, cache=False)
    orchestrated_s = time.perf_counter() - start

    speedup = serial_s / max(orchestrated_s, 1e-9)
    multi_core = suite.jobs >= 2
    required = (
        baseline["required_speedup"] if multi_core else 0.95
    ) * SPEEDUP_TOLERANCE
    report = {
        "suite": "suite",
        "quick": QUICK,
        "cpu_count": os.cpu_count(),
        "experiments": [spec.name for spec in specs],
        "points_total": suite.points_total,
        "batches": suite.batches,
        "stolen_idle_s": round(suite.stolen_idle_s, 3),
        "jobs_requested": jobs,
        "jobs_effective": suite.jobs,
        "serial_wall_seconds": round(serial_s, 3),
        "orchestrated_wall_seconds": round(orchestrated_s, 3),
        "speedup": round(speedup, 3),
        "speedup_gate": (
            f"enforced: >= {required:.2f}x"
            if multi_core
            else f"enforced (single worker, overhead-only): >= {required:.2f}x"
        ),
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    # Identity half: scheduling must never change results.
    assert json.dumps(suite.results, sort_keys=True) == json.dumps(
        serial_results, sort_keys=True
    ), "orchestrated suite results differ from the serial-experiment baseline"

    if multi_core:
        assert speedup >= required, (
            f"orchestrated suite is {speedup:.2f}x the serial baseline "
            f"({orchestrated_s:.1f}s vs {serial_s:.1f}s), below the gated "
            f"{baseline['required_speedup']}x (tolerance-adjusted floor {required:.2f}x)"
        )
    else:
        # One effective worker: orchestration cannot win, but with the
        # in-process bypass it must not lose either.  This replaces the
        # old silent skip -- a regression that taxes the degenerate
        # single-core path now fails loudly.
        assert speedup >= required, (
            f"single-worker orchestration costs too much: {speedup:.2f}x the "
            f"serial baseline ({orchestrated_s:.1f}s vs {serial_s:.1f}s), "
            f"below the overhead floor {required:.2f}x"
        )
