"""Frozen replica of the event kernel as it stood before the fast path.

This is a faithful copy of the pre-optimisation ``repro.sim.engine``
hot path -- Event objects on the heap compared through a Python-level
``__lt__``, no free list, cancelled events skipped lazily with no
compaction -- with the process/waiter machinery and observability
hooks stripped (neither participates in the benchmark scenarios).

The perf suite times this replica against the live kernel **in the
same process**, so ``BENCH_kernel.json`` reports a machine-independent
speedup ratio rather than raw rates that drift with the host.  Do not
"fix" or modernise this file: its whole value is staying identical to
the old kernel.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    pass


class Event:
    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        sim, self._sim = self._sim, None
        if sim is not None:
            sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """The pre-PR event loop: a clock plus a heap of Event objects."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self._running = False
        self._live = 0

    def schedule(self, delay_us: float, fn: Callable[..., Any], *args: Any) -> Event:
        if delay_us < 0:
            raise SimulationError(f"Cannot schedule {delay_us}us in the past")
        return self.at(self.now + delay_us, fn, *args)

    def at(self, time_us: float, fn: Callable[..., Any], *args: Any) -> Event:
        if time_us < self.now:
            raise SimulationError(f"Cannot schedule at t={time_us} before now={self.now}")
        self._seq += 1
        event = Event(time_us, self._seq, fn, args)
        event._sim = self
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def run(self, until_us: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until_us is not None and event.time > until_us:
                    break
                heapq.heappop(self._heap)
                self._fire(event)
                fired += 1
            if until_us is not None and self.now < until_us:
                self.now = until_us
        finally:
            self._running = False
        return self.now

    def _fire(self, event: Event) -> None:
        event._sim = None
        self._live -= 1
        self.now = event.time
        event.fn(*event.args)

    @property
    def pending(self) -> int:
        return self._live
