"""Benchmark: regenerate Figure 10 (RocksDB/YCSB across schemes)."""

from conftest import run_once

from repro.harness.experiments import fig10_rocksdb as experiment


def test_fig10(benchmark):
    results = run_once(
        benchmark,
        experiment.run,
        schemes=("gimbal", "reflex", "parda", "flashfq"),
        workloads=("A", "B", "C", "F"),
        instances=6,
        measure_us=500_000.0,
        warmup_us=250_000.0,
    )
    print()
    print(experiment.summarize(results))
    rows = {(r["workload"], r["scheme"]): r for r in results["rows"]}

    def gain(workload, baseline):
        return rows[(workload, "gimbal")]["kops"] / max(rows[(workload, baseline)]["kops"], 1e-9)

    # Paper shape 1: Gimbal improves the update-heavy workloads against
    # at least one baseline substantially (paper avg: x1.7 vs ReFlex).
    assert max(gain("A", "reflex"), gain("A", "parda")) > 1.15
    # Paper shape 2: the read-only workload benefits least.
    read_only_gain = max(gain("C", b) for b in ("reflex", "parda", "flashfq"))
    update_gain = max(gain("A", b) for b in ("reflex", "parda", "flashfq"))
    assert update_gain > 0.8 * read_only_gain  # A gains at least comparably
    # Paper shape 3: Gimbal never collapses: within 40% of the best
    # scheme on every workload.
    for workload in ("A", "B", "C", "F"):
        best = max(rows[(workload, s)]["kops"] for s in ("gimbal", "reflex", "parda", "flashfq"))
        assert rows[(workload, "gimbal")]["kops"] > 0.6 * best
