"""Benchmark: regenerate Table 2 (qualitative mechanism comparison)."""

from conftest import run_once

from repro.harness.experiments import table2_comparison as experiment


def test_table2(benchmark):
    results = run_once(benchmark, experiment.run)
    print()
    print(experiment.summarize(results))
    rows = {r["scheme"]: r for r in results["rows"]}
    assert rows["gimbal"]["bw_estimation"] == "Dynamic"
    assert rows["gimbal"]["io_cost"] == "Dynamic"
    assert rows["gimbal"]["flow_control"] == "yes"
    assert rows["reflex"]["bw_estimation"] == "Static"
    assert rows["parda"]["fair_queueing"] == "@Client"
    assert rows["flashfq"]["flow_control"] == "no"
    assert all(results["checks"].values())
