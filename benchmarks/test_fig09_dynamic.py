"""Benchmark: regenerate Figure 9 (dynamic workload, write-cost adaptation)."""

from conftest import run_once

from repro.harness.experiments import fig09_dynamic as experiment


def test_fig09(benchmark):
    results = run_once(benchmark, experiment.run, phase_us=400_000.0)
    print()
    print(experiment.summarize(results))
    phase = results["phase_us"]
    cost_series = results["write_cost_series"]
    # Paper shape 1: with a single rate-capped writer, the device buffer
    # absorbs the writes and the estimated cost decays well below worst
    # case during the early phases.
    early = [v for t, v in cost_series if phase <= t < 3 * phase]
    assert early, "no write-cost samples in the single-writer phase"
    assert min(early) < 6.0
    # Paper shape 2: under full write consolidation the cost climbs back
    # toward the worst case.
    mid_start = 6 * phase
    mid = [v for t, v in cost_series if mid_start <= t < mid_start + 4 * phase]
    assert mid, "no write-cost samples in the consolidated phase"
    assert max(mid) > 7.0
    # Paper shape 3: write latency rises by an order of magnitude from
    # the single-writer phase to the consolidated phase.
    write_latency = dict(results["latency_series"]["write"])
    early_lat = [v for t, v in write_latency.items() if phase <= t < 3 * phase]
    late_lat = [v for t, v in write_latency.items() if mid_start <= t < mid_start + 4 * phase]
    assert early_lat and late_lat
    assert max(late_lat) > 3.0 * min(early_lat)
