"""Benchmark: regenerate Figure 18 (dynamic latency threshold trace)."""

from conftest import run_once

from repro.harness.experiments import fig18_threshold_trace as experiment


def test_fig18(benchmark):
    results = run_once(benchmark, experiment.run, phase_us=200_000.0, steps=12)
    print()
    print(experiment.summarize(results))
    thresholds = [v for _, v in results["threshold"]]
    ewmas = [v for _, v in results["ewma_latency"]]
    assert thresholds and ewmas
    # Paper shape 1: the threshold is dynamic (it moves over the run).
    assert max(thresholds) > 1.2 * min(thresholds)
    # Paper shape 2: congestion signals fire as load rises.
    signals = results["signals"]
    assert signals["CONGESTED"] + signals["OVERLOADED"] > 0
    # Paper shape 3: the EWMA grows with offered load.
    early = sum(ewmas[:5]) / 5
    late = sum(ewmas[-5:]) / 5
    assert late > early
