"""Tests for TRIM/deallocate support, device through application."""

from __future__ import annotations

import random

import pytest

from repro.sim import Simulator
from repro.ssd import (
    DeviceCommand,
    IoOp,
    SsdDevice,
    SsdGeometry,
    precondition_clean,
)


class TestDeviceTrim:
    def test_trim_unmaps_range(self, sim):
        device = SsdDevice(sim)
        precondition_clean(device)
        done = []
        device.submit(DeviceCommand(IoOp.TRIM, 100, 16), done.append)
        sim.run()
        assert len(done) == 1
        for lpn in range(100, 116):
            assert device.ftl.lookup(lpn) == -1
        # Neighbours untouched.
        assert device.ftl.lookup(99) != -1
        assert device.ftl.lookup(116) != -1

    def test_trim_is_fast(self, sim):
        device = SsdDevice(sim)
        precondition_clean(device)
        done = []
        device.submit(DeviceCommand(IoOp.TRIM, 0, 64), done.append)
        sim.run()
        # Metadata-only: no channel work, just controller processing.
        assert done[0].latency_us < 20.0

    def test_trim_counted_in_stats(self, sim):
        device = SsdDevice(sim)
        precondition_clean(device)
        device.submit(DeviceCommand(IoOp.TRIM, 0, 8), lambda cmd: None)
        sim.run()
        assert device.stats.trim_commands == 1
        assert device.stats.trimmed_pages == 8

    def test_trim_skips_buffered_pages(self, sim):
        device = SsdDevice(sim)
        precondition_clean(device)
        device.submit(DeviceCommand(IoOp.WRITE, 200, 1), lambda cmd: None)
        device.submit(DeviceCommand(IoOp.TRIM, 200, 1), lambda cmd: None)
        sim.run()
        # The in-flight page was not torn out from under its program.
        assert device.ftl.lookup(200) != -1

    def test_trim_improves_write_amplification(self):
        """Pre-invalidating dead data cheapens future GC -- the reason
        filesystems send deallocate."""

        def steady_wa(trim_first: bool) -> float:
            sim = Simulator()
            geometry = SsdGeometry(
                num_channels=4, blocks_per_channel=20, pages_per_block=64, overprovision=0.25
            )
            device = SsdDevice(sim, geometry=geometry)
            exported = device.exported_pages
            ftl = device.ftl
            for lpn in range(exported):
                ftl.write_page(lpn)
            rng = random.Random(3)
            for _ in range(exported):
                ftl.write_page(rng.randrange(exported // 2))
            if trim_first:
                # Declare the upper half dead before further churn.
                for lpn in range(exported // 2, exported):
                    ftl.trim_page(lpn)
            ftl.stats.host_programs = ftl.stats.gc_programs = 0
            for _ in range(exported):
                ftl.write_page(rng.randrange(exported // 2))
            return ftl.stats.write_amplification

        assert steady_wa(trim_first=True) < steady_wa(trim_first=False)


class TestFabricTrim:
    def test_trim_end_to_end(self, sim):
        from repro.baselines import FifoScheduler
        from repro.fabric import Network, NvmeOfInitiator, NvmeOfTarget

        network = Network(sim)
        device = SsdDevice(sim)
        precondition_clean(device)
        target = NvmeOfTarget(sim, network, "j", {"ssd0": device}, FifoScheduler)
        session = NvmeOfInitiator(sim, network, "c").connect("t", target, "ssd0")
        done = []
        session.submit(IoOp.TRIM, 0, 64, on_complete=done.append)
        sim.run()
        assert len(done) == 1
        assert device.ftl.lookup(0) == -1
        assert target.pipelines["ssd0"].stats.trims == 1

    def test_trim_through_gimbal(self, sim):
        from repro.core import GimbalScheduler
        from repro.fabric import CreditClientPolicy, Network, NvmeOfInitiator, NvmeOfTarget

        network = Network(sim)
        device = SsdDevice(sim)
        precondition_clean(device)
        target = NvmeOfTarget(sim, network, "j", {"ssd0": device}, GimbalScheduler)
        session = NvmeOfInitiator(sim, network, "c").connect(
            "t", target, "ssd0", policy=CreditClientPolicy()
        )
        done = []
        # Mix trims with reads and writes through the full switch.
        for index in range(8):
            session.submit(IoOp.READ, index * 8, 8, on_complete=done.append)
            session.submit(IoOp.WRITE, 512 + index * 8, 8, on_complete=done.append)
            session.submit(IoOp.TRIM, 1024 + index * 8, 8, on_complete=done.append)
        sim.run()
        assert len(done) == 24

    def test_nvme_deallocate_opcode(self, sim):
        from repro.nvme import NvmeCommand, NvmeController, NvmeOpcode

        device = SsdDevice(sim)
        precondition_clean(device)
        controller = NvmeController(sim, device)
        controller.create_namespace(256)
        done = []
        controller.execute(NvmeCommand(NvmeOpcode.DEALLOCATE, 1, 0, 32), done.append)
        sim.run()
        assert done[0].ok
        assert device.ftl.lookup(0) == -1


class TestBlobstoreTrim:
    def test_delete_deallocates_blobs(self, sim):
        from tests.kv.test_blobstore import build_store

        store = build_store(sim)
        file = store.create("f")
        store.extend(file, 128)
        store.delete(file)
        sim.run()
        total_trims = sum(backend.trims for backend in store.backends.values())
        # Two micro blobs per replica side = 4 trim commands.
        assert total_trims == 4
