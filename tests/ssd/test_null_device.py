"""Tests for :class:`repro.ssd.NullDevice` (Table 1's zero-cost backend)."""

from __future__ import annotations

from repro.obs.registry import Registry
from repro.ssd import NullDevice
from repro.ssd.commands import DeviceCommand, IoOp


class TestNullDeviceCompletion:
    def test_read_completes_at_current_time(self, sim):
        device = NullDevice(sim)
        done = []
        device.submit(DeviceCommand(IoOp.READ, 0, 4), done.append)
        assert device.outstanding == 1
        sim.run()
        assert len(done) == 1
        cmd = done[0]
        assert cmd.submit_time == cmd.complete_time == 0.0
        assert device.outstanding == 0

    def test_completion_is_asynchronous(self, sim):
        """The callback fires from the event loop, not inside submit()."""
        device = NullDevice(sim)
        done = []
        device.submit(DeviceCommand(IoOp.READ, 0, 1), done.append)
        assert done == []  # not synchronously completed
        sim.run()
        assert len(done) == 1

    def test_ordering_preserved_for_same_time_commands(self, sim):
        device = NullDevice(sim)
        order = []
        device.submit(DeviceCommand(IoOp.READ, 0, 1, tag="first"), lambda c: order.append(c.tag))
        device.submit(DeviceCommand(IoOp.WRITE, 8, 1, tag="second"), lambda c: order.append(c.tag))
        sim.run()
        assert order == ["first", "second"]


class TestNullDeviceStats:
    def test_counters_by_op(self, sim):
        device = NullDevice(sim)
        device.submit(DeviceCommand(IoOp.READ, 0, 2), lambda c: None)
        device.submit(DeviceCommand(IoOp.WRITE, 16, 3), lambda c: None)
        device.submit(DeviceCommand(IoOp.TRIM, 32, 5), lambda c: None)
        sim.run()
        assert device.stats.read_commands == 1
        assert device.stats.write_commands == 1
        assert device.stats.trim_commands == 1
        assert device.stats.read_bytes == 2 * 4096
        assert device.stats.write_bytes == 3 * 4096
        assert device.stats.trimmed_pages == 5
        assert device.stats.commands == 3

    def test_write_amplification_is_unity(self, sim):
        assert NullDevice(sim).write_amplification == 1.0

    def test_reset_time_state_clears_stats(self, sim):
        device = NullDevice(sim)
        device.submit(DeviceCommand(IoOp.READ, 0, 1), lambda c: None)
        sim.run()
        assert device.stats.read_commands == 1
        device.reset_time_state()
        assert device.stats.read_commands == 0
        assert device.stats.commands == 0

    def test_register_metrics_follows_reset(self, sim):
        """Gauges must read through to the *current* stats object."""
        device = NullDevice(sim)
        registry = Registry()
        device.register_metrics(registry)
        device.submit(DeviceCommand(IoOp.READ, 0, 1), lambda c: None)
        sim.run()
        assert registry.snapshot()["ssd.null0.read_commands"] == 1
        device.reset_time_state()
        snapshot = registry.snapshot()
        assert snapshot["ssd.null0.read_commands"] == 0
        assert snapshot["ssd.null0.outstanding"] == 0


class TestNullDeviceCapacity:
    def test_exported_pages_default_is_huge(self, sim):
        assert NullDevice(sim).exported_pages == 1 << 30

    def test_closed_loop_sustains_many_iops(self, sim):
        """The null backend never becomes the bottleneck: a closed loop
        completes one command per event-loop turn."""
        device = NullDevice(sim)
        state = {"count": 0}

        def resubmit(cmd):
            state["count"] += 1
            if state["count"] < 1000:
                device.submit(DeviceCommand(IoOp.READ, 0, 1), resubmit)

        device.submit(DeviceCommand(IoOp.READ, 0, 1), resubmit)
        sim.run()
        assert state["count"] == 1000
        assert sim.now == 0.0  # all completions at t=0: zero service time

    def test_invalid_command_range_still_accepted(self, sim):
        """NullDevice does no bounds checking -- Table 1 relies on raw
        command throughput, not addressing."""
        device = NullDevice(sim)
        done = []
        device.submit(DeviceCommand(IoOp.READ, device.exported_pages - 1, 1), done.append)
        sim.run()
        assert len(done) == 1
